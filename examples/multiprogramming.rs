//! Independent multiprogrammed workloads — the experiment §7 says the
//! paper's traces could not provide.
//!
//! Merges two different applications' traces onto one simulated NIC (ten
//! processes) and shows each program's translation-cache miss rate alone
//! versus co-scheduled, with and without the process-dependent index
//! offsetting of §3.2. Run with:
//!
//! ```text
//! cargo run --release --example multiprogramming [cache_entries] [scale]
//! ```

use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};
use utlb_trace::{gen, merge_multiprogram, GenConfig, SplashApp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let entries: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4096);
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.25);
    let gen_cfg = GenConfig {
        seed: 7,
        scale,
        app_processes: 4,
    };

    let pairs = [
        (SplashApp::Fft, SplashApp::Water),
        (SplashApp::Barnes, SplashApp::Volrend),
    ];
    for (a, b) in pairs {
        let ta = gen::generate(a, &gen_cfg);
        let tb = gen::generate(b, &gen_cfg);
        let a_procs = ta.process_ids().len() as u32;
        let b_procs = tb.process_ids().len() as u32;
        let merged = merge_multiprogram(&[ta.clone(), tb.clone()]);

        let offset_cfg = SimConfig::study(entries);
        let nohash_cfg = SimConfig {
            offsetting: false,
            ..SimConfig::study(entries)
        };

        let alone_a = Run::new(Mechanism::Utlb)
            .config(&offset_cfg)
            .execute(&ta)
            .into_sim()
            .unwrap()
            .stats
            .ni_miss_rate();
        let alone_b = Run::new(Mechanism::Utlb)
            .config(&offset_cfg)
            .execute(&tb)
            .into_sim()
            .unwrap()
            .stats
            .ni_miss_rate();
        let shared = Run::new(Mechanism::Utlb)
            .config(&offset_cfg)
            .execute(&merged)
            .into_sim()
            .unwrap();
        let shared_nh = Run::new(Mechanism::Utlb)
            .config(&nohash_cfg)
            .execute(&merged)
            .into_sim()
            .unwrap();

        let a_pids: Vec<u32> = (1..=a_procs).collect();
        let b_pids: Vec<u32> = (a_procs + 1..=a_procs + b_procs).collect();

        println!("\n{a} + {b} sharing a {entries}-entry cache:");
        println!(
            "{:<15}{:>10}{:>20}{:>20}",
            "program", "alone", "co-sched (offset)", "co-sched (nohash)"
        );
        for (app, pids, alone) in [(a, &a_pids, alone_a), (b, &b_pids, alone_b)] {
            println!(
                "{:<15}{:>10.2}{:>20.2}{:>20.2}",
                app.to_string(),
                alone,
                shared.stats_for_pids(pids).ni_miss_rate(),
                shared_nh.stats_for_pids(pids).ni_miss_rate(),
            );
        }
    }
    println!(
        "\nIndex offsetting (§3.2) absorbs most cross-program interference; without it,\n\
         independent programs with overlapping virtual layouts collide in the shared cache."
    );
    Ok(())
}
