//! Application-controlled replacement policies under memory pressure.
//!
//! §3.4 lets each application choose how its pinned pages are evicted. This
//! example squeezes two very different workloads — cyclically-sweeping
//! Water and task-queue Raytrace — under a tight pinned-memory limit and
//! runs all five predefined policies, showing that the best policy is a
//! property of the application, which is exactly why UTLB makes it
//! user-selectable. Run with:
//!
//! ```text
//! cargo run --release --example policy_playground
//! ```

use utlb_core::Policy;
use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen_cfg = GenConfig {
        seed: 11,
        scale: 0.2,
        app_processes: 4,
    };

    for app in [SplashApp::Water, SplashApp::Raytrace] {
        let trace = gen::generate(app, &gen_cfg);
        // Limit each process to 40% of its share of the footprint.
        let limit = (trace.footprint_pages() / 5) * 2 / 5;
        println!(
            "\n{app}: footprint {} pages, {} lookups, limit {limit} pinned pages/process",
            trace.footprint_pages(),
            trace.total_lookups()
        );
        println!(
            "{:<10}{:>12}{:>12}{:>14}{:>12}",
            "policy", "pins/lookup", "unpins/look", "check misses", "lookup µs"
        );
        let mut best: Option<(Policy, f64)> = None;
        for policy in Policy::ALL {
            let sim = SimConfig {
                policy,
                mem_limit_pages: Some(limit),
                ..SimConfig::study(8192)
            };
            let r = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute(&trace)
                .into_sim()
                .unwrap();
            let cost = r.utlb_lookup_cost(&sim);
            println!(
                "{:<10}{:>12.3}{:>12.3}{:>14.3}{:>12.1}",
                policy.to_string(),
                r.stats.pin_rate(),
                r.stats.unpin_rate(),
                r.stats.check_miss_rate(),
                cost
            );
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((policy, cost));
            }
        }
        let (policy, cost) = best.expect("five policies ran");
        println!("→ best policy for {app}: {policy} at {cost:.1} µs/lookup");
    }
    println!(
        "\nThe winner differs per workload — the reason §3.4 exposes the choice to the application."
    );
    Ok(())
}
