//! A miniature home-based shared-virtual-memory system — the workload class
//! whose traces drove the paper's entire evaluation (§6: SPLASH-2 under a
//! "Home-based Release Consistency SVM Protocol" on VMMC).
//!
//! Each node is *home* for a slice of a shared array of pages. A node reads
//! a remote page with **remote fetch** and publishes updates with **remote
//! store** — both through UTLB translation. After a warm-up round, the
//! whole protocol runs on the translation fast path: no pin `ioctl`s, no
//! interrupts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example svm_pages [nodes] [pages_per_node] [rounds]
//! ```

use utlb_mem::{ProcessId, VirtAddr, PAGE_SIZE};
use utlb_vmmc::{Cluster, ExportId, ImportId};

struct SvmNode {
    pid: ProcessId,
    /// Import handles to every home's exported slice (None for self).
    imports: Vec<Option<ImportId>>,
}

/// Shared-array geometry: page `g` lives at home node `g / pages_per_node`.
struct Geometry {
    nodes: usize,
    pages_per_node: u64,
}

impl Geometry {
    fn home_of(&self, global_page: u64) -> usize {
        (global_page / self.pages_per_node) as usize % self.nodes
    }
    fn offset_at_home(&self, global_page: u64) -> u64 {
        (global_page % self.pages_per_node) * PAGE_SIZE
    }
    fn total_pages(&self) -> u64 {
        self.nodes as u64 * self.pages_per_node
    }
}

const HOME_BASE: VirtAddr = VirtAddr::new(0x4000_0000);
const SCRATCH: VirtAddr = VirtAddr::new(0x2000_0000);

#[allow(clippy::needless_range_loop)] // node index addresses several tables
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let pages_per_node: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    let rounds: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);
    let geo = Geometry {
        nodes,
        pages_per_node,
    };

    // --- set up: every node exports its home slice; everyone imports all.
    let mut cluster = Cluster::new(nodes)?;
    let mut svm: Vec<SvmNode> = Vec::new();
    let mut exports: Vec<ExportId> = Vec::new();
    for n in 0..nodes {
        let pid = cluster.spawn_process(n)?;
        let export = cluster.export(n, pid, HOME_BASE, pages_per_node * PAGE_SIZE)?;
        exports.push(export);
        svm.push(SvmNode {
            pid,
            imports: Vec::new(),
        });
    }
    for n in 0..nodes {
        for (h, &export) in exports.iter().enumerate() {
            let import = if h == n {
                None
            } else {
                Some(cluster.import(n, svm[n].pid, h, export)?)
            };
            svm[n].imports.push(import);
        }
    }

    // --- the protocol: each round, every node increments a counter in the
    // first 8 bytes of every shared page (fetch → bump → store back).
    println!(
        "svm_pages: {nodes} nodes × {pages_per_node} home pages, {rounds} rounds of global increments"
    );
    for round in 0..rounds {
        for n in 0..nodes {
            let pid = svm[n].pid;
            for g in 0..geo.total_pages() {
                let home = geo.home_of(g);
                let off = geo.offset_at_home(g);
                let counter = if home == n {
                    // Local page: plain memory access.
                    let mut buf = [0u8; 8];
                    cluster.read_local(n, pid, HOME_BASE.offset(off), &mut buf)?;
                    u64::from_le_bytes(buf)
                } else {
                    let import = svm[n].imports[home].expect("remote home");
                    cluster.remote_fetch(n, pid, import, SCRATCH, off, 8)?;
                    cluster.run_until_quiet()?;
                    let mut buf = [0u8; 8];
                    cluster.read_local(n, pid, SCRATCH, &mut buf)?;
                    u64::from_le_bytes(buf)
                };
                let bumped = (counter + 1).to_le_bytes();
                if home == n {
                    cluster.write_local(n, pid, HOME_BASE.offset(off), &bumped)?;
                } else {
                    let import = svm[n].imports[home].expect("remote home");
                    cluster.write_local(n, pid, SCRATCH, &bumped)?;
                    cluster.remote_store(n, pid, import, SCRATCH, off, 8)?;
                    cluster.run_until_quiet()?;
                }
            }
        }
        // Consistency check: after the round, every counter equals
        // (round+1) * nodes (the increments serialize via the home copy).
        for g in 0..geo.total_pages() {
            let home = geo.home_of(g);
            let mut buf = [0u8; 8];
            cluster.read_local(
                home,
                svm[home].pid,
                HOME_BASE.offset(geo.offset_at_home(g)),
                &mut buf,
            )?;
            assert_eq!(u64::from_le_bytes(buf), (round + 1) * nodes as u64);
        }
        println!(
            "round {round}: all {} counters consistent",
            geo.total_pages()
        );
    }

    // --- the UTLB story: everything after warm-up was fast path.
    println!("\nper-node translation activity:");
    println!(
        "{:<6}{:>10}{:>12}{:>10}{:>8}{:>12}",
        "node", "lookups", "check miss", "NI miss", "pins", "interrupts"
    );
    for n in 0..nodes {
        let s = cluster.node(n)?.utlb().aggregate_stats();
        println!(
            "{:<6}{:>10}{:>12}{:>10}{:>8}{:>12}",
            n, s.lookups, s.check_misses, s.ni_misses, s.pins, s.interrupts
        );
        assert_eq!(s.interrupts, 0);
    }
    println!("\nthe SVM protocol ran entirely without kernel or interrupt involvement");
    Ok(())
}
