//! Quickstart: the UTLB fast path in five minutes.
//!
//! Builds a two-node VMMC cluster, exports a receive buffer, and performs a
//! remote store twice — the first send pays demand pinning, the second runs
//! entirely on the user-level check + NIC cache fast path. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use utlb_mem::VirtAddr;
use utlb_vmmc::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(2)?;
    let sender = cluster.spawn_process(0)?;
    let receiver = cluster.spawn_process(1)?;

    // The receiver exports a 4-page receive buffer; the sender imports it.
    let recv_buf = VirtAddr::new(0x4000_0000);
    let export = cluster.export(1, receiver, recv_buf, 4 * 4096)?;
    let import = cluster.import(0, sender, 1, export)?;

    // Stage a message in the sender's ordinary virtual memory.
    let send_buf = VirtAddr::new(0x1000_0000);
    let message = b"user-level DMA with no syscalls on the data path";
    cluster.write_local(0, sender, send_buf, message)?;

    // First remote store: the send buffer is pinned on demand.
    cluster.remote_store(0, sender, import, send_buf, 0, message.len() as u64)?;
    cluster.run_until_quiet()?;
    let first = cluster.node(0)?.utlb().aggregate_stats();
    println!(
        "first send : {} lookups, {} check misses, {} pages pinned, {} interrupts",
        first.lookups, first.check_misses, first.pins, first.interrupts
    );

    // Second remote store from the same buffer: the pure fast path.
    cluster.remote_store(0, sender, import, send_buf, 0, message.len() as u64)?;
    cluster.run_until_quiet()?;
    let second = cluster.node(0)?.utlb().aggregate_stats();
    println!(
        "second send: {} lookups, {} check misses, {} pages pinned, {} interrupts",
        second.lookups,
        second.check_misses - first.check_misses,
        second.pins - first.pins,
        second.interrupts
    );
    assert_eq!(second.pins, first.pins, "fast path pins nothing new");

    // The data really arrived.
    let mut landed = vec![0u8; message.len()];
    cluster.read_local(1, receiver, recv_buf, &mut landed)?;
    assert_eq!(&landed, message);
    println!("receiver sees: {:?}", String::from_utf8_lossy(&landed));

    // The whole point, in one line:
    println!(
        "interrupts taken across both sends: {}",
        cluster.node(0)?.board().intr.raised()
    );
    Ok(())
}
