//! Transfer redirection and fault recovery — the VMMC-2 extensions.
//!
//! Demonstrates the two features §4.1 says the UTLB "empowers":
//!
//! 1. **Transfer redirection**: a receiver retargets an exported buffer at
//!    a fresh landing area per request, getting zero-copy delivery into the
//!    buffer a higher-level library actually wants filled.
//! 2. **Reliable delivery over a lossy link**: a fault hook drops packets;
//!    the data-link retransmission protocol recovers transparently.
//!
//! Run with:
//!
//! ```text
//! cargo run --example redirection
//! ```

use utlb_mem::VirtAddr;
use utlb_nic::packet::{Packet, PacketKind};
use utlb_vmmc::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(2)?;
    let producer = cluster.spawn_process(0)?;
    let consumer = cluster.spawn_process(1)?;

    let mailbox = VirtAddr::new(0x4000_0000);
    let export = cluster.export(1, consumer, mailbox, 4096)?;
    let import = cluster.import(0, producer, 1, export)?;

    // --- Part 1: redirection -------------------------------------------
    // The consumer wants successive messages in separate application
    // buffers without copying out of the mailbox.
    let src = VirtAddr::new(0x1000_0000);
    for round in 0u64..3 {
        let slot = VirtAddr::new(0x5000_0000 + round * 0x1_0000);
        cluster.redirect(1, consumer, export, slot)?;
        let msg = format!("message #{round} lands in its own buffer");
        cluster.write_local(0, producer, src, msg.as_bytes())?;
        cluster.remote_store(0, producer, import, src, 0, msg.len() as u64)?;
        cluster.run_until_quiet()?;
        let mut buf = vec![0u8; msg.len()];
        cluster.read_local(1, consumer, slot, &mut buf)?;
        assert_eq!(buf, msg.as_bytes());
        println!(
            "round {round}: {:?} @ {slot}",
            String::from_utf8_lossy(&buf)
        );
    }

    // --- Part 2: lossy link --------------------------------------------
    println!("\ninjecting 30% data-packet loss ...");
    let mut counter = 0u32;
    cluster.inject_fault(Some(Box::new(move |p: &Packet| {
        if p.kind == PacketKind::Data {
            counter = counter.wrapping_add(1);
            counter % 10 < 3 // drop a deterministic 30%
        } else {
            false
        }
    })));

    let slot = VirtAddr::new(0x6000_0000);
    cluster.redirect(1, consumer, export, slot)?;
    let big = vec![0x5Au8; 4096];
    cluster.write_local(0, producer, src, &big)?;
    cluster.remote_store(0, producer, import, src, 0, big.len() as u64)?;
    cluster.run_until_quiet()?;
    let mut landed = vec![0u8; big.len()];
    cluster.read_local(1, consumer, slot, &mut landed)?;
    assert_eq!(landed, big);
    println!("full page delivered correctly despite the lossy link");
    println!("fetches still see the original exported buffer; redirection only moves stores");
    Ok(())
}
