//! Ping-pong latency microbenchmark on the simulated cluster.
//!
//! Bounces a message between two nodes and reports the simulated one-way
//! translation + wire time for the *cold* round (demand pinning, NIC cache
//! fills) versus *warm* rounds (pure fast path) — the end-to-end view of
//! the paper's §5 microbenchmarks. Run with:
//!
//! ```text
//! cargo run --example ping_pong [rounds] [bytes]
//! ```

use utlb_mem::VirtAddr;
use utlb_vmmc::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    let nbytes: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4096);

    let mut cluster = Cluster::new(2)?;
    let ping = cluster.spawn_process(0)?;
    let pong = cluster.spawn_process(1)?;

    // Each side exports a landing buffer and imports the peer's.
    // Note: buffer pages are deliberately chosen NOT to alias in the
    // direct-mapped Shared UTLB-Cache (addresses that are multiples of the
    // cache size would conflict-thrash — try it!).
    let buf0 = VirtAddr::new(0x4000_3000);
    let buf1 = VirtAddr::new(0x4800_5000);
    let export0 = cluster.export(0, ping, buf0, nbytes)?;
    let export1 = cluster.export(1, pong, buf1, nbytes)?;
    let import01 = cluster.import(0, ping, 1, export1)?;
    let import10 = cluster.import(1, pong, 0, export0)?;

    let payload = vec![0xABu8; nbytes as usize];
    let src0 = VirtAddr::new(0x1000_7000);
    let src1 = VirtAddr::new(0x1800_9000);
    cluster.write_local(0, ping, src0, &payload)?;
    cluster.write_local(1, pong, src1, &payload)?;

    println!("ping-pong: {rounds} rounds of {nbytes} bytes");
    println!("{:<8}{:>16}{:>16}", "round", "simulated µs", "interrupts");
    let mut warm_total = 0.0;
    let mut warm_rounds = 0;
    for round in 0..rounds {
        let t0 = cluster.node(0)?.board().clock.now();
        cluster.remote_store(0, ping, import01, src0, 0, nbytes)?;
        cluster.run_until_quiet()?;
        cluster.remote_store(1, pong, import10, src1, 0, nbytes)?;
        cluster.run_until_quiet()?;
        let t1 = cluster.node(0)?.board().clock.now();
        let us = (t1 - t0).as_micros();
        let intr = cluster.node(0)?.board().intr.raised() + cluster.node(1)?.board().intr.raised();
        println!("{round:<8}{us:>16.2}{intr:>16}");
        if round > 0 {
            warm_total += us;
            warm_rounds += 1;
        }
    }
    if warm_rounds > 0 {
        println!(
            "\nwarm round-trip average: {:.2} µs (translation fast path: {:.1} µs/lookup)",
            warm_total / warm_rounds as f64,
            utlb_core::CostModel::default().fast_path().as_micros(),
        );
    }
    let s = cluster.node(0)?.utlb().aggregate_stats();
    println!(
        "node 0 translation: {} lookups, {} check misses, {} NI misses, {} pins",
        s.lookups, s.check_misses, s.ni_misses, s.pins
    );
    Ok(())
}
