//! Ping-pong latency microbenchmark over the messaging fabric.
//!
//! Bounces a message between two nodes through a `utlb-msg` channel and
//! reports the simulated round-trip time for the *cold* round (demand
//! pinning, NIC cache fills, ring export) versus *warm* rounds (pure fast
//! path through the exported ring) — the end-to-end view of the paper's
//! §5 microbenchmarks, now including the messaging layer the UTLB exists
//! to serve. Both sides receive into reused buffers (`recv_reuse`), so
//! the steady-state loop allocates nothing per message. Run with:
//!
//! ```text
//! cargo run --example ping_pong [rounds] [bytes]
//! ```

use utlb_msg::{ChannelConfig, Fabric, RecvBuf};
use utlb_vmmc::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    let nbytes: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4096);

    let mut fabric = Fabric::new(Cluster::new(2)?);
    let ping = fabric.add_endpoint(0)?;
    let pong = fabric.add_endpoint(1)?;
    // A ring sized so the payload always travels the eager path (slots
    // carry a 16-byte header): the warm-round number then measures the
    // fast path, not rendezvous handshakes.
    let slot_bytes = (nbytes as u64 + 16).max(1024);
    let cfg = ChannelConfig {
        slot_bytes,
        bulk_bytes: (64 * 1024).max(slot_bytes),
        ..ChannelConfig::default()
    };
    assert!(cfg.max_eager() >= nbytes as u64);
    let channel = fabric.connect(ping, pong, cfg)?;

    let payload = vec![0xABu8; nbytes];
    // One reused landing buffer per direction — no per-round allocation.
    let mut at_pong = RecvBuf::new();
    let mut at_ping = RecvBuf::new();

    println!("ping-pong: {rounds} rounds of {nbytes} bytes over the fabric");
    println!("{:<8}{:>16}{:>16}", "round", "simulated µs", "interrupts");
    let mut warm_total = 0.0;
    let mut warm_rounds = 0;
    for round in 0..rounds {
        let t0 = fabric.cluster().node(0)?.board().clock.now();
        fabric.send(channel, ping, &payload)?;
        fabric.recv_reuse(channel, pong, &mut at_pong)?;
        fabric.send(channel, pong, &payload)?;
        fabric.recv_reuse(channel, ping, &mut at_ping)?;
        let t1 = fabric.cluster().node(0)?.board().clock.now();
        assert_eq!(at_pong.as_slice(), payload);
        assert_eq!(at_ping.as_slice(), payload);
        let us = (t1 - t0).as_micros();
        let c = fabric.cluster();
        let intr = c.node(0)?.board().intr.raised() + c.node(1)?.board().intr.raised();
        println!("{round:<8}{us:>16.2}{intr:>16}");
        if round > 0 {
            warm_total += us;
            warm_rounds += 1;
        }
    }
    if warm_rounds > 0 {
        println!(
            "\nwarm round-trip average: {:.2} µs (translation fast path: {:.1} µs/lookup)",
            warm_total / warm_rounds as f64,
            utlb_core::CostModel::default().fast_path().as_micros(),
        );
    }
    let s = fabric.cluster().node(0)?.utlb().aggregate_stats();
    println!(
        "node 0 translation: {} lookups, {} check misses, {} NI misses, {} pins",
        s.lookups, s.check_misses, s.ni_misses, s.pins
    );
    Ok(())
}
