//! Trace-driven sweep over the seven SPLASH-2-like workloads.
//!
//! Generates each application's communication trace, runs it through both
//! the UTLB engine and the interrupt-based baseline at a chosen cache size,
//! and prints the paper's per-lookup metrics side by side — a one-screen
//! version of Table 4. Run with:
//!
//! ```text
//! cargo run --release --example splash_sweep [cache_entries] [scale]
//! ```

use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let entries: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4096);
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.25);

    let gen_cfg = GenConfig {
        seed: 42,
        scale,
        app_processes: 4,
    };
    let sim = SimConfig::study(entries);

    println!("cache: {entries} entries, direct-mapped with offsetting; trace scale {scale}");
    println!(
        "{:<15}{:>9}{:>9}  |{:>9}{:>9}{:>9}  |{:>9}{:>9}",
        "application", "footprnt", "lookups", "U check", "U NImiss", "U µs", "I NImiss", "I µs"
    );
    for app in SplashApp::ALL {
        let trace = gen::generate(app, &gen_cfg);
        let u = Run::new(Mechanism::Utlb)
            .config(&sim)
            .execute(&trace)
            .into_sim()
            .unwrap();
        let i = Run::new(Mechanism::Intr)
            .config(&sim)
            .execute(&trace)
            .into_sim()
            .unwrap();
        println!(
            "{:<15}{:>9}{:>9}  |{:>9.2}{:>9.2}{:>9.1}  |{:>9.2}{:>9.1}",
            app.to_string(),
            trace.footprint_pages(),
            trace.total_lookups(),
            u.stats.check_miss_rate(),
            u.stats.ni_miss_rate(),
            u.utlb_lookup_cost(&sim),
            i.stats.ni_miss_rate(),
            i.intr_lookup_cost(&sim),
        );
    }
    println!("\nU = UTLB, I = interrupt-based; µs = average translation lookup cost (§6.2)");
    Ok(())
}
