//! Zero-copy messaging on top of VMMC — the high-level API the paper's
//! transfer redirection exists to enable (§4.1).
//!
//! Builds a two-endpoint channel with the `utlb-msg` fabric and shows:
//!
//! 1. the eager path: small messages through the exported ring, with
//!    credit-based flow control refreshed by a *remote fetch*,
//! 2. the rendezvous path: a large message whose receive buffer becomes
//!    the *redirected* landing zone of the bulk window — the payload's
//!    only movement is the wire transfer into its final location,
//! 3. that after warm-up, none of this touches the kernel or interrupts.
//!
//! Run with:
//!
//! ```text
//! cargo run --example messaging
//! ```

use utlb_mem::VirtAddr;
use utlb_msg::{ChannelConfig, Fabric, RecvBuf};
use utlb_vmmc::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fabric = Fabric::new(Cluster::new(2)?);
    let client = fabric.add_endpoint(0)?;
    let server = fabric.add_endpoint(1)?;
    let channel = fabric.connect(client, server, ChannelConfig::default())?;

    // --- eager request/response -----------------------------------------
    fabric.send(channel, client, b"GET /stats")?;
    let request = fabric.recv(channel, server)?;
    println!(
        "server got request: {:?}",
        String::from_utf8_lossy(&request)
    );
    fabric.send(channel, server, b"200 OK: utlb is fast")?;
    let response = fabric.recv(channel, client)?;
    println!(
        "client got response: {:?}",
        String::from_utf8_lossy(&response)
    );

    // --- rendezvous bulk transfer, zero-copy into the caller's buffer ----
    let blob: Vec<u8> = (0..32_000u32).map(|i| (i * 7 % 251) as u8).collect();
    fabric.send(channel, client, &blob)?;
    let target = VirtAddr::new(0x2000_0000); // the application's own buffer
    let n = fabric.recv_into(channel, server, target, blob.len() as u64)?;
    println!("server received {n} bytes by rendezvous, directly into its buffer");

    // Verify the payload landed intact.
    let dst_node = 1;
    let pids = {
        let c = fabric.cluster();
        c.node(dst_node)?.host().process_ids()
    };
    let mut got = vec![0u8; blob.len()];
    fabric
        .cluster_mut()
        .read_local(dst_node, pids[0], target, &mut got)?;
    assert_eq!(got, blob);

    // --- the whole point --------------------------------------------------
    // Steady state reuses one RecvBuf: `recv_reuse` lands every message in
    // the same simulated region and byte buffer, so the loop allocates
    // nothing per message — the discipline every hot receive path here
    // follows (the lookup path's OutcomeBuf, the request plane's frame
    // buffer).
    println!("\nsteady-state: 200 eager messages ...");
    let before = fabric.cluster().node(0)?.utlb().aggregate_stats();
    let mut inbox = RecvBuf::new();
    for i in 0..200u32 {
        fabric.send(channel, client, &i.to_le_bytes())?;
        fabric.recv_reuse(channel, server, &mut inbox)?;
        assert_eq!(inbox.as_slice(), i.to_le_bytes());
    }
    let after = fabric.cluster().node(0)?.utlb().aggregate_stats();
    println!(
        "pin ioctls during steady state: {}   interrupts: {}   NI misses: {}",
        after.pin_calls - before.pin_calls,
        after.interrupts,
        after.ni_misses - before.ni_misses,
    );
    Ok(())
}
