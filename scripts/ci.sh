#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 test suite.
#
# Everything runs --offline against the vendored dependency stubs in
# vendor/ — this repo builds with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test -q --offline

echo "== full workspace tests"
cargo test -q --offline --workspace

echo "== observability: runner-equivalence and probe-reconciliation tests"
cargo test -q --offline -p utlb-sim --test equivalence
cargo test -q --offline -p utlb-core obs::
cargo test -q --offline -p utlb-core mechanism::

echo "== four-mechanism unification: shared pin core and variant ablations"
cargo test -q --offline -p utlb-core pincore::
cargo test -q --offline -p utlb-core perproc::
cargo test -q --offline -p utlb-core indexed::
cargo test -q --offline -p utlb-sim ablations::

echo "== observability: no-op probe overhead guard (<10%)"
cargo run -q --release --offline -p utlb-bench --bin obs_guard -- --scale 0.3

echo "== DES: core unit tests and zero-contention equivalence gate"
cargo test -q --offline -p utlb-des
cargo test -q --offline -p utlb-sim des_runner::
cargo test -q --offline -p utlb-sim --test des_equivalence

echo "== DES: contention experiments (load monotonicity, interference, per-mechanism axis)"
cargo test -q --offline -p utlb-sim contention::

echo "== batched lookup path: scalar-equivalence gate"
cargo test -q --offline -p utlb-sim --test equivalence scalar
cargo test -q --offline -p utlb-core batch::
cargo test -q --offline -p utlb-core pinned_prefix
cargo test -q --offline -p utlb-bench scalar_baseline

echo "== streaming: fused generate+replay byte-identity gate"
cargo test -q --offline -p utlb-sim --test stream_equivalence
cargo test -q --offline -p utlb-trace merge::
cargo test -q --offline -p utlb-trace stream::
cargo test -q --offline -p utlb-trace synth::

echo "== streaming: bounded-memory scale run (small epoch count)"
UTLB_STREAM_EPOCHS=40 cargo run -q --release --offline -p utlb-bench --bin stream_scale

echo "== builder: spelling-equivalence of the Run builder (legacy shims are gone)"
cargo test -q --offline -p utlb-sim --test builder_equivalence
cargo test -q --offline -p utlb-sim run::

echo "== sweep executor: scheduling, scratch, poison, and checkpoint unit tests"
cargo test -q --offline -p utlb-sim sweep::

echo "== sweep executor: 1-vs-N byte-identity and checkpointed driver resume"
cargo test -q --offline -p utlb-sim --test sweep_determinism
cargo test -q --offline -p utlb-sim --test sweep_scaling

echo "== cluster: 1-board bit-exactness, determinism, migration proptest"
cargo test -q --offline -p utlb-sim --test cluster
cargo test -q --offline -p utlb-sim cluster::

echo "== cluster: capped-axis scaling run (full axis reserved for the archive)"
UTLB_CLUSTER_NODES=8 cargo run -q --release --offline -p utlb-bench --bin cluster -- --scale 0.1

echo "== cluster: 1-vs-8-board replay bench smoke"
cargo bench -q --offline -p utlb-bench --bench cluster_replay -- --test

echo "== frontend: unit, lifecycle, and bit-exactness tests"
cargo test -q --offline -p utlb-sim --test frontend
cargo test -q --offline -p utlb-sim frontend

echo "== frontend: capped smoke run, byte-identical at 1 vs 4 sweep workers"
UTLB_FRONTEND_CONNS=1000 UTLB_SIM_THREADS=1 \
    cargo run -q --release --offline -p utlb-bench --bin frontend > /dev/null
mv results/frontend_smoke.json results/frontend_smoke_1w.json
UTLB_FRONTEND_CONNS=1000 UTLB_SIM_THREADS=4 \
    cargo run -q --release --offline -p utlb-bench --bin frontend > /dev/null
cmp results/frontend_smoke_1w.json results/frontend_smoke.json
rm results/frontend_smoke_1w.json

echo "== frontend: live-reactor-vs-trace-replay bench smoke"
cargo bench -q --offline -p utlb-bench --bench frontend -- --test

echo "== clustered frontend: 1-board byte-identity, redirect gradient, residency proptest"
cargo test -q --offline -p utlb-sim --test cluster_frontend
cargo test -q --offline -p utlb-sim cluster_frontend::

echo "== clustered frontend: capped smoke run, byte-identical at 1 vs 4 sweep workers"
UTLB_CLUSTER_FRONTEND_CONNS=2000 UTLB_SIM_THREADS=1 \
    cargo run -q --release --offline -p utlb-bench --bin cluster_frontend > /dev/null
mv results/cluster_frontend_smoke.json results/cluster_frontend_smoke_1w.json
UTLB_CLUSTER_FRONTEND_CONNS=2000 UTLB_SIM_THREADS=4 \
    cargo run -q --release --offline -p utlb-bench --bin cluster_frontend > /dev/null
cmp results/cluster_frontend_smoke_1w.json results/cluster_frontend_smoke.json
rm results/cluster_frontend_smoke_1w.json

echo "== clustered frontend: 1-vs-8-board live churn bench smoke"
cargo bench -q --offline -p utlb-bench --bench cluster_frontend -- --test

echo "== DES: replay overhead bench"
cargo bench -q --offline -p utlb-bench --bench des_replay

echo "== streaming: fused-vs-materialized replay bench smoke"
cargo bench -q --offline -p utlb-bench --bench stream_replay -- --test

echo "== criterion smoke: batched-vs-scalar replay benches compile and run"
cargo bench -q --offline -p utlb-bench --bench sweep -- --test

echo "== docs build clean"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline --workspace

echo "CI green."
