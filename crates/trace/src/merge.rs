//! Merging per-process streams into one node trace.
//!
//! The paper: "Time stamps are used to serialize the traces from the five
//! processes on each SMP." This is a k-way merge by timestamp; ties break by
//! process id and then by stream position, which keeps the merge total and
//! deterministic.

use crate::stream::TraceStream;
use crate::TraceRecord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use utlb_mem::ProcessId;

/// Merges per-process record streams (each already in timestamp order) into
/// one globally ordered stream.
///
/// # Panics
///
/// Panics if any individual stream is out of order — generator bugs should
/// fail loudly.
pub fn merge_streams(streams: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    for s in &streams {
        assert!(
            s.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "input stream out of timestamp order"
        );
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<TraceRecord>>> = streams
        .into_iter()
        .map(|s| s.into_iter().peekable())
        .collect();
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    for (i, h) in heads.iter_mut().enumerate() {
        if let Some(r) = h.peek() {
            heap.push(Reverse((r.ts_ns, r.pid.raw(), i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, _, i))) = heap.pop() {
        let rec = heads[i].next().expect("stream head exists");
        out.push(rec);
        if let Some(r) = heads[i].peek() {
            heap.push(Reverse((r.ts_ns, r.pid.raw(), i)));
        }
    }
    out
}

/// The k-way merge over pull-based streams: identical ordering to
/// [`merge_streams`] — timestamp, then pid, then stream index — but lazy,
/// holding exactly one look-ahead record per input stream.
///
/// This is how a whole-node trace is synthesized in O(streams) memory: each
/// per-process generator stream is pulled only as fast as the merged output
/// is consumed.
#[derive(Debug)]
pub struct MergedStream<S> {
    streams: Vec<S>,
    /// One look-ahead record per stream (`None` once exhausted).
    heads: Vec<Option<TraceRecord>>,
    /// Last timestamp pulled per stream, for the monotonicity check.
    last_ts: Vec<u64>,
    heap: BinaryHeap<Reverse<(u64, u32, usize)>>,
    remaining: u64,
    workload: String,
    seed: u64,
    pids: Vec<ProcessId>,
}

impl<S: TraceStream> MergedStream<S> {
    /// Merges `streams` under the given workload metadata.
    ///
    /// # Panics
    ///
    /// Panics (possibly later, mid-pull) if any input stream yields records
    /// out of timestamp order — generator bugs should fail loudly, exactly
    /// as [`merge_streams`] does.
    pub fn new(mut streams: Vec<S>, workload: impl Into<String>, seed: u64) -> Self {
        let mut pids: Vec<ProcessId> = streams.iter().flat_map(|s| s.process_ids()).collect();
        pids.sort();
        pids.dedup();
        let mut remaining = 0u64;
        let mut heads = Vec::with_capacity(streams.len());
        let mut heap = BinaryHeap::new();
        for (i, s) in streams.iter_mut().enumerate() {
            // Counted before pulling the head, so the head is included.
            remaining += s.remaining();
            let head = s.next_record();
            if let Some(r) = &head {
                heap.push(Reverse((r.ts_ns, r.pid.raw(), i)));
            }
            heads.push(head);
        }
        MergedStream {
            last_ts: vec![0; streams.len()],
            streams,
            heads,
            heap,
            remaining,
            workload: workload.into(),
            seed,
            pids,
        }
    }
}

impl<S: TraceStream> TraceStream for MergedStream<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let Reverse((_, _, i)) = self.heap.pop()?;
        let rec = self.heads[i].take().expect("heap entries have a head");
        assert!(
            rec.ts_ns >= self.last_ts[i],
            "input stream out of timestamp order"
        );
        self.last_ts[i] = rec.ts_ns;
        if let Some(next) = self.streams[i].next_record() {
            self.heap.push(Reverse((next.ts_ns, next.pid.raw(), i)));
            self.heads[i] = Some(next);
        }
        self.remaining -= 1;
        Some(rec)
    }

    fn remaining(&self) -> u64 {
        self.remaining
    }

    fn workload(&self) -> &str {
        &self.workload
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn process_ids(&self) -> Vec<ProcessId> {
        self.pids.clone()
    }
}

/// Merges pull-based per-process streams into one ordered stream — the
/// heap-over-iterators counterpart of [`merge_streams`].
pub fn merge_trace_streams<S: TraceStream>(
    streams: Vec<S>,
    workload: impl Into<String>,
    seed: u64,
) -> MergedStream<S> {
    MergedStream::new(streams, workload, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TraceView;
    use crate::{Op, Trace};
    use utlb_mem::VirtAddr;

    fn rec(ts: u64, pid: u32) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            pid: ProcessId::new(pid),
            op: Op::Send,
            va: VirtAddr::new(0),
            nbytes: 64,
        }
    }

    #[test]
    fn merge_orders_by_timestamp() {
        let a = vec![rec(0, 1), rec(20, 1), rec(40, 1)];
        let b = vec![rec(10, 2), rec(30, 2)];
        let merged = merge_streams(vec![a, b]);
        let ts: Vec<u64> = merged.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ties_break_by_pid_deterministically() {
        let a = vec![rec(5, 2)];
        let b = vec![rec(5, 1)];
        let merged = merge_streams(vec![a, b]);
        assert_eq!(merged[0].pid.raw(), 1);
        assert_eq!(merged[1].pid.raw(), 2);
    }

    #[test]
    fn empty_streams_are_fine() {
        assert!(merge_streams(vec![]).is_empty());
        assert_eq!(merge_streams(vec![vec![], vec![rec(1, 1)]]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of timestamp order")]
    fn unsorted_input_panics() {
        merge_streams(vec![vec![rec(10, 1), rec(5, 1)]]);
    }

    fn trace_of(records: Vec<TraceRecord>) -> Trace {
        Trace::new("part", 0, records)
    }

    #[test]
    fn streaming_merge_matches_materialized_merge() {
        let a = vec![rec(0, 1), rec(20, 1), rec(40, 1)];
        let b = vec![rec(10, 2), rec(30, 2), rec(30, 2)];
        let c = vec![rec(5, 3)];
        let eager = merge_streams(vec![a.clone(), b.clone(), c.clone()]);

        let traces: Vec<Trace> = [a, b, c].into_iter().map(trace_of).collect();
        let views = traces.iter().map(TraceView::new).collect();
        let mut merged = merge_trace_streams(views, "merged", 9);
        assert_eq!(merged.remaining(), eager.len() as u64);
        assert_eq!(merged.workload(), "merged");
        assert_eq!(merged.seed(), 9);
        let pids: Vec<u32> = merged.process_ids().iter().map(|p| p.raw()).collect();
        assert_eq!(pids, vec![1, 2, 3]);
        let mut got = Vec::new();
        while let Some(r) = merged.next_record() {
            got.push(r);
        }
        assert_eq!(got, eager);
        assert_eq!(merged.remaining(), 0);
    }

    #[test]
    fn streaming_merge_ties_break_by_pid_then_stream() {
        let a = trace_of(vec![rec(5, 2)]);
        let b = trace_of(vec![rec(5, 1)]);
        let mut merged =
            merge_trace_streams(vec![TraceView::new(&a), TraceView::new(&b)], "tie", 0);
        assert_eq!(merged.next_record().unwrap().pid.raw(), 1);
        assert_eq!(merged.next_record().unwrap().pid.raw(), 2);
        assert!(merged.next_record().is_none());
    }

    #[test]
    fn many_way_ties_order_by_pid_then_stream_index() {
        // Five streams, every record at the same instant. The tie-break is
        // (ts, pid, stream index): pids serialize first, and the same pid
        // appearing in several streams (a process whose trace was split)
        // serializes by stream position — total and deterministic, never
        // heap-insertion order.
        let streams = vec![
            vec![rec(100, 4)], // stream 0
            vec![rec(100, 2)], // stream 1
            vec![rec(100, 4)], // stream 2: pid 4 again — index breaks it
            vec![rec(100, 1)], // stream 3
            vec![rec(100, 2)], // stream 4: pid 2 again
        ];
        let merged = merge_streams(streams.clone());
        let pids: Vec<u32> = merged.iter().map(|r| r.pid.raw()).collect();
        assert_eq!(pids, vec![1, 2, 2, 4, 4]);
        // The duplicate-pid pairs must come out in stream order; nbytes
        // tags which stream each record came from.
        let tagged: Vec<Vec<TraceRecord>> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.iter()
                    .map(|r| TraceRecord {
                        nbytes: i as u64,
                        ..*r
                    })
                    .collect()
            })
            .collect();
        let eager = merge_streams(tagged.clone());
        let order: Vec<u64> = eager.iter().map(|r| r.nbytes).collect();
        assert_eq!(order, vec![3, 1, 4, 0, 2], "pid asc, then stream index asc");

        // The lazy merge agrees record-for-record.
        let traces: Vec<Trace> = tagged.into_iter().map(trace_of).collect();
        let views = traces.iter().map(TraceView::new).collect();
        let mut lazy = merge_trace_streams(views, "ties", 0);
        let mut got = Vec::new();
        while let Some(r) = lazy.next_record() {
            got.push(r);
        }
        assert_eq!(got, eager);
    }

    #[test]
    fn interleaved_ties_across_three_streams_stay_stable() {
        // Ties at several timestamps, interleaved with non-ties, over three
        // streams — the shape a multiprogrammed node trace actually has
        // (barrier releases put many processes at one instant).
        let a = vec![rec(0, 1), rec(10, 1), rec(20, 1)];
        let b = vec![rec(0, 2), rec(10, 2), rec(20, 2)];
        let c = vec![rec(0, 3), rec(10, 3), rec(20, 3)];
        let eager = merge_streams(vec![a.clone(), b.clone(), c.clone()]);
        let key: Vec<(u64, u32)> = eager.iter().map(|r| (r.ts_ns, r.pid.raw())).collect();
        assert_eq!(
            key,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (10, 1),
                (10, 2),
                (10, 3),
                (20, 1),
                (20, 2),
                (20, 3)
            ]
        );
        let traces: Vec<Trace> = [a, b, c].into_iter().map(trace_of).collect();
        let views = traces.iter().map(TraceView::new).collect();
        let mut lazy = merge_trace_streams(views, "barriers", 0);
        let mut got = Vec::new();
        while let Some(r) = lazy.next_record() {
            got.push(r);
        }
        assert_eq!(
            got, eager,
            "lazy and eager merges serialize ties identically"
        );
    }

    #[test]
    fn streaming_merge_of_empty_streams_is_empty() {
        let t = trace_of(vec![]);
        let mut merged =
            merge_trace_streams(vec![TraceView::new(&t), TraceView::new(&t)], "empty", 0);
        assert_eq!(merged.remaining(), 0);
        assert!(merged.next_record().is_none());
    }
}
