//! Merging per-process streams into one node trace.
//!
//! The paper: "Time stamps are used to serialize the traces from the five
//! processes on each SMP." This is a k-way merge by timestamp; ties break by
//! process id and then by stream position, which keeps the merge total and
//! deterministic.

use crate::TraceRecord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merges per-process record streams (each already in timestamp order) into
/// one globally ordered stream.
///
/// # Panics
///
/// Panics if any individual stream is out of order — generator bugs should
/// fail loudly.
pub fn merge_streams(streams: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    for s in &streams {
        assert!(
            s.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "input stream out of timestamp order"
        );
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<TraceRecord>>> = streams
        .into_iter()
        .map(|s| s.into_iter().peekable())
        .collect();
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    for (i, h) in heads.iter_mut().enumerate() {
        if let Some(r) = h.peek() {
            heap.push(Reverse((r.ts_ns, r.pid.raw(), i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, _, i))) = heap.pop() {
        let rec = heads[i].next().expect("stream head exists");
        out.push(rec);
        if let Some(r) = heads[i].peek() {
            heap.push(Reverse((r.ts_ns, r.pid.raw(), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;
    use utlb_mem::{ProcessId, VirtAddr};

    fn rec(ts: u64, pid: u32) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            pid: ProcessId::new(pid),
            op: Op::Send,
            va: VirtAddr::new(0),
            nbytes: 64,
        }
    }

    #[test]
    fn merge_orders_by_timestamp() {
        let a = vec![rec(0, 1), rec(20, 1), rec(40, 1)];
        let b = vec![rec(10, 2), rec(30, 2)];
        let merged = merge_streams(vec![a, b]);
        let ts: Vec<u64> = merged.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ties_break_by_pid_deterministically() {
        let a = vec![rec(5, 2)];
        let b = vec![rec(5, 1)];
        let merged = merge_streams(vec![a, b]);
        assert_eq!(merged[0].pid.raw(), 1);
        assert_eq!(merged[1].pid.raw(), 2);
    }

    #[test]
    fn empty_streams_are_fine() {
        assert!(merge_streams(vec![]).is_empty());
        assert_eq!(merge_streams(vec![vec![], vec![rec(1, 1)]]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of timestamp order")]
    fn unsorted_input_panics() {
        merge_streams(vec![vec![rec(10, 1), rec(5, 1)]]);
    }
}
