//! Communication traces for the UTLB study.
//!
//! The paper's evaluation (§6) is trace-driven: seven SPLASH-2 applications
//! ran under a home-based shared-virtual-memory protocol on a Myrinet
//! cluster of four 4-way SMPs, the VMMC software logged every send and
//! remote-read with a globally-synchronized clock, and the merged per-node
//! traces fed a simulator. Those traces no longer exist, so this crate
//! provides:
//!
//! * the trace [`TraceRecord`] format and JSONL [`read_jsonl`]/[`write_jsonl`],
//! * timestamp-ordered [`merge_streams`] of per-process streams,
//! * **synthetic workload generators** — one per application — calibrated to
//!   the paper's Table 3 (communication footprint in 4 KB pages and
//!   translation lookups per node) and to each application's qualitative
//!   access pattern (§6.1): regular strided FFT/LU, task-queue
//!   Raytrace/Volrend, phase-structured Radix, iterative spatial
//!   Barnes/Water.
//!
//! One generated trace covers one node: four application processes plus one
//! SVM protocol process, interleaved in time, exactly the multiprogramming
//! level the paper's NIC saw.
//!
//! Generation is **streaming-first**: [`gen::stream`] yields the same
//! records as [`gen::generate`] one at a time through the [`TraceStream`]
//! trait, [`merge_trace_streams`] interleaves per-process streams lazily,
//! and [`Looped`] repeats a bounded-footprint stream for arbitrarily many
//! epochs — so replay memory is O(chunk), not O(trace).
//!
//! # Example
//!
//! ```
//! use utlb_trace::{gen, GenConfig, SplashApp};
//!
//! let cfg = GenConfig { seed: 7, scale: 0.05, app_processes: 4 };
//! let trace = gen::generate(SplashApp::Radix, &cfg);
//! assert_eq!(trace.process_ids().len(), 5);
//! // Footprint and lookups track the paper's Table 3 (scaled).
//! let spec = SplashApp::Radix.spec();
//! assert!(trace.total_lookups() as f64 >= 0.8 * spec.lookups as f64 * 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod apps;
pub mod gen;
mod io;
mod merge;
mod record;
mod shard;
mod stream;
mod synth;

pub use apps::{AppSpec, SplashApp};
pub use io::{read_jsonl, write_jsonl};
pub use merge::{merge_streams, merge_trace_streams, MergedStream};
pub use record::{merge_multiprogram, Op, Trace, TraceRecord};
pub use shard::{shard_trace, ShardMap};
pub use stream::{fill_chunk, Looped, TraceStream, TraceView};
pub use synth::{GenConfig, PatternBuilder, ProcessStream};
