//! Trace record format.

use serde::{Deserialize, Serialize};
use utlb_mem::{ProcessId, VirtAddr, PAGE_SIZE};

/// The communication operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// A send (remote store) from the local buffer.
    Send,
    /// A remote fetch into the local buffer.
    Fetch,
}

/// One traced communication request.
///
/// Matches what the paper's instrumented VMMC software recorded: "each send
/// and remote read request along with a globally-synchronized clock".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Globally-synchronized timestamp in nanoseconds.
    pub ts_ns: u64,
    /// The requesting process.
    pub pid: ProcessId,
    /// Operation kind.
    pub op: Op,
    /// Local buffer address.
    pub va: VirtAddr,
    /// Transfer length in bytes.
    pub nbytes: u64,
}

impl TraceRecord {
    /// Number of page-granular translation lookups this request costs (the
    /// firmware splits transfers at page boundaries).
    pub fn lookups(&self) -> u64 {
        self.va.span_pages(self.nbytes)
    }
}

/// A complete trace: records in timestamp order plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable workload name (e.g. `"radix"`).
    pub workload: String,
    /// Seed the generator used, for reproducibility.
    pub seed: u64,
    /// Records sorted by `ts_ns`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace, asserting timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if records are not sorted by timestamp.
    pub fn new(workload: impl Into<String>, seed: u64, records: Vec<TraceRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "trace records must be in timestamp order"
        );
        Trace {
            workload: workload.into(),
            seed,
            records,
        }
    }

    /// Total page-granular translation lookups in the trace.
    pub fn total_lookups(&self) -> u64 {
        self.records.iter().map(TraceRecord::lookups).sum()
    }

    /// Number of distinct `(pid, page)` pairs — the communication memory
    /// footprint in 4 KB pages, the quantity in the paper's Table 3.
    pub fn footprint_pages(&self) -> u64 {
        use std::collections::HashSet;
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        for r in &self.records {
            for p in r.va.page().range(r.lookups()) {
                seen.insert((r.pid.raw(), p.number()));
            }
        }
        seen.len() as u64
    }

    /// Distinct processes appearing in the trace.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        let mut pids: Vec<ProcessId> = self.records.iter().map(|r| r.pid).collect();
        pids.sort();
        pids.dedup();
        pids
    }

    /// Splits the trace into per-process record streams, one per pid in
    /// [`Trace::process_ids`] order. Each stream preserves the trace's
    /// record order (and therefore timestamp order), so a discrete-event
    /// driver can re-interleave the streams by arrival time while keeping
    /// every process's program order intact.
    pub fn per_process_streams(&self) -> Vec<(ProcessId, Vec<TraceRecord>)> {
        let pids = self.process_ids();
        let mut streams: Vec<(ProcessId, Vec<TraceRecord>)> =
            pids.into_iter().map(|pid| (pid, Vec::new())).collect();
        for r in &self.records {
            let slot = streams
                .iter_mut()
                .find(|(pid, _)| *pid == r.pid)
                .expect("process_ids covers every record");
            slot.1.push(*r);
        }
        streams
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.nbytes).sum()
    }

    /// Average transfer size in pages.
    pub fn mean_pages_per_request(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.total_lookups() as f64 / self.records.len() as f64
    }
}

/// Merges several traces into one multiprogrammed trace, remapping process
/// ids so each input keeps a disjoint, dense pid range (trace 0 keeps its
/// pids, trace 1's are shifted past them, and so on).
///
/// This builds the workload the paper's §7 limitations call for: "multiple
/// independent programs" sharing one NIC, which the SPLASH-2 traces could
/// not provide.
///
/// # Panics
///
/// Panics if `traces` is empty.
pub fn merge_multiprogram(traces: &[Trace]) -> Trace {
    assert!(!traces.is_empty(), "need at least one trace");
    let mut streams: Vec<Vec<TraceRecord>> = Vec::new();
    let mut pid_base = 0u32;
    let mut names = Vec::new();
    for t in traces {
        names.push(t.workload.clone());
        let mut remapped = t.records.clone();
        for r in &mut remapped {
            r.pid = ProcessId::new(r.pid.raw() + pid_base);
        }
        pid_base += t.process_ids().len() as u32;
        streams.push(remapped);
    }
    let records = crate::merge_streams(streams);
    Trace::new(names.join("+"), traces[0].seed, records)
}

/// Convenience constructor for a one-page send record.
pub(crate) fn send_page(ts_ns: u64, pid: ProcessId, page: u64) -> TraceRecord {
    TraceRecord {
        ts_ns,
        pid,
        op: Op::Send,
        va: VirtAddr::new(page * PAGE_SIZE),
        nbytes: PAGE_SIZE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, pid: u32, page: u64) -> TraceRecord {
        send_page(ts, ProcessId::new(pid), page)
    }

    #[test]
    fn lookups_split_at_page_boundaries() {
        let r = TraceRecord {
            ts_ns: 0,
            pid: ProcessId::new(1),
            op: Op::Send,
            va: VirtAddr::new(PAGE_SIZE - 8),
            nbytes: 16,
        };
        assert_eq!(r.lookups(), 2);
    }

    #[test]
    fn trace_statistics() {
        let t = Trace::new(
            "test",
            7,
            vec![rec(0, 1, 5), rec(10, 1, 5), rec(20, 2, 5), rec(30, 1, 6)],
        );
        assert_eq!(t.total_lookups(), 4);
        assert_eq!(t.footprint_pages(), 3, "(1,5), (2,5), (1,6)");
        assert_eq!(t.process_ids().len(), 2);
        assert_eq!(t.mean_pages_per_request(), 1.0);
        assert_eq!(t.total_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn per_process_streams_partition_and_preserve_order() {
        let t = Trace::new(
            "test",
            7,
            vec![rec(0, 2, 5), rec(10, 1, 5), rec(10, 2, 6), rec(30, 1, 6)],
        );
        let streams = t.per_process_streams();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, ProcessId::new(1), "pid order, not first-seen");
        assert_eq!(streams[0].1, vec![rec(10, 1, 5), rec(30, 1, 6)]);
        assert_eq!(streams[1].1, vec![rec(0, 2, 5), rec(10, 2, 6)]);
        let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, t.records.len(), "partition loses nothing");
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_records_panic() {
        Trace::new("bad", 0, vec![rec(10, 1, 0), rec(5, 1, 1)]);
    }

    /// A zero-byte request touches no page: it costs no lookups and adds
    /// nothing to the footprint, so replay loops may pass it through the
    /// batch path without special-casing.
    #[test]
    fn zero_byte_requests_cost_no_lookups() {
        let r = TraceRecord {
            ts_ns: 0,
            pid: ProcessId::new(1),
            op: Op::Fetch,
            va: VirtAddr::new(123),
            nbytes: 0,
        };
        assert_eq!(r.lookups(), 0);
        let t = Trace::new("zero", 0, vec![r]);
        assert_eq!(t.total_lookups(), 0);
        assert_eq!(t.footprint_pages(), 0);
        assert_eq!(t.total_bytes(), 0);
    }

    /// A transfer straddling interior page boundaries costs one lookup per
    /// page touched, and the footprint counts each of those pages.
    #[test]
    fn straddling_transfers_cost_one_lookup_per_page_touched() {
        let r = TraceRecord {
            ts_ns: 0,
            pid: ProcessId::new(1),
            op: Op::Send,
            va: VirtAddr::new(PAGE_SIZE / 2),
            nbytes: 3 * PAGE_SIZE,
        };
        // Half of page 0, pages 1 and 2, half of page 3.
        assert_eq!(r.lookups(), 4);
        let t = Trace::new("straddle", 0, vec![r]);
        assert_eq!(t.footprint_pages(), 4);
        assert_eq!(t.mean_pages_per_request(), 4.0);
    }

    #[test]
    fn multiprogram_merge_remaps_pids_disjointly() {
        let t1 = Trace::new("one", 0, vec![rec(0, 1, 5), rec(10, 2, 6)]);
        let t2 = Trace::new("two", 0, vec![rec(5, 1, 5), rec(15, 1, 7)]);
        let merged = merge_multiprogram(&[t1, t2]);
        assert_eq!(merged.workload, "one+two");
        assert_eq!(merged.records.len(), 4);
        // t1 had pids {1,2}; t2's pid 1 becomes 3.
        let pids: Vec<u32> = merged.process_ids().iter().map(|p| p.raw()).collect();
        assert_eq!(pids, vec![1, 2, 3]);
        // Footprint counts per remapped pid: (1,5),(2,6),(3,5),(3,7).
        assert_eq!(merged.footprint_pages(), 4);
        assert!(merged.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
