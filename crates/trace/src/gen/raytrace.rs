//! Raytrace: "uses a task-farm model to raytrace a scene. Communication in
//! Raytrace revolves around the task queues" (§6.1); irregular (§6.5).
//!
//! Model: one covering pass of the scene partition, then random task tiles
//! grabbed from the queue, interleaved with very frequent small messages on
//! the handful of task-queue pages themselves.

use super::StreamPlan;
use crate::synth::PatternOp;

/// Task tile size in pages.
pub const TILE: u64 = 8;

/// One in `QUEUE_EVERY` accesses is a task-queue control message.
pub const QUEUE_EVERY: u64 = 16;

/// Size of a task-queue control message in bytes.
pub const QUEUE_MSG_BYTES: u64 = 128;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    let cover = plan.span.min(plan.budget);
    vec![
        PatternOp::Sequential {
            start: 0,
            count: cover,
        },
        // Tile bursts interleaved with queue messages on the queue page.
        PatternOp::TileBursts {
            span: plan.span,
            total: plan.budget.saturating_sub(cover),
            tile: TILE,
            every: QUEUE_EVERY,
            nbytes: QUEUE_MSG_BYTES,
        },
    ]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn covers_and_spends_budget() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 630,
                budget: 1460,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 1460);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 630);
    }

    #[test]
    fn queue_page_is_hot() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 100,
                budget: 500,
            },
        );
        let recs = b.finish();
        let queue_hits = recs
            .iter()
            .filter(|r| r.va.page().number() == 0 && r.nbytes < 4096)
            .count();
        assert!(queue_hits >= 20, "queue messages: {queue_hits}");
    }
}
