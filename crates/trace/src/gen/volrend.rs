//! Volrend: "uses a task-farm model to render a 3-D volume. Communication
//! in this application also centers on the task queues" (§6.1).
//!
//! Same task-farm shape as Raytrace but with smaller tiles and roughly twice
//! the per-page reuse (Table 3: 9 438 lookups over 2 371 pages ≈ 4×), which
//! is why its miss-rate floor (≈0.25) sits below Raytrace's (≈0.43).

use super::StreamPlan;
use crate::synth::PatternOp;

/// Task tile size in pages (volume bricks are smaller than scene tiles).
pub const TILE: u64 = 4;

/// One in `QUEUE_EVERY` accesses is a task-queue control message.
pub const QUEUE_EVERY: u64 = 12;

/// Size of a task-queue control message in bytes.
pub const QUEUE_MSG_BYTES: u64 = 96;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    let cover = plan.span.min(plan.budget);
    vec![
        PatternOp::Sequential {
            start: 0,
            count: cover,
        },
        PatternOp::TileBursts {
            span: plan.span,
            total: plan.budget.saturating_sub(cover),
            tile: TILE,
            every: QUEUE_EVERY,
            nbytes: QUEUE_MSG_BYTES,
        },
    ]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn covers_and_spends_budget() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 237,
                budget: 943,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 943);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 237);
    }

    #[test]
    fn reuse_is_higher_than_raytrace_shape() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 100,
                budget: 400,
            },
        );
        assert_eq!(b.len(), 400, "4 touches per page on Table 3 ratios");
    }
}
