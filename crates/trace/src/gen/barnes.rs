//! Barnes: "the original Barnes-Hut algorithm for N-body simulation. Each
//! process gets a partition of the particles ... Communication in this
//! application is moderate as the particle partition exhibits spatial
//! locality" (§6.1).
//!
//! Model: one covering pass (compulsory traffic for the partition), then a
//! strongly local sliding-window walk for the many remaining touches
//! (Table 3 gives ≈16 touches per page). The small instantaneous working
//! set is what gives Barnes its low, gently size-dependent NIC miss rates
//! (0.10 at 1 K entries down to 0.04 at 8 K, Table 4).

use super::StreamPlan;
use crate::synth::PatternOp;

/// Step radius of the particle walk, in pages — small, so the walk's
/// instantaneous working set stays far below even a 1 K-entry cache.
pub const WINDOW: u64 = 3;

/// Probability that the next access stays near the current position.
pub const LOCALITY: f64 = 0.97;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    // Covering pass, time-rotated per peer; the walk itself is already
    // decorrelated by the per-process RNG seed.
    let cover = plan.span.min(plan.budget);
    vec![
        PatternOp::Rotated {
            seq: (0..cover).collect(),
            total: cover,
        },
        PatternOp::LocalWalk {
            span: plan.span,
            count: plan.budget.saturating_sub(plan.span),
            step: WINDOW,
            locality: LOCALITY,
        },
    ]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn covers_partition_then_walks_locally() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 100,
                budget: 1600,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 1600);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn high_reuse_ratio() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 50,
                budget: 800,
            },
        );
        assert_eq!(b.len() as u64 / 50, 16, "≈16 touches per page");
    }
}
