//! FFT: "a parallel 2D Fast Fourier Transform ... exhibits a high degree of
//! data communication" (§6.1), and §6.5 calls it "a regular application with
//! a strided access pattern such that it does not access most of the pages
//! that are pre-pinned" — the one workload 16-page prepinning hurts.
//!
//! Model: transpose phases walk the partition in stride-16 residue-class
//! order; each page is touched twice back to back (the SVM protocol sends
//! the page and immediately follows with its diff/ack traffic), and the
//! phase structure repeats until the budget (≈4 touches per page, Table 3)
//! is consumed. Clustered reuse is what keeps FFT's miss rate near 0.5 at
//! small caches instead of 1.0 — the second touch hits even when a pass is
//! far larger than the cache.

use super::StreamPlan;
use crate::synth::PatternOp;

/// Stride of the transpose walk, in pages.
pub const STRIDE: u64 = 16;

/// Consecutive touches per page visit (send + follow-up).
pub const REPS: u64 = 2;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    // One strided pass visits every page REPS times back to back, residue
    // class by class. Passes repeat cyclically (with remainder) to meet the
    // budget, then time-rotate so SPMD peers transpose different rows at
    // any instant — all captured by one Rotated op over the single pass.
    let mut pass = Vec::with_capacity((plan.span * REPS) as usize);
    for class in 0..STRIDE {
        let mut i = class;
        while i < plan.span {
            for _ in 0..REPS {
                pass.push(i);
            }
            i += STRIDE;
        }
    }
    vec![PatternOp::Rotated {
        seq: pass,
        total: plan.budget,
    }]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn budget_and_coverage() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 100,
                budget: 430,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 430);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 100, "covers the partition");
    }

    #[test]
    fn consecutive_accesses_are_strided() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 64,
                budget: 64,
            },
        );
        let recs = b.finish();
        assert_eq!(
            recs[0].va.page().number(),
            recs[1].va.page().number(),
            "clustered reuse: consecutive touches of the same page"
        );
        assert_eq!(
            recs[REPS as usize].va.page().number() - recs[0].va.page().number(),
            STRIDE
        );
    }

    #[test]
    fn empty_span_is_safe() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                span: 0,
                budget: 10,
                phase: 0,
                peers: 5,
            },
        );
        assert!(b.is_empty());
    }
}
