//! Radix: "sorts an array of integer keys in parallel. The algorithm
//! consists of a number of radix-sort phases. During a phase, each process
//! sorts a contiguous sequence of the keys ... At the end of the phase, the
//! results from each process are combined to form a new array" (§6.1).
//!
//! Model: alternating phases — a sequential local-sort sweep over a slice of
//! the partition, then a uniformly random permutation scatter over the whole
//! partition. The scatter has essentially no reuse locality, which is why
//! Radix keeps the highest miss rates of the suite (≈0.55 even at 16 K
//! entries, Table 4) and is the paper's prefetching case study (Figure 8):
//! the *sequential sort* halves still reward prefetch.

use super::StreamPlan;
use crate::synth::PatternOp;

/// Number of radix phases.
pub const PHASES: u64 = 4;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    let mut ops = Vec::new();
    // Budget split: each phase is half sequential sort, half scatter.
    let per_phase = (plan.budget / PHASES).max(1);
    let mut emitted = 0u64;
    for phase in 0..PHASES {
        if emitted >= plan.budget {
            break;
        }
        let seq = (per_phase / 2).min(plan.budget - emitted).min(plan.span);
        // Each phase sorts a different slice so the union covers everything.
        let start = (phase * plan.span / PHASES).min(plan.span - 1);
        let len = seq.min(plan.span - start);
        ops.push(PatternOp::Sequential { start, count: len });
        emitted += len;
        if emitted >= plan.budget {
            break;
        }
        let scatter = (per_phase - per_phase / 2).min(plan.budget - emitted);
        ops.push(PatternOp::Scatter {
            span: plan.span,
            count: scatter,
        });
        emitted += scatter;
    }
    // Cover any pages the phases missed, so footprint matches Table 3.
    if emitted < plan.budget {
        ops.push(PatternOp::Sequential {
            start: 0,
            count: (plan.budget - emitted).min(plan.span),
        });
    }
    ops
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn phases_cover_most_of_the_partition() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 640,
                budget: 1180,
            },
        );
        let recs = b.finish();
        assert!((recs.len() as i64 - 1180).unsigned_abs() < 16);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert!(
            distinct.len() > 500,
            "scatter + sorts cover most pages: {}",
            distinct.len()
        );
    }

    #[test]
    fn low_reuse_matches_compulsory_dominance() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 100,
                budget: 184,
            },
        );
        let recs = b.finish();
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        let compulsory = distinct.len() as f64 / recs.len() as f64;
        assert!(compulsory > 0.4, "compulsory fraction {compulsory}");
    }
}
