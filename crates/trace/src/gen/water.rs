//! Water (water-spatial): "calculates movements of molecules using a
//! spatialized algorithm to exploit data locality" (§6.1).
//!
//! Model: repeated sequential sweeps over the molecule partition — the
//! per-timestep force computation revisits every cell in order, touching
//! each cell twice back to back (force + update). Cyclic sweeps thrash an
//! LRU-ish cache smaller than the footprint but hit completely in a larger
//! one, reproducing Water's strong cache-size sensitivity in Table 4
//! (0.35 at 1 K entries collapsing to ~0.1 once the footprint fits).

use super::StreamPlan;
use crate::synth::PatternOp;

/// Consecutive touches per cell visit.
pub const REPS: u64 = 2;

/// Every `JITTER_EVERY`-th visit also touches the neighbouring cell.
pub const JITTER_EVERY: u64 = 8;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    // One full sweep; sweeps repeat cyclically until the budget is spent,
    // then time-rotate so each peer is at a different cell of its sweep.
    let mut pass = Vec::with_capacity((plan.span * REPS) as usize);
    for i in 0..plan.span {
        for _ in 0..REPS {
            pass.push(i);
        }
        // Neighbour-cell interaction: revisit the previous page.
        if i > 0 && i.is_multiple_of(JITTER_EVERY) {
            pass.push(i - 1);
        }
    }
    vec![PatternOp::Rotated {
        seq: pass,
        total: plan.budget,
    }]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn sweeps_cover_and_respect_budget() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 189,
                budget: 849,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 849);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 189);
    }

    #[test]
    fn neighbour_revisits_exist() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 64,
                budget: 100,
            },
        );
        let recs = b.finish();
        let backsteps = recs
            .windows(2)
            .filter(|w| w[1].va.page().number() + 1 == w[0].va.page().number())
            .count();
        assert!(backsteps > 0);
    }
}
