//! LU: "a parallel LU matrix decomposition program" (§6.1), regular (§6.5).
//!
//! Model: one blocked sequential sweep touching every page twice back to
//! back (factor + update traffic). Table 3 gives ≈2 touches per page, and
//! because the second touch is immediate, the miss rate is pinned at ~0.5
//! at *every* cache size — exactly LU's flat ~0.49 row in Tables 4 and 8.

use super::StreamPlan;
use crate::synth::PatternOp;

/// Block size of the sweep, in pages (a 64-page column block of the 4K×4K
/// matrix).
pub const BLOCK: u64 = 64;

/// Consecutive touches per page visit.
pub const REPS: u64 = 2;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    // One blocked sweep with clustered REPS-touches; sweeps repeat
    // cyclically until the budget is spent, then time-rotate so peers
    // factor different blocks at any instant.
    let mut pass = Vec::with_capacity((plan.span * REPS) as usize);
    let mut block_start = 0u64;
    while block_start < plan.span {
        let len = BLOCK.min(plan.span - block_start);
        for i in 0..len {
            for _ in 0..REPS {
                pass.push(block_start + i);
            }
        }
        block_start += len;
    }
    vec![PatternOp::Rotated {
        seq: pass,
        total: plan.budget,
    }]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn two_touches_per_page_on_table3_ratio() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 125,
                budget: 250,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 250);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 125);
    }

    #[test]
    fn budget_smaller_than_span_stops_early() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                span: 100,
                budget: 10,
                phase: 0,
                peers: 5,
            },
        );
        assert_eq!(b.len(), 10);
    }
}
