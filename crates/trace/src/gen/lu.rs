//! LU: "a parallel LU matrix decomposition program" (§6.1), regular (§6.5).
//!
//! Model: one blocked sequential sweep touching every page twice back to
//! back (factor + update traffic). Table 3 gives ≈2 touches per page, and
//! because the second touch is immediate, the miss rate is pinned at ~0.5
//! at *every* cache size — exactly LU's flat ~0.49 row in Tables 4 and 8.

use super::{emit_rotated, StreamPlan};
use crate::synth::PatternBuilder;

/// Block size of the sweep, in pages (a 64-page column block of the 4K×4K
/// matrix).
pub const BLOCK: u64 = 64;

/// Consecutive touches per page visit.
pub const REPS: u64 = 2;

pub(super) fn fill(b: &mut PatternBuilder, plan: StreamPlan) {
    if plan.span == 0 {
        return;
    }
    // Blocked sweeps with clustered REPS-touches until the budget is
    // spent, then time-rotated so peers factor different blocks at any
    // instant.
    let mut seq = Vec::with_capacity(plan.budget as usize);
    'outer: loop {
        let mut block_start = 0u64;
        while block_start < plan.span {
            let len = BLOCK.min(plan.span - block_start);
            for i in 0..len {
                for _ in 0..REPS {
                    if seq.len() as u64 >= plan.budget {
                        break 'outer;
                    }
                    seq.push(block_start + i);
                }
            }
            block_start += len;
        }
        if seq.len() as u64 >= plan.budget {
            break;
        }
    }
    emit_rotated(b, &seq, plan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use utlb_mem::ProcessId;

    #[test]
    fn two_touches_per_page_on_table3_ratio() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 125,
                budget: 250,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 250);
        let distinct: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.va.page().number()).collect();
        assert_eq!(distinct.len(), 125);
    }

    #[test]
    fn budget_smaller_than_span_stops_early() {
        let mut b = PatternBuilder::new(ProcessId::new(1), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                span: 100,
                budget: 10,
                phase: 0,
                peers: 5,
            },
        );
        assert_eq!(b.len(), 10);
    }
}
