//! The SVM protocol process.
//!
//! The paper's traces come from "four application processes and a protocol
//! process" per SMP, all using Myrinet (§6). The home-based release-
//! consistency protocol process forwards page updates (page-sized sends
//! over its partition) and exchanges frequent small lock/barrier messages
//! on a few hot pages.

use super::StreamPlan;
use crate::synth::PatternOp;

/// Number of hot control pages (locks, barriers, queue heads).
pub const HOT_PAGES: u64 = 4;

/// One in `CONTROL_EVERY` requests is a small control message.
pub const CONTROL_EVERY: u64 = 4;

/// Size of a control message in bytes.
pub const CONTROL_MSG_BYTES: u64 = 64;

/// Cyclic walk stride of the page-update traffic.
pub const UPDATE_STRIDE: u64 = 7;

pub(super) fn ops(plan: StreamPlan) -> Vec<PatternOp> {
    if plan.span == 0 {
        return Vec::new();
    }
    // Cover the diff/page area once, then pump control messages on the hot
    // pages interleaved with cyclic page-update traffic.
    let cover = plan.span.min(plan.budget);
    vec![
        PatternOp::Sequential {
            start: 0,
            count: cover,
        },
        PatternOp::ControlPump {
            span: plan.span,
            total: plan.budget.saturating_sub(cover),
            hot: HOT_PAGES.min(plan.span),
            every: CONTROL_EVERY,
            nbytes: CONTROL_MSG_BYTES,
            stride: UPDATE_STRIDE,
        },
    ]
}

#[cfg(test)]
pub(super) fn fill(b: &mut crate::synth::PatternBuilder, plan: StreamPlan) {
    crate::synth::execute_ops(b, &ops(plan), plan.phase, plan.peers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::PatternBuilder;
    use utlb_mem::ProcessId;

    #[test]
    fn covers_and_spends_budget() {
        let mut b = PatternBuilder::new(ProcessId::new(5), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 200,
                budget: 800,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 800);
        let small = recs.iter().filter(|r| r.nbytes < 4096).count();
        assert!(small > 100, "control messages present: {small}");
    }
}
