//! The SVM protocol process.
//!
//! The paper's traces come from "four application processes and a protocol
//! process" per SMP, all using Myrinet (§6). The home-based release-
//! consistency protocol process forwards page updates (page-sized sends
//! over its partition) and exchanges frequent small lock/barrier messages
//! on a few hot pages.

use super::StreamPlan;
use crate::synth::PatternBuilder;

/// Number of hot control pages (locks, barriers, queue heads).
pub const HOT_PAGES: u64 = 4;

/// One in `CONTROL_EVERY` requests is a small control message.
pub const CONTROL_EVERY: u64 = 4;

pub(super) fn fill(b: &mut PatternBuilder, plan: StreamPlan) {
    if plan.span == 0 {
        return;
    }
    // Cover the diff/page area once.
    let cover = plan.span.min(plan.budget);
    b.sequential(0, cover);
    let mut remaining = plan.budget.saturating_sub(cover);
    let hot = HOT_PAGES.min(plan.span);
    let mut k = 0u64;
    while remaining > 0 {
        if k.is_multiple_of(CONTROL_EVERY) {
            b.small(k % hot, 64);
        } else {
            // Page update traffic walks the partition cyclically.
            b.page((k * 7) % plan.span);
        }
        k += 1;
        remaining -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utlb_mem::ProcessId;

    #[test]
    fn covers_and_spends_budget() {
        let mut b = PatternBuilder::new(ProcessId::new(5), 0, 1, 10);
        fill(
            &mut b,
            StreamPlan {
                phase: 0,
                peers: 5,
                span: 200,
                budget: 800,
            },
        );
        let recs = b.finish();
        assert_eq!(recs.len(), 800);
        let small = recs.iter().filter(|r| r.nbytes < 4096).count();
        assert!(small > 100, "control messages present: {small}");
    }
}
