//! Synthetic workload generators, one per SPLASH-2 application.
//!
//! Each generator produces one node's trace: `cfg.app_processes` application
//! streams plus one SVM protocol-process stream (the paper ran 4 + 1 per
//! SMP), merged by timestamp. Footprint and lookup totals are calibrated to
//! Table 3 via [`SplashApp::spec`]; the access *shape* follows §6.1's
//! description of each application.

mod barnes;
mod fft;
mod lu;
mod protocol;
mod radix;
mod raytrace;
mod volrend;
mod water;

use crate::synth::{partition, GenConfig, PatternBuilder};
use crate::{merge_streams, SplashApp, Trace, TraceRecord};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use utlb_mem::ProcessId;

/// Absolute virtual page where every process' communication region starts
/// (256 MB in, comfortably inside the 4 GB directory coverage).
pub const BASE_PAGE: u64 = 0x1_0000;

/// Mean nanoseconds between requests of one process.
const TS_STEP: u64 = 20_000;

/// Targets for one process stream, handed to the per-app pattern functions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamPlan {
    /// Partition span in pages (the stream touches exactly these).
    pub span: u64,
    /// Lookup budget for the stream.
    pub budget: u64,
    /// This stream's index among its peers (0-based) — used to de-phase
    /// SPMD sweeps: real processes are at different points of their data at
    /// any instant, so generators time-rotate their sequences by
    /// `phase / peers` of a period.
    pub phase: u32,
    /// Total peer streams.
    pub peers: u32,
}

/// Emits `seq` time-rotated by `phase/peers` of its length: the stream
/// starts mid-sequence and wraps, so lockstep peers never sweep in phase.
pub(crate) fn emit_rotated(b: &mut PatternBuilder, seq: &[u64], plan: StreamPlan) {
    if seq.is_empty() {
        return;
    }
    let rot = (plan.phase as usize * seq.len()) / plan.peers.max(1) as usize;
    for &p in seq[rot..].iter().chain(seq[..rot].iter()) {
        b.page(p);
    }
}

/// Generates the trace for `app` under `cfg`.
///
/// # Panics
///
/// Panics if `cfg.scale` is not positive or `cfg.app_processes` is zero.
pub fn generate(app: SplashApp, cfg: &GenConfig) -> Trace {
    assert!(cfg.scale > 0.0, "scale must be positive");
    assert!(
        cfg.app_processes > 0,
        "need at least one application process"
    );
    let spec = app.spec();
    let footprint =
        ((spec.footprint_pages as f64 * cfg.scale) as u64).max(cfg.total_processes() as u64);
    let lookups = ((spec.lookups as f64 * cfg.scale) as u64).max(footprint);

    let parts = partition(footprint, cfg.total_processes() as u64);
    let budgets = partition(lookups, cfg.total_processes() as u64);

    let mut streams: Vec<Vec<TraceRecord>> = Vec::new();
    for (i, ((_offset, span), (_, budget))) in parts.iter().zip(budgets.iter()).enumerate() {
        let pid = ProcessId::new(i as u32 + 1);
        // Every process places its communication region at the same virtual
        // base: the processes are SPMD instances of one program, so their
        // heaps start at the same address in their separate address spaces.
        // This is exactly why §3.2's process-dependent index offsetting
        // matters — identical vpns from different processes would otherwise
        // collide in the shared cache (the "direct-nohash" rows of Table 8).
        let mut b = PatternBuilder::new(pid, BASE_PAGE, cfg.seed, TS_STEP);
        let plan = StreamPlan {
            span: *span,
            budget: *budget,
            phase: i as u32,
            peers: cfg.total_processes(),
        };
        let is_protocol = i as u32 == cfg.app_processes;
        if is_protocol {
            protocol::fill(&mut b, plan);
        } else {
            match app {
                SplashApp::Barnes => barnes::fill(&mut b, plan),
                SplashApp::Fft => fft::fill(&mut b, plan),
                SplashApp::Lu => lu::fill(&mut b, plan),
                SplashApp::Radix => radix::fill(&mut b, plan),
                SplashApp::Raytrace => raytrace::fill(&mut b, plan),
                SplashApp::Volrend => volrend::fill(&mut b, plan),
                SplashApp::Water => water::fill(&mut b, plan),
            }
        }
        streams.push(b.finish());
    }
    let records = merge_streams(streams);
    Trace::new(app.name(), cfg.seed, records)
}

/// Memo key: `scale` enters by bit pattern, which is exact for the config
/// values experiments use and merely conservative otherwise (distinct NaN
/// payloads would fail [`generate`]'s positivity assert anyway).
type MemoKey = (SplashApp, u64, u64, u32);

/// One memo slot: a lazily generated shared trace.
type MemoSlot = Arc<OnceLock<Arc<Trace>>>;

fn memo_cell(key: MemoKey) -> MemoSlot {
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, MemoSlot>>> = OnceLock::new();
    let map = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = map.lock().expect("trace memo poisoned");
    Arc::clone(guard.entry(key).or_default())
}

/// Like [`generate`], but memoized: the first caller per `(app, cfg)`
/// generates the trace, every later (or concurrent) caller gets the same
/// shared `Arc`.
///
/// Experiment sweeps simulate one app under dozens of cache geometries;
/// generation dominated their setup time and, worse, was repeated per cell.
/// The memo holds one entry per distinct `(app, cfg)` for the life of the
/// process — a handful of traces for the full paper suite, so the table is
/// deliberately never evicted.
///
/// # Panics
///
/// Panics as [`generate`] does on invalid `cfg`.
pub fn generate_shared(app: SplashApp, cfg: &GenConfig) -> Arc<Trace> {
    let key = (app, cfg.seed, cfg.scale.to_bits(), cfg.app_processes);
    let cell = memo_cell(key);
    // Generation happens outside the map lock, so slow apps don't serialize
    // unrelated keys; the per-key OnceLock still guarantees single
    // generation under concurrency.
    Arc::clone(cell.get_or_init(|| Arc::new(generate(app, cfg))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GenConfig {
        GenConfig {
            seed: 11,
            scale: 0.05,
            app_processes: 4,
        }
    }

    #[test]
    fn every_app_generates_a_nonempty_ordered_trace() {
        for app in SplashApp::ALL {
            let t = generate(app, &small_cfg());
            assert!(!t.records.is_empty(), "{app}");
            assert!(
                t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
                "{app} out of order"
            );
            assert_eq!(t.process_ids().len(), 5, "{app}: 4 app + 1 protocol");
        }
    }

    #[test]
    fn footprint_and_lookups_track_table3_targets() {
        let cfg = GenConfig {
            seed: 3,
            scale: 1.0,
            app_processes: 4,
        };
        for app in [SplashApp::Fft, SplashApp::Lu, SplashApp::Water] {
            let spec = app.spec();
            let t = generate(app, &cfg);
            let fp = t.footprint_pages() as f64;
            let lk = t.total_lookups() as f64;
            let fp_target = spec.footprint_pages as f64;
            let lk_target = spec.lookups as f64;
            assert!(
                (fp - fp_target).abs() / fp_target < 0.15,
                "{app}: footprint {fp} vs target {fp_target}"
            );
            assert!(
                (lk - lk_target).abs() / lk_target < 0.15,
                "{app}: lookups {lk} vs target {lk_target}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SplashApp::Radix, &small_cfg());
        let b = generate(SplashApp::Radix, &small_cfg());
        assert_eq!(a, b);
        let c = generate(
            SplashApp::Radix,
            &GenConfig {
                seed: 12,
                ..small_cfg()
            },
        );
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn regular_apps_have_low_reuse_irregular_high() {
        let cfg = GenConfig {
            seed: 5,
            scale: 0.2,
            app_processes: 4,
        };
        let lu = generate(SplashApp::Lu, &cfg);
        let barnes = generate(SplashApp::Barnes, &cfg);
        let reuse = |t: &Trace| t.total_lookups() as f64 / t.footprint_pages() as f64;
        assert!(
            reuse(&barnes) > 2.0 * reuse(&lu),
            "barnes reuse {} vs lu {}",
            reuse(&barnes),
            reuse(&lu)
        );
    }
}
