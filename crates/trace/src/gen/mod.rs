//! Synthetic workload generators, one per SPLASH-2 application.
//!
//! Each generator produces one node's trace: `cfg.app_processes` application
//! streams plus one SVM protocol-process stream (the paper ran 4 + 1 per
//! SMP), merged by timestamp. Footprint and lookup totals are calibrated to
//! Table 3 via [`SplashApp::spec`]; the access *shape* follows §6.1's
//! description of each application.
//!
//! Generation is pull-based: each per-app module compiles its plan into a
//! short `PatternOp` program, a
//! [`ProcessStream`] interprets the program one record
//! per pull, and [`stream`] lazily merges the per-process streams by
//! timestamp. [`generate`] is a thin collect-the-stream wrapper, so the
//! eager and streaming paths are identical by construction — and pinned
//! byte-identical by the golden-fingerprint test below.

mod barnes;
mod fft;
mod lu;
mod protocol;
mod radix;
mod raytrace;
mod volrend;
mod water;

use crate::merge::{merge_trace_streams, MergedStream};
use crate::stream::TraceStream;
use crate::synth::{partition, GenConfig, PatternOp, ProcessStream};
use crate::{SplashApp, Trace};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use utlb_mem::ProcessId;

/// Absolute virtual page where every process' communication region starts
/// (256 MB in, comfortably inside the 4 GB directory coverage).
pub const BASE_PAGE: u64 = 0x1_0000;

/// Mean nanoseconds between requests of one process.
const TS_STEP: u64 = 20_000;

/// Targets for one process stream, handed to the per-app pattern functions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamPlan {
    /// Partition span in pages (the stream touches exactly these).
    pub span: u64,
    /// Lookup budget for the stream.
    pub budget: u64,
    /// This stream's index among its peers (0-based) — used to de-phase
    /// SPMD sweeps: real processes are at different points of their data at
    /// any instant, so generators time-rotate their sequences by
    /// `phase / peers` of a period.
    pub phase: u32,
    /// Total peer streams.
    pub peers: u32,
}

/// Compiles the op program for process `i` of `app`'s node trace.
fn ops_for(app: SplashApp, plan: StreamPlan, is_protocol: bool) -> Vec<PatternOp> {
    if is_protocol {
        return protocol::ops(plan);
    }
    match app {
        SplashApp::Barnes => barnes::ops(plan),
        SplashApp::Fft => fft::ops(plan),
        SplashApp::Lu => lu::ops(plan),
        SplashApp::Radix => radix::ops(plan),
        SplashApp::Raytrace => raytrace::ops(plan),
        SplashApp::Volrend => volrend::ops(plan),
        SplashApp::Water => water::ops(plan),
    }
}

/// Builds the lazy per-process record streams for `app` under `cfg`, in pid
/// order. Shared by [`stream`] and by callers that want to loop or re-merge
/// the processes themselves.
///
/// # Panics
///
/// Panics if `cfg.scale` is not positive or `cfg.app_processes` is zero.
pub fn process_streams(app: SplashApp, cfg: &GenConfig) -> Vec<ProcessStream> {
    assert!(cfg.scale > 0.0, "scale must be positive");
    assert!(
        cfg.app_processes > 0,
        "need at least one application process"
    );
    let spec = app.spec();
    let footprint =
        ((spec.footprint_pages as f64 * cfg.scale) as u64).max(cfg.total_processes() as u64);
    let lookups = ((spec.lookups as f64 * cfg.scale) as u64).max(footprint);

    let parts = partition(footprint, cfg.total_processes() as u64);
    let budgets = partition(lookups, cfg.total_processes() as u64);

    let mut streams = Vec::with_capacity(parts.len());
    for (i, ((_offset, span), (_, budget))) in parts.iter().zip(budgets.iter()).enumerate() {
        let pid = ProcessId::new(i as u32 + 1);
        let plan = StreamPlan {
            span: *span,
            budget: *budget,
            phase: i as u32,
            peers: cfg.total_processes(),
        };
        let is_protocol = i as u32 == cfg.app_processes;
        // Every process places its communication region at the same virtual
        // base: the processes are SPMD instances of one program, so their
        // heaps start at the same address in their separate address spaces.
        // This is exactly why §3.2's process-dependent index offsetting
        // matters — identical vpns from different processes would otherwise
        // collide in the shared cache (the "direct-nohash" rows of Table 8).
        streams.push(ProcessStream::new(
            pid,
            BASE_PAGE,
            cfg.seed,
            TS_STEP,
            plan.phase,
            plan.peers,
            ops_for(app, plan, is_protocol),
            app.name(),
        ));
    }
    streams
}

/// Generates the trace for `app` under `cfg` as a lazy stream: records are
/// synthesized one at a time as they are pulled, so replaying the stream
/// never holds more than O(one sweep) of trace state however large the
/// lookup budget is. Pulling the whole stream yields exactly
/// [`generate`]'s records.
///
/// # Panics
///
/// Panics as [`generate`] does on invalid `cfg`.
pub fn stream(app: SplashApp, cfg: &GenConfig) -> MergedStream<ProcessStream> {
    merge_trace_streams(process_streams(app, cfg), app.name(), cfg.seed)
}

/// Generates the trace for `app` under `cfg`.
///
/// This is a thin wrapper that collects [`stream`]; prefer the stream for
/// large workloads.
///
/// # Panics
///
/// Panics if `cfg.scale` is not positive or `cfg.app_processes` is zero.
pub fn generate(app: SplashApp, cfg: &GenConfig) -> Trace {
    stream(app, cfg).collect_trace()
}

/// Memo key: `scale` enters by bit pattern, which is exact for the config
/// values experiments use and merely conservative otherwise (distinct NaN
/// payloads would fail [`generate`]'s positivity assert anyway).
type MemoKey = (SplashApp, u64, u64, u32);

/// One memo slot: a lazily generated shared trace.
type MemoSlot = Arc<OnceLock<Arc<Trace>>>;

/// Materialized traces the memo keeps at once. The paper suite touches 7
/// apps × 1 config, so the cap is invisible to the experiments; it exists
/// so long-running callers that sweep *configs* (seeds, scales) cannot grow
/// the table without bound. Streaming callers bypass the memo entirely.
pub const MEMO_CAPACITY: usize = 8;

/// LRU state: per-key slot plus a monotonic last-use stamp.
struct Memo {
    slots: HashMap<MemoKey, (u64, MemoSlot)>,
    tick: u64,
}

fn memo_cell(key: MemoKey) -> MemoSlot {
    static MEMO: OnceLock<Mutex<Memo>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| {
        Mutex::new(Memo {
            slots: HashMap::new(),
            tick: 0,
        })
    });
    let mut guard = memo.lock().expect("trace memo poisoned");
    guard.tick += 1;
    let tick = guard.tick;
    if let Some((stamp, slot)) = guard.slots.get_mut(&key) {
        *stamp = tick;
        return Arc::clone(slot);
    }
    // Evict the least-recently-used entry once over capacity. Outstanding
    // Arcs keep evicted traces alive for their holders; the memo just stops
    // handing them out.
    if guard.slots.len() >= MEMO_CAPACITY {
        if let Some(oldest) = guard
            .slots
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(k, _)| *k)
        {
            guard.slots.remove(&oldest);
        }
    }
    let slot = MemoSlot::default();
    guard.slots.insert(key, (tick, Arc::clone(&slot)));
    slot
}

/// Like [`generate`], but memoized: the first caller per `(app, cfg)`
/// generates the trace, every later (or concurrent) caller gets the same
/// shared `Arc`.
///
/// Experiment sweeps simulate one app under dozens of cache geometries;
/// generation dominated their setup time and, worse, was repeated per cell.
/// The memo holds up to [`MEMO_CAPACITY`] traces with LRU eviction — enough
/// for the full paper suite to hit every time, bounded for callers that
/// sweep seeds or scales. Streaming replay ([`stream`]) never touches it.
///
/// # Panics
///
/// Panics as [`generate`] does on invalid `cfg`.
pub fn generate_shared(app: SplashApp, cfg: &GenConfig) -> Arc<Trace> {
    let key = (app, cfg.seed, cfg.scale.to_bits(), cfg.app_processes);
    let cell = memo_cell(key);
    // Generation happens outside the map lock, so slow apps don't serialize
    // unrelated keys; the per-key OnceLock still guarantees single
    // generation under concurrency.
    Arc::clone(cell.get_or_init(|| Arc::new(generate(app, cfg))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecord;

    fn small_cfg() -> GenConfig {
        GenConfig {
            seed: 11,
            scale: 0.05,
            app_processes: 4,
        }
    }

    /// FNV-1a-style mix over every field of every record, plus the count.
    fn fingerprint(records: &[TraceRecord]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in records {
            for v in [r.ts_ns, u64::from(r.pid.raw()), r.va.raw(), r.nbytes] {
                h ^= v;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        }
        h ^ records.len() as u64
    }

    /// Golden fingerprints captured from the eager pre-streaming generators
    /// (materialize-then-merge over `PatternBuilder`). The streaming path
    /// must reproduce those traces byte-for-byte: any drift in RNG draw
    /// order, rotation arithmetic, timestamps, or merge tie-breaking shows
    /// up here.
    #[test]
    #[allow(clippy::type_complexity)]
    fn streamed_generation_matches_pre_streaming_golden_fingerprints() {
        let golden: &[(u64, f64, &[(SplashApp, u64)])] = &[
            (
                11,
                0.05,
                &[
                    (SplashApp::Fft, 0xa32d55508689b1ad),
                    (SplashApp::Lu, 0xec2a5b857bfbcfbb),
                    (SplashApp::Barnes, 0x4822dc1f96d475ad),
                    (SplashApp::Radix, 0x52630d77941621ac),
                    (SplashApp::Raytrace, 0x04c8a0f5f204ec67),
                    (SplashApp::Volrend, 0x01f414cc161018ec),
                    (SplashApp::Water, 0x0055813b4c7b7fbf),
                ],
            ),
            (
                7,
                0.04,
                &[
                    (SplashApp::Fft, 0xbf9c2cbaf42a2809),
                    (SplashApp::Lu, 0xa1d22dad952edad4),
                    (SplashApp::Barnes, 0x6515e5831f87ad60),
                    (SplashApp::Radix, 0xe2bf4848ddd992be),
                    (SplashApp::Raytrace, 0x102b24aa719bc1d6),
                    (SplashApp::Volrend, 0x8f13697e0932664c),
                    (SplashApp::Water, 0x1e8a3089b1822ada),
                ],
            ),
            (
                3,
                1.0,
                &[
                    (SplashApp::Fft, 0x7bd7f69fedf1413e),
                    (SplashApp::Lu, 0xdb336d31c4e1b700),
                    (SplashApp::Barnes, 0x746808847137f6c0),
                    (SplashApp::Radix, 0x178dac252bba5467),
                    (SplashApp::Raytrace, 0x71a73fa5931cddba),
                    (SplashApp::Volrend, 0xb8cb460719b0de1a),
                    (SplashApp::Water, 0x7a299b7c5791dadf),
                ],
            ),
        ];
        for &(seed, scale, apps) in golden {
            let cfg = GenConfig {
                seed,
                scale,
                app_processes: 4,
            };
            for &(app, want) in apps {
                let t = generate(app, &cfg);
                assert_eq!(
                    fingerprint(&t.records),
                    want,
                    "{app} (seed {seed}, scale {scale}) drifted from the \
                     pre-streaming eager generator"
                );
            }
        }
    }

    #[test]
    fn stream_has_exact_metadata_and_collects_to_generate() {
        for app in SplashApp::ALL {
            let cfg = small_cfg();
            let eager = generate(app, &cfg);
            let s = stream(app, &cfg);
            assert_eq!(s.remaining(), eager.records.len() as u64, "{app}");
            assert_eq!(s.workload(), eager.workload, "{app}");
            assert_eq!(s.seed(), eager.seed, "{app}");
            assert_eq!(s.process_ids(), eager.process_ids(), "{app}");
            assert_eq!(s.collect_trace(), eager, "{app}: stream != generate");
        }
    }

    #[test]
    fn per_app_streaming_matches_the_eager_op_executor() {
        // The cfg(test) `fill` wrappers run `execute_ops` — the executable
        // spec each streaming interpreter is pinned against, exercised here
        // through every app's real op program.
        use crate::synth::PatternBuilder;
        let cfg = GenConfig {
            seed: 23,
            scale: 0.07,
            app_processes: 3,
        };
        for app in SplashApp::ALL {
            let spec = app.spec();
            let footprint = ((spec.footprint_pages as f64 * cfg.scale) as u64)
                .max(cfg.total_processes() as u64);
            let lookups = ((spec.lookups as f64 * cfg.scale) as u64).max(footprint);
            let parts = partition(footprint, cfg.total_processes() as u64);
            let budgets = partition(lookups, cfg.total_processes() as u64);
            for (i, ((_, span), (_, budget))) in parts.iter().zip(budgets.iter()).enumerate() {
                let pid = ProcessId::new(i as u32 + 1);
                let plan = StreamPlan {
                    span: *span,
                    budget: *budget,
                    phase: i as u32,
                    peers: cfg.total_processes(),
                };
                let is_protocol = i as u32 == cfg.app_processes;
                let mut b = PatternBuilder::new(pid, BASE_PAGE, cfg.seed, TS_STEP);
                if is_protocol {
                    protocol::fill(&mut b, plan);
                } else {
                    match app {
                        SplashApp::Barnes => barnes::fill(&mut b, plan),
                        SplashApp::Fft => fft::fill(&mut b, plan),
                        SplashApp::Lu => lu::fill(&mut b, plan),
                        SplashApp::Radix => radix::fill(&mut b, plan),
                        SplashApp::Raytrace => raytrace::fill(&mut b, plan),
                        SplashApp::Volrend => volrend::fill(&mut b, plan),
                        SplashApp::Water => water::fill(&mut b, plan),
                    }
                }
                let eager = b.finish();
                let mut s = ProcessStream::new(
                    pid,
                    BASE_PAGE,
                    cfg.seed,
                    TS_STEP,
                    plan.phase,
                    plan.peers,
                    ops_for(app, plan, is_protocol),
                    app.name(),
                );
                let mut got = Vec::new();
                while let Some(r) = s.next_record() {
                    got.push(r);
                }
                assert_eq!(got, eager, "{app} pid {i}: stream != eager spec");
            }
        }
    }

    #[test]
    fn every_app_generates_a_nonempty_ordered_trace() {
        for app in SplashApp::ALL {
            let t = generate(app, &small_cfg());
            assert!(!t.records.is_empty(), "{app}");
            assert!(
                t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
                "{app} out of order"
            );
            assert_eq!(t.process_ids().len(), 5, "{app}: 4 app + 1 protocol");
        }
    }

    #[test]
    fn footprint_and_lookups_track_table3_targets() {
        let cfg = GenConfig {
            seed: 3,
            scale: 1.0,
            app_processes: 4,
        };
        for app in [SplashApp::Fft, SplashApp::Lu, SplashApp::Water] {
            let spec = app.spec();
            let t = generate(app, &cfg);
            let fp = t.footprint_pages() as f64;
            let lk = t.total_lookups() as f64;
            let fp_target = spec.footprint_pages as f64;
            let lk_target = spec.lookups as f64;
            assert!(
                (fp - fp_target).abs() / fp_target < 0.15,
                "{app}: footprint {fp} vs target {fp_target}"
            );
            assert!(
                (lk - lk_target).abs() / lk_target < 0.15,
                "{app}: lookups {lk} vs target {lk_target}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SplashApp::Radix, &small_cfg());
        let b = generate(SplashApp::Radix, &small_cfg());
        assert_eq!(a, b);
        let c = generate(
            SplashApp::Radix,
            &GenConfig {
                seed: 12,
                ..small_cfg()
            },
        );
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn regular_apps_have_low_reuse_irregular_high() {
        let cfg = GenConfig {
            seed: 5,
            scale: 0.2,
            app_processes: 4,
        };
        let lu = generate(SplashApp::Lu, &cfg);
        let barnes = generate(SplashApp::Barnes, &cfg);
        let reuse = |t: &Trace| t.total_lookups() as f64 / t.footprint_pages() as f64;
        assert!(
            reuse(&barnes) > 2.0 * reuse(&lu),
            "barnes reuse {} vs lu {}",
            reuse(&barnes),
            reuse(&lu)
        );
    }

    #[test]
    fn memo_caps_at_capacity_and_evicts_lru() {
        // Distinct seeds far from other tests' values, so this test owns
        // its keys even though the memo is process-global.
        let cfg = |seed: u64| GenConfig {
            seed,
            scale: 0.02,
            app_processes: 4,
        };
        let first = generate_shared(SplashApp::Lu, &cfg(9_000));
        // Flood the memo well past capacity.
        for s in 9_001..9_001 + 2 * MEMO_CAPACITY as u64 {
            let _ = generate_shared(SplashApp::Lu, &cfg(s));
        }
        // The first entry was evicted: a fresh call regenerates rather than
        // returning the same allocation...
        let again = generate_shared(SplashApp::Lu, &cfg(9_000));
        assert!(
            !Arc::ptr_eq(&first, &again),
            "evicted entry should be regenerated"
        );
        // ...but the trace is still byte-identical (determinism), and the
        // evicted Arc remained valid for its holder.
        assert_eq!(*first, *again);
        // The most recent key is still cached.
        let last_seed = 9_000 + 2 * MEMO_CAPACITY as u64;
        let a = generate_shared(SplashApp::Lu, &cfg(last_seed));
        let b = generate_shared(SplashApp::Lu, &cfg(last_seed));
        assert!(Arc::ptr_eq(&a, &b), "recent entry stays shared");
    }
}
