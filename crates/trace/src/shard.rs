//! Per-process sharding of a multiprogrammed trace across NIC boards.
//!
//! The paper's evaluation stops at one NIC shared by a handful of
//! processes (§6); the cluster extension (`utlb-sim::cluster`) spreads a
//! merged multiprogrammed stream over many simulated boards. A [`ShardMap`]
//! is the placement function for that topology: every process id is homed
//! on exactly one board, and a board serves exactly the lookups of its
//! resident processes. The map is a plain table (not a hash of the pid) so
//! that mid-trace migration can rehome a process without touching the
//! others.

use crate::{Trace, TraceRecord};
use std::collections::BTreeMap;
use utlb_mem::ProcessId;

/// A placement of process ids onto `nodes` boards (0-based board indices).
///
/// Deterministic by construction: the table iterates in pid order, so two
/// maps built from the same assignments compare and enumerate identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    nodes: usize,
    home: BTreeMap<u32, usize>,
}

impl ShardMap {
    /// An empty map over `nodes` boards.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one board");
        ShardMap {
            nodes,
            home: BTreeMap::new(),
        }
    }

    /// The canonical placement: pids in ascending order dealt round-robin
    /// across boards (pid rank `i` lands on board `i % nodes`), so load
    /// spreads evenly regardless of how dense or sparse the pid space is.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn round_robin(pids: &[ProcessId], nodes: usize) -> Self {
        let mut sorted: Vec<ProcessId> = pids.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut map = ShardMap::new(nodes);
        for (rank, pid) in sorted.iter().enumerate() {
            map.assign(*pid, rank % nodes);
        }
        map
    }

    /// Homes `pid` on `board`, replacing any previous assignment.
    ///
    /// # Panics
    ///
    /// Panics if `board` is out of range.
    pub fn assign(&mut self, pid: ProcessId, board: usize) {
        assert!(
            board < self.nodes,
            "board {board} out of range for {} nodes",
            self.nodes
        );
        self.home.insert(pid.raw(), board);
    }

    /// The board `pid` is homed on, if assigned.
    pub fn board_of(&self, pid: ProcessId) -> Option<usize> {
        self.home.get(&pid.raw()).copied()
    }

    /// Number of boards in the topology.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of assigned processes.
    pub fn len(&self) -> usize {
        self.home.len()
    }

    /// Whether no process has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.home.is_empty()
    }

    /// The processes homed on `board`, in ascending pid order.
    pub fn pids_on(&self, board: usize) -> Vec<ProcessId> {
        self.home
            .iter()
            .filter(|(_, b)| **b == board)
            .map(|(pid, _)| ProcessId::new(*pid))
            .collect()
    }

    /// All assigned processes in ascending pid order.
    pub fn pids(&self) -> Vec<ProcessId> {
        self.home.keys().map(|p| ProcessId::new(*p)).collect()
    }
}

/// Splits a merged trace into one sub-trace per board, preserving record
/// order within each shard. Records of unassigned pids are dropped; the
/// shard of board `b` is named `"<workload>@board<b>"`.
///
/// The cluster runner itself replays the *merged* stream in global order
/// (shared stations need one admission order); this per-board split is the
/// reference decomposition tests check board-local behavior against.
pub fn shard_trace(trace: &Trace, map: &ShardMap) -> Vec<Trace> {
    let mut shards: Vec<Vec<TraceRecord>> = vec![Vec::new(); map.nodes()];
    for r in &trace.records {
        if let Some(board) = map.board_of(r.pid) {
            shards[board].push(*r);
        }
    }
    shards
        .into_iter()
        .enumerate()
        .map(|(b, records)| Trace::new(format!("{}@board{b}", trace.workload), trace.seed, records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::send_page;

    fn pid(n: u32) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn round_robin_deals_pids_in_order() {
        let pids: Vec<ProcessId> = [3, 1, 2, 5, 1].iter().map(|n| pid(*n)).collect();
        let map = ShardMap::round_robin(&pids, 2);
        // Sorted + deduped: 1, 2, 3, 5 → boards 0, 1, 0, 1.
        assert_eq!(map.nodes(), 2);
        assert_eq!(map.len(), 4);
        assert_eq!(map.board_of(pid(1)), Some(0));
        assert_eq!(map.board_of(pid(2)), Some(1));
        assert_eq!(map.board_of(pid(3)), Some(0));
        assert_eq!(map.board_of(pid(5)), Some(1));
        assert_eq!(map.board_of(pid(4)), None);
        assert_eq!(map.pids_on(0), vec![pid(1), pid(3)]);
        assert_eq!(map.pids_on(1), vec![pid(2), pid(5)]);
    }

    #[test]
    fn more_boards_than_pids_leaves_empty_boards() {
        let map = ShardMap::round_robin(&[pid(1), pid(2)], 4);
        assert_eq!(map.pids_on(0), vec![pid(1)]);
        assert_eq!(map.pids_on(1), vec![pid(2)]);
        assert!(map.pids_on(2).is_empty());
        assert!(map.pids_on(3).is_empty());
    }

    #[test]
    fn assign_rehomes_a_pid() {
        let mut map = ShardMap::round_robin(&[pid(1), pid(2)], 2);
        map.assign(pid(1), 1);
        assert_eq!(map.board_of(pid(1)), Some(1));
        assert_eq!(map.pids_on(0), Vec::<ProcessId>::new());
        assert_eq!(map.pids_on(1), vec![pid(1), pid(2)]);
        assert_eq!(map.len(), 2, "rehoming is not a second assignment");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_board_panics() {
        ShardMap::new(2).assign(pid(1), 2);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_node_map_panics() {
        ShardMap::new(0);
    }

    #[test]
    fn shard_trace_partitions_and_preserves_order() {
        let t = Trace::new(
            "mp",
            7,
            vec![
                send_page(0, pid(1), 10),
                send_page(5, pid(2), 20),
                send_page(9, pid(1), 11),
                send_page(12, pid(3), 30),
            ],
        );
        let map = ShardMap::round_robin(&t.process_ids(), 2);
        let shards = shard_trace(&t, &map);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].workload, "mp@board0");
        // Board 0 homes pids 1 and 3; board 1 homes pid 2.
        assert_eq!(
            shards[0].records,
            vec![
                send_page(0, pid(1), 10),
                send_page(9, pid(1), 11),
                send_page(12, pid(3), 30),
            ]
        );
        assert_eq!(shards[1].records, vec![send_page(5, pid(2), 20)]);
        let total: usize = shards.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, t.records.len(), "partition loses nothing");
    }
}
