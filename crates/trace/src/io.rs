//! JSONL trace serialization.
//!
//! Traces are stored one JSON record per line with a one-line JSON header,
//! so multi-megabyte traces stream without loading intermediate DOMs, stay
//! diffable, and can be inspected with standard text tools.

use crate::{Trace, TraceRecord};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    workload: String,
    seed: u64,
    records: u64,
}

/// Writes `trace` to `w` as a header line followed by one record per line.
///
/// # Errors
///
/// Propagates I/O and serialization errors as `io::Error`.
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let header = Header {
        workload: trace.workload.clone(),
        seed: trace.seed,
        records: trace.records.len() as u64,
    };
    serde_json::to_writer(&mut w, &header)?;
    w.write_all(b"\n")?;
    for r in &trace.records {
        serde_json::to_writer(&mut w, r)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_jsonl`].
///
/// # Errors
///
/// Returns `io::Error` on malformed input, a missing header, or a record
/// count that does not match the header.
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
    let mut lines = r.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty trace file"))??;
    let header: Header = serde_json::from_str(&header_line)?;
    let mut records = Vec::with_capacity(header.records as usize);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(&line)?;
        records.push(rec);
    }
    if records.len() as u64 != header.records {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "header declares {} records, found {}",
                header.records,
                records.len()
            ),
        ));
    }
    Ok(Trace::new(header.workload, header.seed, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;
    use utlb_mem::{ProcessId, VirtAddr};

    fn sample() -> Trace {
        let recs = (0..10u64)
            .map(|i| TraceRecord {
                ts_ns: i * 100,
                pid: ProcessId::new((i % 3) as u32),
                op: if i % 2 == 0 { Op::Send } else { Op::Fetch },
                va: VirtAddr::new(i * 4096),
                nbytes: 4096,
            })
            .collect();
        Trace::new("roundtrip", 99, recs)
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn record_count_mismatch_is_an_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        // Drop the last line.
        let s = String::from_utf8(buf).unwrap();
        let truncated: Vec<&str> = s.lines().collect();
        let shorter = truncated[..truncated.len() - 1].join("\n");
        assert!(read_jsonl(shorter.as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let mut s = String::from_utf8(buf).unwrap();
        s.push('\n');
        let back = read_jsonl(s.as_bytes()).unwrap();
        assert_eq!(back.records.len(), 10);
    }
}
