//! Pull-based trace streaming.
//!
//! A [`TraceStream`] yields [`TraceRecord`]s one at a time in timestamp
//! order, together with the exact metadata a replay loop needs up front
//! (workload name, seed, process set, exact remaining record count). This is
//! the out-of-core face of the trace crate: generators synthesize records on
//! demand ([`crate::gen::stream`]), the k-way merge re-interleaves streams
//! lazily ([`crate::merge_trace_streams`]), and the simulation runners
//! consume the result in fixed-size chunks — so a billion-lookup workload
//! costs O(chunk) resident trace memory instead of O(lookups).
//!
//! A materialized [`Trace`] adapts to the same interface via [`TraceView`],
//! which is how the eager `generate`-then-replay path and the fused
//! generate+replay path share one replay implementation (and why their
//! results are identical by construction).

use crate::{Trace, TraceRecord};
use utlb_mem::ProcessId;

/// A deterministic, timestamp-ordered record stream with exact-size and
/// provenance metadata.
///
/// Implementations must yield records in non-decreasing `ts_ns` order and
/// must report `remaining` exactly: after `remaining()` more calls,
/// `next_record` returns `None`.
pub trait TraceStream {
    /// Yields the next record, or `None` when the stream is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Exact number of records not yet yielded.
    fn remaining(&self) -> u64;

    /// Human-readable workload name (e.g. `"radix"`).
    fn workload(&self) -> &str;

    /// Seed the generator used, for reproducibility.
    fn seed(&self) -> u64;

    /// Distinct processes the full stream touches, sorted ascending.
    ///
    /// Known up front — a replay loop must spawn and register every process
    /// before the first record, without consuming the stream to find out.
    fn process_ids(&self) -> Vec<ProcessId>;

    /// Drains the stream into a materialized [`Trace`].
    ///
    /// This is what makes `generate` a thin wrapper over the streaming
    /// generators: collect-the-stream, nothing more.
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let mut records = Vec::with_capacity(self.remaining() as usize);
        while let Some(r) = self.next_record() {
            records.push(r);
        }
        Trace::new(self.workload().to_string(), self.seed(), records)
    }
}

/// Refills `buf` with up to `chunk` records pulled from `stream`.
///
/// `buf` is cleared first and reused across calls, so a replay loop that
/// owns one chunk buffer allocates nothing in steady state. Returns the
/// number of records now in `buf` (0 exactly when the stream is done).
pub fn fill_chunk<S: TraceStream + ?Sized>(
    stream: &mut S,
    buf: &mut Vec<TraceRecord>,
    chunk: usize,
) -> usize {
    buf.clear();
    while buf.len() < chunk {
        match stream.next_record() {
            Some(r) => buf.push(r),
            None => break,
        }
    }
    buf.len()
}

/// A borrowed view of a materialized [`Trace`] as a [`TraceStream`].
///
/// Adapts the eager world to the streaming replay loop: replaying a
/// `TraceView` is byte-identical to iterating `trace.records` directly.
#[derive(Debug)]
pub struct TraceView<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceView<'a> {
    /// Creates a stream over `trace`'s records.
    pub fn new(trace: &'a Trace) -> Self {
        TraceView { trace, pos: 0 }
    }
}

impl TraceStream for TraceView<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.trace.records.get(self.pos).copied();
        self.pos += r.is_some() as usize;
        r
    }

    fn remaining(&self) -> u64 {
        (self.trace.records.len() - self.pos) as u64
    }

    fn workload(&self) -> &str {
        &self.trace.workload
    }

    fn seed(&self) -> u64 {
        self.trace.seed
    }

    fn process_ids(&self) -> Vec<ProcessId> {
        self.trace.process_ids()
    }
}

/// Repeats a generated stream for `epochs` epochs, shifting each epoch's
/// timestamps past the previous epoch's end.
///
/// This is the scale lever of the fused generate+replay mode: one epoch has
/// a bounded footprint (so engine state stays bounded), while total lookups
/// grow linearly with `epochs` — a 100M-lookup workload is one app trace
/// looped, never materialized. The factory is called once per epoch with
/// the epoch index and must return the *same* stream each time (same
/// record count, same process set); epoch 0's stream is passed in directly.
pub struct Looped<S, F> {
    inner: S,
    factory: F,
    epochs: u64,
    epoch: u64,
    /// Timestamp shift applied to the current epoch.
    offset: u64,
    /// Largest shifted timestamp yielded so far.
    max_ts: u64,
    /// Gap inserted between the last record of one epoch and the first of
    /// the next.
    gap: u64,
    /// Records per epoch, captured from the fresh epoch-0 stream.
    per_epoch: u64,
    workload: String,
}

impl<S: TraceStream, F: FnMut(u64) -> S> Looped<S, F> {
    /// Loops `first` (epoch 0) for `epochs` total epochs, using `factory`
    /// to regenerate the stream for epochs 1.., separated by `gap_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn new(first: S, epochs: u64, gap_ns: u64, factory: F) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        let per_epoch = first.remaining();
        let workload = format!("{}x{epochs}", first.workload());
        Looped {
            inner: first,
            factory,
            epochs,
            epoch: 0,
            offset: 0,
            max_ts: 0,
            gap: gap_ns,
            per_epoch,
            workload,
        }
    }
}

impl<S: TraceStream, F: FnMut(u64) -> S> TraceStream for Looped<S, F> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            if let Some(mut r) = self.inner.next_record() {
                r.ts_ns += self.offset;
                self.max_ts = self.max_ts.max(r.ts_ns);
                return Some(r);
            }
            if self.epoch + 1 >= self.epochs {
                return None;
            }
            self.epoch += 1;
            self.inner = (self.factory)(self.epoch);
            self.offset = self.max_ts + self.gap;
        }
    }

    fn remaining(&self) -> u64 {
        self.inner.remaining() + (self.epochs - self.epoch - 1) * self.per_epoch
    }

    fn workload(&self) -> &str {
        &self.workload
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn process_ids(&self) -> Vec<ProcessId> {
        self.inner.process_ids()
    }
}

impl<S, F> std::fmt::Debug for Looped<S, F>
where
    S: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Looped")
            .field("inner", &self.inner)
            .field("epochs", &self.epochs)
            .field("epoch", &self.epoch)
            .field("offset", &self.offset)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::send_page;

    fn toy_trace() -> Trace {
        let recs = (0..7u64)
            .map(|i| send_page(i * 10, ProcessId::new(1 + (i % 2) as u32), i))
            .collect();
        Trace::new("toy", 3, recs)
    }

    #[test]
    fn trace_view_replays_the_records_exactly() {
        let t = toy_trace();
        let mut v = TraceView::new(&t);
        assert_eq!(v.remaining(), 7);
        assert_eq!(v.workload(), "toy");
        assert_eq!(v.seed(), 3);
        assert_eq!(v.process_ids(), t.process_ids());
        let mut got = Vec::new();
        while let Some(r) = v.next_record() {
            got.push(r);
            assert_eq!(v.remaining(), 7 - got.len() as u64);
        }
        assert_eq!(got, t.records);
        assert!(v.next_record().is_none(), "stays exhausted");
    }

    #[test]
    fn collect_trace_roundtrips() {
        let t = toy_trace();
        let back = TraceView::new(&t).collect_trace();
        assert_eq!(back, t);
    }

    #[test]
    fn fill_chunk_partitions_without_losing_records() {
        let t = toy_trace();
        let mut v = TraceView::new(&t);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = fill_chunk(&mut v, &mut buf, 3);
            if n == 0 {
                break;
            }
            assert!(n <= 3);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, t.records);
    }

    #[test]
    fn looped_stream_repeats_with_monotone_timestamps() {
        let t = toy_trace();
        let looped = Looped::new(TraceView::new(&t), 3, 5, |_| TraceView::new(&t));
        assert_eq!(looped.remaining(), 21);
        assert_eq!(looped.workload(), "toyx3");
        let collected = looped.collect_trace();
        assert_eq!(collected.records.len(), 21);
        assert!(collected
            .records
            .windows(2)
            .all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Each epoch is the same page sequence, shifted in time.
        let pages: Vec<u64> = collected
            .records
            .iter()
            .map(|r| r.va.page().number())
            .collect();
        assert_eq!(&pages[0..7], &pages[7..14]);
        assert_eq!(&pages[0..7], &pages[14..21]);
        // Epoch 1 starts strictly after epoch 0 ends.
        assert_eq!(collected.records[7].ts_ns, 60 + 5);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn looped_rejects_zero_epochs() {
        let t = toy_trace();
        let _ = Looped::new(TraceView::new(&t), 0, 5, |_| TraceView::new(&t));
    }
}
