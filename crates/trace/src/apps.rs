//! The seven SPLASH-2 applications and their Table 3 calibration data.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One application from the paper's study (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplashApp {
    /// Barnes-Hut N-body; moderate communication with spatial locality.
    Barnes,
    /// 2D FFT; regular, strided, high communication volume.
    Fft,
    /// LU decomposition; regular blocked access.
    Lu,
    /// Radix sort; phase-structured with all-to-all permutation.
    Radix,
    /// Raytracer; irregular task-farm access around task queues.
    Raytrace,
    /// Volume renderer; irregular task-farm access.
    Volrend,
    /// Water-spatial; iterative molecular dynamics, strong locality.
    Water,
}

impl SplashApp {
    /// All applications in the paper's order.
    pub const ALL: [SplashApp; 7] = [
        SplashApp::Fft,
        SplashApp::Lu,
        SplashApp::Barnes,
        SplashApp::Radix,
        SplashApp::Raytrace,
        SplashApp::Volrend,
        SplashApp::Water,
    ];

    /// The calibration data from the paper's Table 3.
    pub fn spec(self) -> AppSpec {
        match self {
            SplashApp::Fft => AppSpec {
                app: self,
                problem_size: "4M elements",
                footprint_pages: 10_803,
                lookups: 43_132,
                regular: true,
            },
            SplashApp::Lu => AppSpec {
                app: self,
                problem_size: "4K x 4K matrix",
                footprint_pages: 12_507,
                lookups: 25_198,
                regular: true,
            },
            SplashApp::Barnes => AppSpec {
                app: self,
                problem_size: "32K particles",
                footprint_pages: 2_235,
                lookups: 35_904,
                regular: false,
            },
            SplashApp::Radix => AppSpec {
                app: self,
                problem_size: "4M keys",
                footprint_pages: 6_393,
                lookups: 11_775,
                regular: false,
            },
            SplashApp::Raytrace => AppSpec {
                app: self,
                problem_size: "256 x 256 car",
                footprint_pages: 6_319,
                lookups: 14_594,
                regular: false,
            },
            SplashApp::Volrend => AppSpec {
                app: self,
                problem_size: "256^3 CST head",
                footprint_pages: 2_371,
                lookups: 9_438,
                regular: false,
            },
            SplashApp::Water => AppSpec {
                app: self,
                problem_size: "15,625 molecules",
                footprint_pages: 1_890,
                lookups: 8_488,
                regular: false,
            },
        }
    }

    /// Canonical lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SplashApp::Barnes => "barnes",
            SplashApp::Fft => "fft",
            SplashApp::Lu => "lu",
            SplashApp::Radix => "radix",
            SplashApp::Raytrace => "raytrace",
            SplashApp::Volrend => "volrend",
            SplashApp::Water => "water-spatial",
        }
    }
}

impl fmt::Display for SplashApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-application calibration targets (paper Table 3, per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSpec {
    /// The application.
    pub app: SplashApp,
    /// Problem size as quoted by the paper.
    pub problem_size: &'static str,
    /// Average distinct communication pages per node.
    pub footprint_pages: u64,
    /// Average translation lookups per node.
    pub lookups: u64,
    /// Whether §6.5 classifies the communication pattern as regular.
    pub regular: bool,
}

impl AppSpec {
    /// The compulsory floor: distinct pages over lookups — the check-miss
    /// rate a UTLB with infinite memory converges to.
    pub fn compulsory_rate(&self) -> f64 {
        self.footprint_pages as f64 / self.lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_present_for_all_apps() {
        assert_eq!(SplashApp::ALL.len(), 7);
        for app in SplashApp::ALL {
            let s = app.spec();
            assert!(s.footprint_pages > 1000);
            assert!(s.lookups > 8000);
            assert!(!app.name().is_empty());
        }
    }

    #[test]
    fn compulsory_rates_match_paper_check_miss_rates() {
        // Table 4 check-miss column is footprint/lookups to within noise.
        let close = |app: SplashApp, expect: f64, tol: f64| {
            let got = app.spec().compulsory_rate();
            assert!(
                (got - expect).abs() < tol,
                "{app}: got {got:.3}, paper {expect}"
            );
        };
        close(SplashApp::Fft, 0.25, 0.01);
        close(SplashApp::Lu, 0.49, 0.01);
        close(SplashApp::Radix, 0.54, 0.01);
        close(SplashApp::Raytrace, 0.43, 0.01);
        close(SplashApp::Volrend, 0.25, 0.01);
    }

    #[test]
    fn regular_flags_match_section_65() {
        assert!(SplashApp::Fft.spec().regular);
        assert!(SplashApp::Lu.spec().regular);
        for app in [
            SplashApp::Barnes,
            SplashApp::Radix,
            SplashApp::Raytrace,
            SplashApp::Volrend,
            SplashApp::Water,
        ] {
            assert!(!app.spec().regular, "{app}");
        }
    }
}
