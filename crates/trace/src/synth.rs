//! Pattern primitives shared by the workload generators.
//!
//! Generators compose a handful of access shapes — sequential passes,
//! strided passes, sliding-window walks, task tiles, random scatters — into
//! per-process record streams. The primitives guarantee two calibration
//! properties the study depends on:
//!
//! * the *footprint* of a process equals exactly the page partition it was
//!   given (generators cover their partition), and
//! * the *lookup count* tracks the per-process budget.

use crate::record::send_page;
use crate::stream::TraceStream;
use crate::TraceRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use utlb_mem::{ProcessId, VirtAddr};

/// Generation parameters shared by all workloads.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce byte-identical traces.
    pub seed: u64,
    /// Scales footprint and lookup targets (1.0 = the paper's Table 3).
    pub scale: f64,
    /// Application processes per node (the paper ran 4 plus a protocol
    /// process; the protocol process is always added on top of these).
    pub app_processes: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5EED,
            scale: 1.0,
            app_processes: 4,
        }
    }
}

impl GenConfig {
    /// Total process streams generated (apps + 1 protocol process).
    pub fn total_processes(&self) -> u32 {
        self.app_processes + 1
    }
}

/// Builds one process' record stream.
#[derive(Debug)]
pub struct PatternBuilder {
    pid: ProcessId,
    base_page: u64,
    rng: StdRng,
    records: Vec<TraceRecord>,
    next_ts: u64,
    ts_step: u64,
}

impl PatternBuilder {
    /// Creates a builder for `pid` whose partition starts at absolute
    /// virtual page `base_page`. `ts_step` is the mean inter-request gap in
    /// nanoseconds; a ±25% jitter decorrelates the process streams.
    pub fn new(pid: ProcessId, base_page: u64, seed: u64, ts_step: u64) -> Self {
        PatternBuilder {
            pid,
            base_page,
            rng: StdRng::seed_from_u64(seed ^ (pid.raw() as u64) << 32),
            records: Vec::new(),
            next_ts: 0,
            ts_step: ts_step.max(1),
        }
    }

    fn advance_ts(&mut self) -> u64 {
        let jitter = self.ts_step / 4;
        let dt = if jitter > 0 {
            self.ts_step - jitter + self.rng.gen_range(0..=2 * jitter)
        } else {
            self.ts_step
        };
        let ts = self.next_ts;
        self.next_ts += dt;
        ts
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Emits a one-page send of partition-relative page `rel`.
    pub fn page(&mut self, rel: u64) {
        let ts = self.advance_ts();
        self.records
            .push(send_page(ts, self.pid, self.base_page + rel));
    }

    /// Emits a small (sub-page) control message on partition-relative page
    /// `rel` — lock/barrier traffic in the SVM protocol.
    pub fn small(&mut self, rel: u64, nbytes: u64) {
        debug_assert!(nbytes < utlb_mem::PAGE_SIZE);
        let ts = self.advance_ts();
        self.records.push(TraceRecord {
            ts_ns: ts,
            pid: self.pid,
            op: crate::Op::Send,
            va: VirtAddr::new((self.base_page + rel) * utlb_mem::PAGE_SIZE),
            nbytes,
        });
    }

    /// One sequential pass over `[start, start + count)`.
    pub fn sequential(&mut self, start: u64, count: u64) {
        for i in 0..count {
            self.page(start + i);
        }
    }

    /// One strided pass over `[start, start + count)`: visits residue class
    /// 0 first (0, s, 2s, …), then class 1, and so on — every page exactly
    /// once, in FFT-transpose order.
    pub fn strided(&mut self, start: u64, count: u64, stride: u64) {
        let stride = stride.max(1);
        for phase in 0..stride {
            let mut i = phase;
            while i < count {
                self.page(start + i);
                i += stride;
            }
        }
    }

    /// `count` accesses by a slow random walk over `[0, span)`: with
    /// probability `locality` the position drifts by at most ±`step` pages,
    /// otherwise it jumps uniformly. A *small* step keeps the instantaneous
    /// working set tight (reuse distances short) while the walk still
    /// wanders the whole partition over time — the access shape of a
    /// Barnes-Hut particle partition with spatial locality.
    pub fn local_walk(&mut self, span: u64, count: u64, step: u64, locality: f64) {
        let step = step.max(1) as i64;
        let mut pos = 0i64;
        let max = span.saturating_sub(1) as i64;
        for _ in 0..count {
            if self.rng.gen_bool(locality.clamp(0.0, 1.0)) {
                pos = (pos + self.rng.gen_range(-step..=step)).clamp(0, max);
            } else {
                pos = self.rng.gen_range(0..span) as i64;
            }
            self.page(pos as u64);
        }
    }

    /// `count` uniformly random single-page accesses over `[0, span)` — the
    /// all-to-all permutation phase of Radix.
    pub fn scatter(&mut self, span: u64, count: u64) {
        for _ in 0..count {
            let p = self.rng.gen_range(0..span);
            self.page(p);
        }
    }

    /// Task-farm access: repeatedly grab a random tile of `tile` contiguous
    /// pages inside `[0, span)` and walk it, until ~`count` accesses were
    /// made. Models Raytrace/Volrend task queues.
    pub fn task_tiles(&mut self, span: u64, count: u64, tile: u64) {
        let tile = tile.max(1).min(span);
        let mut done = 0u64;
        while done < count {
            let start = self.rng.gen_range(0..=span - tile);
            let n = tile.min(count - done);
            for i in 0..n {
                self.page(start + i);
            }
            done += n;
        }
    }

    /// Finishes the stream (records are in timestamp order by construction).
    pub fn finish(self) -> Vec<TraceRecord> {
        self.records
    }
}

/// One lazily executed access-pattern step of a process stream.
///
/// A workload generator is a short *program* of these ops; [`ProcessStream`]
/// interprets the program pull-style, one record per `next_record`, drawing
/// from the RNG in exactly the order the eager [`PatternBuilder`] primitives
/// would — so streaming and materialized generation are byte-identical.
/// Every op's record count is known up front ([`PatternOp::count`]), which
/// is what makes the streams exact-size.
#[derive(Debug, Clone)]
pub(crate) enum PatternOp {
    /// `emit_rotated` over `seq` cyclically extended to `total` records:
    /// emission `k` is `seq[((rot + k) % total) % seq.len()]` with
    /// `rot = phase * total / peers`. Holds O(one pass) memory — the page
    /// sequence of a single sweep — regardless of `total`.
    Rotated {
        /// One pass of the access pattern (partition-relative pages).
        seq: Vec<u64>,
        /// Total records to emit (the lookup budget of the op).
        total: u64,
    },
    /// One sequential pass over `[start, start + count)`.
    Sequential {
        /// First partition-relative page.
        start: u64,
        /// Pages visited.
        count: u64,
    },
    /// `count` uniformly random single-page accesses over `[0, span)`.
    Scatter {
        /// Partition span in pages.
        span: u64,
        /// Accesses to emit.
        count: u64,
    },
    /// `count` accesses by the slow random walk of
    /// [`PatternBuilder::local_walk`].
    LocalWalk {
        /// Partition span in pages.
        span: u64,
        /// Accesses to emit.
        count: u64,
        /// Drift radius in pages.
        step: u64,
        /// Probability of drifting instead of jumping.
        locality: f64,
    },
    /// Task-farm bursts: repeatedly grab a random tile and walk it for
    /// `every - 1` accesses, then emit one small control message on page 0
    /// — the raytrace/volrend task-queue shape, `total` records in all.
    TileBursts {
        /// Partition span in pages.
        span: u64,
        /// Total records to emit.
        total: u64,
        /// Tile size in pages.
        tile: u64,
        /// Burst length including the control message.
        every: u64,
        /// Control-message size in bytes.
        nbytes: u64,
    },
    /// The SVM protocol pump: every `every`-th request is a small control
    /// message on one of `hot` pages, the rest walk the partition with a
    /// fixed stride — `total` records in all.
    ControlPump {
        /// Partition span in pages.
        span: u64,
        /// Total records to emit.
        total: u64,
        /// Hot control pages.
        hot: u64,
        /// Control-message period.
        every: u64,
        /// Control-message size in bytes.
        nbytes: u64,
        /// Page-walk stride.
        stride: u64,
    },
}

impl PatternOp {
    /// Exact number of records this op emits.
    pub(crate) fn count(&self) -> u64 {
        match self {
            PatternOp::Rotated { total, .. } => *total,
            PatternOp::Sequential { count, .. } => *count,
            PatternOp::Scatter { count, .. } => *count,
            PatternOp::LocalWalk { count, .. } => *count,
            PatternOp::TileBursts { total, .. } => *total,
            PatternOp::ControlPump { total, .. } => *total,
        }
    }
}

/// Per-op interpreter state of a [`ProcessStream`].
#[derive(Debug)]
enum OpCursor {
    Rotated {
        k: u64,
    },
    Sequential {
        i: u64,
    },
    Scatter {
        i: u64,
    },
    LocalWalk {
        i: u64,
        pos: i64,
    },
    TileBursts {
        left: u64,
        burst: u64,
        tiles_left: u64,
        tile_page: u64,
        tile_rem: u64,
    },
    ControlPump {
        k: u64,
        left: u64,
    },
}

impl OpCursor {
    fn for_op(op: &PatternOp) -> OpCursor {
        match op {
            PatternOp::Rotated { .. } => OpCursor::Rotated { k: 0 },
            PatternOp::Sequential { .. } => OpCursor::Sequential { i: 0 },
            PatternOp::Scatter { .. } => OpCursor::Scatter { i: 0 },
            PatternOp::LocalWalk { .. } => OpCursor::LocalWalk { i: 0, pos: 0 },
            PatternOp::TileBursts { total, .. } => OpCursor::TileBursts {
                left: *total,
                burst: 0,
                tiles_left: 0,
                tile_page: 0,
                tile_rem: 0,
            },
            PatternOp::ControlPump { total, .. } => OpCursor::ControlPump { k: 0, left: *total },
        }
    }
}

/// One process' record stream, generated on demand.
///
/// The streaming counterpart of [`PatternBuilder`]: same pid/base-page
/// addressing, same seeded RNG, same timestamp jitter — but records are
/// synthesized one at a time by interpreting a `PatternOp` program, so
/// the stream holds O(one pass) memory however large its lookup budget is.
#[derive(Debug)]
pub struct ProcessStream {
    pid: ProcessId,
    base_page: u64,
    rng: StdRng,
    next_ts: u64,
    ts_step: u64,
    /// Rotation phase of this stream among its peers (see `emit_rotated`).
    phase: u32,
    peers: u32,
    ops: VecDeque<PatternOp>,
    cur: Option<OpCursor>,
    remaining: u64,
    workload: String,
    /// The node-level generator seed (not the per-process RNG seed).
    meta_seed: u64,
}

impl ProcessStream {
    /// Creates a stream for `pid` executing `ops`. Seeding and timestamp
    /// behavior match `PatternBuilder::new(pid, base_page, seed, ts_step)`;
    /// `phase`/`peers` position the stream among its SPMD siblings for
    /// rotated ops; `workload` and the raw `seed` are carried as metadata.
    // Each argument is one independent axis of the generator identity;
    // bundling them into a struct would just rename the call sites.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pid: ProcessId,
        base_page: u64,
        seed: u64,
        ts_step: u64,
        phase: u32,
        peers: u32,
        ops: Vec<PatternOp>,
        workload: impl Into<String>,
    ) -> Self {
        let remaining = ops.iter().map(PatternOp::count).sum();
        ProcessStream {
            pid,
            base_page,
            rng: StdRng::seed_from_u64(seed ^ (pid.raw() as u64) << 32),
            next_ts: 0,
            ts_step: ts_step.max(1),
            phase,
            peers,
            ops: ops.into(),
            cur: None,
            remaining,
            workload: workload.into(),
            meta_seed: seed,
        }
    }

    /// Identical to `PatternBuilder::advance_ts`.
    fn advance_ts(&mut self) -> u64 {
        let jitter = self.ts_step / 4;
        let dt = if jitter > 0 {
            self.ts_step - jitter + self.rng.gen_range(0..=2 * jitter)
        } else {
            self.ts_step
        };
        let ts = self.next_ts;
        self.next_ts += dt;
        ts
    }

    fn emit_page(&mut self, rel: u64) -> TraceRecord {
        let ts = self.advance_ts();
        send_page(ts, self.pid, self.base_page + rel)
    }

    fn emit_small(&mut self, rel: u64, nbytes: u64) -> TraceRecord {
        debug_assert!(nbytes < utlb_mem::PAGE_SIZE);
        let ts = self.advance_ts();
        TraceRecord {
            ts_ns: ts,
            pid: self.pid,
            op: crate::Op::Send,
            va: VirtAddr::new((self.base_page + rel) * utlb_mem::PAGE_SIZE),
            nbytes,
        }
    }

    /// Emits one record of the front op, or `None` if the op is exhausted.
    fn step_front(&mut self) -> Option<TraceRecord> {
        // The op is taken by value and restored so the RNG (`&mut self`)
        // stays usable inside the match; ops are small (one Vec at most).
        let op = self.ops.front().cloned()?;
        let mut cur = match self.cur.take() {
            Some(c) => c,
            None => OpCursor::for_op(&op),
        };
        let rec = match (&op, &mut cur) {
            (PatternOp::Rotated { seq, total }, OpCursor::Rotated { k }) => {
                if *k >= *total || seq.is_empty() {
                    None
                } else {
                    let rot = (self.phase as u64 * *total) / u64::from(self.peers.max(1));
                    let idx = (rot + *k) % *total;
                    let page = seq[(idx % seq.len() as u64) as usize];
                    *k += 1;
                    Some(self.emit_page(page))
                }
            }
            (PatternOp::Sequential { start, count }, OpCursor::Sequential { i }) => {
                if *i >= *count {
                    None
                } else {
                    let page = *start + *i;
                    *i += 1;
                    Some(self.emit_page(page))
                }
            }
            (PatternOp::Scatter { span, count }, OpCursor::Scatter { i }) => {
                if *i >= *count {
                    None
                } else {
                    *i += 1;
                    let p = self.rng.gen_range(0..*span);
                    Some(self.emit_page(p))
                }
            }
            (
                PatternOp::LocalWalk {
                    span,
                    count,
                    step,
                    locality,
                },
                OpCursor::LocalWalk { i, pos },
            ) => {
                if *i >= *count {
                    None
                } else {
                    *i += 1;
                    let step = (*step).max(1) as i64;
                    let max = span.saturating_sub(1) as i64;
                    if self.rng.gen_bool(locality.clamp(0.0, 1.0)) {
                        *pos = (*pos + self.rng.gen_range(-step..=step)).clamp(0, max);
                    } else {
                        *pos = self.rng.gen_range(0..*span) as i64;
                    }
                    Some(self.emit_page(*pos as u64))
                }
            }
            (
                PatternOp::TileBursts {
                    span,
                    tile,
                    every,
                    nbytes,
                    ..
                },
                OpCursor::TileBursts {
                    left,
                    burst,
                    tiles_left,
                    tile_page,
                    tile_rem,
                },
            ) => {
                if *left == 0 {
                    None
                } else {
                    if *burst == 0 {
                        *burst = (*every).min(*left);
                        *tiles_left = *burst - 1;
                    }
                    if *tiles_left > 0 {
                        let tile_c = (*tile).max(1).min(*span);
                        if *tile_rem == 0 {
                            *tile_page = self.rng.gen_range(0..=*span - tile_c);
                            *tile_rem = tile_c.min(*tiles_left);
                        }
                        let page = *tile_page;
                        *tile_page += 1;
                        *tile_rem -= 1;
                        *tiles_left -= 1;
                        Some(self.emit_page(page))
                    } else {
                        *left -= *burst;
                        *burst = 0;
                        Some(self.emit_small(0, *nbytes))
                    }
                }
            }
            (
                PatternOp::ControlPump {
                    span,
                    hot,
                    every,
                    nbytes,
                    stride,
                    ..
                },
                OpCursor::ControlPump { k, left },
            ) => {
                if *left == 0 {
                    None
                } else {
                    *left -= 1;
                    let kk = *k;
                    *k += 1;
                    if kk % *every == 0 {
                        Some(self.emit_small(kk % *hot, *nbytes))
                    } else {
                        Some(self.emit_page((kk * *stride) % *span))
                    }
                }
            }
            _ => unreachable!("cursor always matches the front op"),
        };
        if rec.is_some() {
            self.cur = Some(cur);
        }
        rec
    }
}

impl TraceStream for ProcessStream {
    fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            if self.ops.is_empty() {
                return None;
            }
            if let Some(rec) = self.step_front() {
                self.remaining -= 1;
                return Some(rec);
            }
            // Front op exhausted: drop it and its cursor, try the next.
            self.ops.pop_front();
            self.cur = None;
        }
    }

    fn remaining(&self) -> u64 {
        self.remaining
    }

    fn workload(&self) -> &str {
        &self.workload
    }

    fn seed(&self) -> u64 {
        self.meta_seed
    }

    fn process_ids(&self) -> Vec<ProcessId> {
        vec![self.pid]
    }
}

/// Executes an op program eagerly against a [`PatternBuilder`] — the
/// executable specification the streaming interpreter is pinned against.
/// `phase`/`peers` must match what the [`ProcessStream`] was given.
#[cfg(test)]
pub(crate) fn execute_ops(b: &mut PatternBuilder, ops: &[PatternOp], phase: u32, peers: u32) {
    for op in ops {
        match op {
            PatternOp::Rotated { seq, total } => {
                if seq.is_empty() {
                    continue;
                }
                let full: Vec<u64> = (0..*total)
                    .map(|k| seq[(k % seq.len() as u64) as usize])
                    .collect();
                let rot = (phase as usize * full.len()) / peers.max(1) as usize;
                for &p in full[rot..].iter().chain(full[..rot].iter()) {
                    b.page(p);
                }
            }
            PatternOp::Sequential { start, count } => b.sequential(*start, *count),
            PatternOp::Scatter { span, count } => b.scatter(*span, *count),
            PatternOp::LocalWalk {
                span,
                count,
                step,
                locality,
            } => b.local_walk(*span, *count, *step, *locality),
            PatternOp::TileBursts {
                span,
                total,
                tile,
                every,
                nbytes,
            } => {
                let mut remaining = *total;
                while remaining > 0 {
                    let burst = (*every).min(remaining);
                    if burst > 1 {
                        b.task_tiles(*span, burst - 1, *tile);
                    }
                    b.small(0, *nbytes);
                    remaining -= burst;
                }
            }
            PatternOp::ControlPump {
                span,
                total,
                hot,
                every,
                nbytes,
                stride,
            } => {
                let mut k = 0u64;
                let mut remaining = *total;
                while remaining > 0 {
                    if k.is_multiple_of(*every) {
                        b.small(k % hot, *nbytes);
                    } else {
                        b.page((k * stride) % span);
                    }
                    k += 1;
                    remaining -= 1;
                }
            }
        }
    }
}

/// Splits a footprint of `total` pages into `parts` contiguous partitions;
/// returns `(offset, len)` pairs covering `total` exactly.
pub(crate) fn partition(total: u64, parts: u64) -> Vec<(u64, u64)> {
    assert!(parts > 0);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut off = 0;
    for i in 0..parts {
        let len = base + u64::from(i < extra);
        out.push((off, len));
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct_pages(records: &[TraceRecord]) -> HashSet<u64> {
        records.iter().map(|r| r.va.page().number()).collect()
    }

    fn builder() -> PatternBuilder {
        PatternBuilder::new(ProcessId::new(1), 1000, 7, 100)
    }

    #[test]
    fn sequential_covers_exactly_once() {
        let mut b = builder();
        b.sequential(0, 50);
        let recs = b.finish();
        assert_eq!(recs.len(), 50);
        assert_eq!(distinct_pages(&recs).len(), 50);
        assert_eq!(recs[0].va.page().number(), 1000);
        assert!(recs.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn strided_covers_exactly_once_in_class_order() {
        let mut b = builder();
        b.strided(0, 10, 4);
        let recs = b.finish();
        let pages: Vec<u64> = recs.iter().map(|r| r.va.page().number() - 1000).collect();
        assert_eq!(pages, vec![0, 4, 8, 1, 5, 9, 2, 6, 3, 7]);
    }

    #[test]
    fn local_walk_stays_in_span_and_is_local() {
        let mut b = builder();
        b.local_walk(1000, 500, 8, 0.95);
        let recs = b.finish();
        assert_eq!(recs.len(), 500);
        for r in &recs {
            let p = r.va.page().number() - 1000;
            assert!(p < 1000);
        }
        // Strong locality: consecutive accesses are mostly near each other.
        let near = recs
            .windows(2)
            .filter(|w| {
                let a = w[0].va.page().number() as i64;
                let b = w[1].va.page().number() as i64;
                (a - b).abs() <= 16
            })
            .count();
        assert!(near > 350, "only {near}/499 near transitions");
    }

    #[test]
    fn scatter_and_tiles_respect_span_and_count() {
        let mut b = builder();
        b.scatter(100, 250);
        b.task_tiles(100, 97, 8);
        let recs = b.finish();
        assert_eq!(recs.len(), 250 + 97);
        for r in &recs {
            assert!(r.va.page().number() - 1000 < 100);
        }
    }

    #[test]
    fn small_messages_are_sub_page() {
        let mut b = builder();
        b.small(3, 64);
        let recs = b.finish();
        assert_eq!(recs[0].nbytes, 64);
        assert_eq!(recs[0].lookups(), 1);
    }

    #[test]
    fn partition_is_exact_and_contiguous() {
        let parts = partition(103, 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|(_, l)| l).sum::<u64>(), 103);
        let mut expect_off = 0;
        for (off, len) in parts {
            assert_eq!(off, expect_off);
            expect_off += len;
        }
    }

    #[test]
    fn process_stream_matches_eager_executor_on_a_mixed_program() {
        let ops = vec![
            PatternOp::Rotated {
                seq: (0..37).collect(),
                total: 90,
            },
            PatternOp::Sequential {
                start: 5,
                count: 20,
            },
            PatternOp::Scatter {
                span: 64,
                count: 50,
            },
            PatternOp::LocalWalk {
                span: 64,
                count: 80,
                step: 3,
                locality: 0.9,
            },
            PatternOp::TileBursts {
                span: 64,
                total: 100,
                tile: 8,
                every: 16,
                nbytes: 128,
            },
            PatternOp::ControlPump {
                span: 64,
                total: 77,
                hot: 4,
                every: 4,
                nbytes: 64,
                stride: 7,
            },
        ];
        for (phase, peers) in [(0u32, 5u32), (3, 5)] {
            let mut b = PatternBuilder::new(ProcessId::new(3), 500, 42, 100);
            execute_ops(&mut b, &ops, phase, peers);
            let eager = b.finish();
            let mut s = ProcessStream::new(
                ProcessId::new(3),
                500,
                42,
                100,
                phase,
                peers,
                ops.clone(),
                "mix",
            );
            assert_eq!(s.remaining(), eager.len() as u64, "exact-size metadata");
            assert_eq!(s.process_ids(), vec![ProcessId::new(3)]);
            let mut got = Vec::new();
            while let Some(r) = s.next_record() {
                got.push(r);
            }
            assert_eq!(got, eager, "phase {phase}: stream == eager spec");
            assert_eq!(s.remaining(), 0);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = PatternBuilder::new(ProcessId::new(2), 0, 9, 50);
        let mut b = PatternBuilder::new(ProcessId::new(2), 0, 9, 50);
        a.scatter(1000, 100);
        b.scatter(1000, 100);
        assert_eq!(a.finish(), b.finish());
    }
}
