//! Pattern primitives shared by the workload generators.
//!
//! Generators compose a handful of access shapes — sequential passes,
//! strided passes, sliding-window walks, task tiles, random scatters — into
//! per-process record streams. The primitives guarantee two calibration
//! properties the study depends on:
//!
//! * the *footprint* of a process equals exactly the page partition it was
//!   given (generators cover their partition), and
//! * the *lookup count* tracks the per-process budget.

use crate::record::send_page;
use crate::TraceRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utlb_mem::{ProcessId, VirtAddr};

/// Generation parameters shared by all workloads.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce byte-identical traces.
    pub seed: u64,
    /// Scales footprint and lookup targets (1.0 = the paper's Table 3).
    pub scale: f64,
    /// Application processes per node (the paper ran 4 plus a protocol
    /// process; the protocol process is always added on top of these).
    pub app_processes: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5EED,
            scale: 1.0,
            app_processes: 4,
        }
    }
}

impl GenConfig {
    /// Total process streams generated (apps + 1 protocol process).
    pub fn total_processes(&self) -> u32 {
        self.app_processes + 1
    }
}

/// Builds one process' record stream.
#[derive(Debug)]
pub struct PatternBuilder {
    pid: ProcessId,
    base_page: u64,
    rng: StdRng,
    records: Vec<TraceRecord>,
    next_ts: u64,
    ts_step: u64,
}

impl PatternBuilder {
    /// Creates a builder for `pid` whose partition starts at absolute
    /// virtual page `base_page`. `ts_step` is the mean inter-request gap in
    /// nanoseconds; a ±25% jitter decorrelates the process streams.
    pub fn new(pid: ProcessId, base_page: u64, seed: u64, ts_step: u64) -> Self {
        PatternBuilder {
            pid,
            base_page,
            rng: StdRng::seed_from_u64(seed ^ (pid.raw() as u64) << 32),
            records: Vec::new(),
            next_ts: 0,
            ts_step: ts_step.max(1),
        }
    }

    fn advance_ts(&mut self) -> u64 {
        let jitter = self.ts_step / 4;
        let dt = if jitter > 0 {
            self.ts_step - jitter + self.rng.gen_range(0..=2 * jitter)
        } else {
            self.ts_step
        };
        let ts = self.next_ts;
        self.next_ts += dt;
        ts
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Emits a one-page send of partition-relative page `rel`.
    pub fn page(&mut self, rel: u64) {
        let ts = self.advance_ts();
        self.records
            .push(send_page(ts, self.pid, self.base_page + rel));
    }

    /// Emits a small (sub-page) control message on partition-relative page
    /// `rel` — lock/barrier traffic in the SVM protocol.
    pub fn small(&mut self, rel: u64, nbytes: u64) {
        debug_assert!(nbytes < utlb_mem::PAGE_SIZE);
        let ts = self.advance_ts();
        self.records.push(TraceRecord {
            ts_ns: ts,
            pid: self.pid,
            op: crate::Op::Send,
            va: VirtAddr::new((self.base_page + rel) * utlb_mem::PAGE_SIZE),
            nbytes,
        });
    }

    /// One sequential pass over `[start, start + count)`.
    pub fn sequential(&mut self, start: u64, count: u64) {
        for i in 0..count {
            self.page(start + i);
        }
    }

    /// One strided pass over `[start, start + count)`: visits residue class
    /// 0 first (0, s, 2s, …), then class 1, and so on — every page exactly
    /// once, in FFT-transpose order.
    pub fn strided(&mut self, start: u64, count: u64, stride: u64) {
        let stride = stride.max(1);
        for phase in 0..stride {
            let mut i = phase;
            while i < count {
                self.page(start + i);
                i += stride;
            }
        }
    }

    /// `count` accesses by a slow random walk over `[0, span)`: with
    /// probability `locality` the position drifts by at most ±`step` pages,
    /// otherwise it jumps uniformly. A *small* step keeps the instantaneous
    /// working set tight (reuse distances short) while the walk still
    /// wanders the whole partition over time — the access shape of a
    /// Barnes-Hut particle partition with spatial locality.
    pub fn local_walk(&mut self, span: u64, count: u64, step: u64, locality: f64) {
        let step = step.max(1) as i64;
        let mut pos = 0i64;
        let max = span.saturating_sub(1) as i64;
        for _ in 0..count {
            if self.rng.gen_bool(locality.clamp(0.0, 1.0)) {
                pos = (pos + self.rng.gen_range(-step..=step)).clamp(0, max);
            } else {
                pos = self.rng.gen_range(0..span) as i64;
            }
            self.page(pos as u64);
        }
    }

    /// `count` uniformly random single-page accesses over `[0, span)` — the
    /// all-to-all permutation phase of Radix.
    pub fn scatter(&mut self, span: u64, count: u64) {
        for _ in 0..count {
            let p = self.rng.gen_range(0..span);
            self.page(p);
        }
    }

    /// Task-farm access: repeatedly grab a random tile of `tile` contiguous
    /// pages inside `[0, span)` and walk it, until ~`count` accesses were
    /// made. Models Raytrace/Volrend task queues.
    pub fn task_tiles(&mut self, span: u64, count: u64, tile: u64) {
        let tile = tile.max(1).min(span);
        let mut done = 0u64;
        while done < count {
            let start = self.rng.gen_range(0..=span - tile);
            let n = tile.min(count - done);
            for i in 0..n {
                self.page(start + i);
            }
            done += n;
        }
    }

    /// Finishes the stream (records are in timestamp order by construction).
    pub fn finish(self) -> Vec<TraceRecord> {
        self.records
    }
}

/// Splits a footprint of `total` pages into `parts` contiguous partitions;
/// returns `(offset, len)` pairs covering `total` exactly.
pub(crate) fn partition(total: u64, parts: u64) -> Vec<(u64, u64)> {
    assert!(parts > 0);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut off = 0;
    for i in 0..parts {
        let len = base + u64::from(i < extra);
        out.push((off, len));
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct_pages(records: &[TraceRecord]) -> HashSet<u64> {
        records.iter().map(|r| r.va.page().number()).collect()
    }

    fn builder() -> PatternBuilder {
        PatternBuilder::new(ProcessId::new(1), 1000, 7, 100)
    }

    #[test]
    fn sequential_covers_exactly_once() {
        let mut b = builder();
        b.sequential(0, 50);
        let recs = b.finish();
        assert_eq!(recs.len(), 50);
        assert_eq!(distinct_pages(&recs).len(), 50);
        assert_eq!(recs[0].va.page().number(), 1000);
        assert!(recs.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn strided_covers_exactly_once_in_class_order() {
        let mut b = builder();
        b.strided(0, 10, 4);
        let recs = b.finish();
        let pages: Vec<u64> = recs.iter().map(|r| r.va.page().number() - 1000).collect();
        assert_eq!(pages, vec![0, 4, 8, 1, 5, 9, 2, 6, 3, 7]);
    }

    #[test]
    fn local_walk_stays_in_span_and_is_local() {
        let mut b = builder();
        b.local_walk(1000, 500, 8, 0.95);
        let recs = b.finish();
        assert_eq!(recs.len(), 500);
        for r in &recs {
            let p = r.va.page().number() - 1000;
            assert!(p < 1000);
        }
        // Strong locality: consecutive accesses are mostly near each other.
        let near = recs
            .windows(2)
            .filter(|w| {
                let a = w[0].va.page().number() as i64;
                let b = w[1].va.page().number() as i64;
                (a - b).abs() <= 16
            })
            .count();
        assert!(near > 350, "only {near}/499 near transitions");
    }

    #[test]
    fn scatter_and_tiles_respect_span_and_count() {
        let mut b = builder();
        b.scatter(100, 250);
        b.task_tiles(100, 97, 8);
        let recs = b.finish();
        assert_eq!(recs.len(), 250 + 97);
        for r in &recs {
            assert!(r.va.page().number() - 1000 < 100);
        }
    }

    #[test]
    fn small_messages_are_sub_page() {
        let mut b = builder();
        b.small(3, 64);
        let recs = b.finish();
        assert_eq!(recs[0].nbytes, 64);
        assert_eq!(recs[0].lookups(), 1);
    }

    #[test]
    fn partition_is_exact_and_contiguous() {
        let parts = partition(103, 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|(_, l)| l).sum::<u64>(), 103);
        let mut expect_off = 0;
        for (off, len) in parts {
            assert_eq!(off, expect_off);
            expect_off += len;
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = PatternBuilder::new(ProcessId::new(2), 0, 9, 50);
        let mut b = PatternBuilder::new(ProcessId::new(2), 0, 9, 50);
        a.scatter(1000, 100);
        b.scatter(1000, 100);
        assert_eq!(a.finish(), b.finish());
    }
}
