//! Property-based tests of trace generation and serialization.

use proptest::prelude::*;
use utlb_mem::{ProcessId, VirtAddr, PAGE_SIZE};
use utlb_trace::{
    gen, merge_streams, merge_trace_streams, read_jsonl, write_jsonl, GenConfig, Op, SplashApp,
    Trace, TraceRecord, TraceStream, TraceView,
};

fn any_app() -> impl Strategy<Value = SplashApp> {
    prop_oneof![
        Just(SplashApp::Barnes),
        Just(SplashApp::Fft),
        Just(SplashApp::Lu),
        Just(SplashApp::Radix),
        Just(SplashApp::Raytrace),
        Just(SplashApp::Volrend),
        Just(SplashApp::Water),
    ]
}

/// 1–5 per-process streams with sorted timestamps, arbitrary gaps (including
/// simultaneous records), zero-byte and page-straddling transfers, and
/// possibly no records at all; stream `i` belongs to pid `i + 1`.
fn arb_per_process_streams() -> impl Strategy<Value = Vec<Vec<TraceRecord>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..5_000, 0u64..64, 0u64..3 * PAGE_SIZE), 0..40),
        1..6,
    )
    .prop_map(|streams| {
        streams
            .into_iter()
            .enumerate()
            .map(|(i, items)| {
                let mut ts = 0u64;
                items
                    .into_iter()
                    .map(|(dt, page, nbytes)| {
                        ts += dt;
                        TraceRecord {
                            ts_ns: ts,
                            pid: ProcessId::new(i as u32 + 1),
                            op: Op::Send,
                            va: VirtAddr::new(page * PAGE_SIZE + nbytes % 97),
                            nbytes,
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap-merging lazy per-process streams yields exactly the
    /// materialized k-way merge, for arbitrary stream shapes — empty
    /// streams, timestamp ties, zero-byte records, page straddles.
    #[test]
    fn streaming_merge_equals_materialized_merge(streams in arb_per_process_streams()) {
        let eager = merge_streams(streams.clone());
        let traces: Vec<Trace> = streams
            .into_iter()
            .map(|s| Trace::new("part", 0, s))
            .collect();
        let views: Vec<TraceView> = traces.iter().map(TraceView::new).collect();
        let mut merged = merge_trace_streams(views, "merged", 1);
        prop_assert_eq!(merged.remaining(), eager.len() as u64);
        let mut got = Vec::with_capacity(eager.len());
        while let Some(r) = merged.next_record() {
            got.push(r);
        }
        prop_assert_eq!(got, eager);
    }

    /// Every generated trace, at any seed/scale, is timestamp-ordered,
    /// covers a footprint close to its scaled Table 3 target, and spends a
    /// lookup budget close to target.
    #[test]
    fn generated_traces_hit_targets(
        app in any_app(),
        seed in any::<u64>(),
        scale in 0.02f64..0.3,
    ) {
        let cfg = GenConfig { seed, scale, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        prop_assert!(t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let spec = app.spec();
        let fp_target = (spec.footprint_pages as f64 * scale).max(5.0);
        let lk_target = (spec.lookups as f64 * scale).max(5.0);
        let fp = t.footprint_pages() as f64;
        let lk = t.total_lookups() as f64;
        prop_assert!((fp - fp_target).abs() / fp_target < 0.25,
            "{app}: footprint {fp} vs {fp_target}");
        prop_assert!((lk - lk_target).abs() / lk_target < 0.25,
            "{app}: lookups {lk} vs {lk_target}");
        // Five processes, always.
        prop_assert_eq!(t.process_ids().len(), 5);
    }

    /// JSONL serialization roundtrips every generated trace bit-exactly.
    #[test]
    fn jsonl_roundtrip(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Merging is a permutation: the multiset of records is preserved and
    /// the output is sorted.
    #[test]
    fn merge_is_sorted_permutation(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        // Split by pid, then re-merge.
        let pids = t.process_ids();
        let streams: Vec<Vec<_>> = pids
            .iter()
            .map(|p| t.records.iter().filter(|r| r.pid == *p).copied().collect())
            .collect();
        let merged = merge_streams(streams);
        prop_assert_eq!(merged.len(), t.records.len());
        prop_assert!(merged.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let mut a = merged.clone();
        let mut b = t.records.clone();
        let key = |r: &utlb_trace::TraceRecord| (r.ts_ns, r.pid.raw(), r.va.raw(), r.nbytes);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    /// Generation is a pure function of (app, config).
    #[test]
    fn generation_deterministic(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        prop_assert_eq!(gen::generate(app, &cfg), gen::generate(app, &cfg));
    }
}
