//! Property-based tests of trace generation and serialization.

use proptest::prelude::*;
use utlb_trace::{gen, merge_streams, read_jsonl, write_jsonl, GenConfig, SplashApp};

fn any_app() -> impl Strategy<Value = SplashApp> {
    prop_oneof![
        Just(SplashApp::Barnes),
        Just(SplashApp::Fft),
        Just(SplashApp::Lu),
        Just(SplashApp::Radix),
        Just(SplashApp::Raytrace),
        Just(SplashApp::Volrend),
        Just(SplashApp::Water),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated trace, at any seed/scale, is timestamp-ordered,
    /// covers a footprint close to its scaled Table 3 target, and spends a
    /// lookup budget close to target.
    #[test]
    fn generated_traces_hit_targets(
        app in any_app(),
        seed in any::<u64>(),
        scale in 0.02f64..0.3,
    ) {
        let cfg = GenConfig { seed, scale, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        prop_assert!(t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let spec = app.spec();
        let fp_target = (spec.footprint_pages as f64 * scale).max(5.0);
        let lk_target = (spec.lookups as f64 * scale).max(5.0);
        let fp = t.footprint_pages() as f64;
        let lk = t.total_lookups() as f64;
        prop_assert!((fp - fp_target).abs() / fp_target < 0.25,
            "{app}: footprint {fp} vs {fp_target}");
        prop_assert!((lk - lk_target).abs() / lk_target < 0.25,
            "{app}: lookups {lk} vs {lk_target}");
        // Five processes, always.
        prop_assert_eq!(t.process_ids().len(), 5);
    }

    /// JSONL serialization roundtrips every generated trace bit-exactly.
    #[test]
    fn jsonl_roundtrip(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Merging is a permutation: the multiset of records is preserved and
    /// the output is sorted.
    #[test]
    fn merge_is_sorted_permutation(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        let t = gen::generate(app, &cfg);
        // Split by pid, then re-merge.
        let pids = t.process_ids();
        let streams: Vec<Vec<_>> = pids
            .iter()
            .map(|p| t.records.iter().filter(|r| r.pid == *p).copied().collect())
            .collect();
        let merged = merge_streams(streams);
        prop_assert_eq!(merged.len(), t.records.len());
        prop_assert!(merged.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let mut a = merged.clone();
        let mut b = t.records.clone();
        let key = |r: &utlb_trace::TraceRecord| (r.ts_ns, r.pid.raw(), r.va.raw(), r.nbytes);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    /// Generation is a pure function of (app, config).
    #[test]
    fn generation_deterministic(app in any_app(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.02, app_processes: 4 };
        prop_assert_eq!(gen::generate(app, &cfg), gen::generate(app, &cfg));
    }
}
