//! Channel and endpoint bookkeeping.

use utlb_mem::{ProcessId, VirtAddr};
use utlb_vmmc::{ExportId, ImportId};

/// Handle to a process endpoint registered with the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u32);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "endpoint:{}", self.0)
    }
}

/// Handle to an established channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel:{}", self.0)
    }
}

/// Ring geometry of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Slots per direction of the eager ring.
    pub slots: u64,
    /// Bytes per slot, including the 16-byte header.
    pub slot_bytes: u64,
    /// Size of the rendezvous bulk window per direction.
    pub bulk_bytes: u64,
}

impl ChannelConfig {
    /// Largest eager payload this configuration carries: exactly
    /// `slot_bytes - HEADER_BYTES`. A payload of this length still takes
    /// the eager ring; one byte more switches to rendezvous.
    ///
    /// Saturates at 0 for a slot smaller than its own header — such a
    /// config cannot carry *any* eager payload, and [`validate`] rejects
    /// it before a channel is built, so the saturation is never a silent
    /// misclassification on a live channel.
    ///
    /// [`validate`]: ChannelConfig::validate
    pub fn max_eager(&self) -> u64 {
        self.slot_bytes.saturating_sub(crate::ring::HEADER_BYTES)
    }

    /// Checks that the geometry can carry traffic at all. Called by
    /// [`Fabric::connect`](crate::Fabric::connect), so every established
    /// channel satisfies these invariants:
    ///
    /// * at least one ring slot,
    /// * slots strictly larger than the slot header (otherwise
    ///   [`max_eager`](ChannelConfig::max_eager) underflows to "nothing
    ///   fits eagerly", silently forcing even 1-byte payloads through the
    ///   rendezvous path),
    /// * a bulk window no smaller than the eager maximum (otherwise the
    ///   size check would reject payloads the ring could carry).
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::InvalidConfig`](crate::MsgError::InvalidConfig)
    /// naming the violated invariant.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::MsgError::InvalidConfig;
        if self.slots == 0 {
            return Err(InvalidConfig("ring needs at least one slot"));
        }
        if self.slot_bytes <= crate::ring::HEADER_BYTES {
            return Err(InvalidConfig(
                "slot_bytes must exceed the 16-byte slot header",
            ));
        }
        if self.bulk_bytes < self.max_eager() {
            return Err(InvalidConfig("bulk window smaller than the eager maximum"));
        }
        Ok(())
    }
}

impl Default for ChannelConfig {
    /// 16 slots of 1 KB plus a 64 KB rendezvous window.
    fn default() -> Self {
        ChannelConfig {
            slots: 16,
            slot_bytes: 1024,
            bulk_bytes: 64 * 1024,
        }
    }
}

/// One registered endpoint: a process on a node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Endpoint {
    pub node: usize,
    pub pid: ProcessId,
    /// Bump allocator for this endpoint's receive-side buffer placement.
    pub next_va: u64,
    /// Reusable landing region for [`Fabric::recv`](crate::Fabric::recv):
    /// base address and capacity. Allocated lazily and grown (never per
    /// message), so the convenience path stops leaking address space.
    pub recv_scratch: Option<(VirtAddr, u64)>,
}

/// Per-direction connection state (one of two halves of a channel).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Direction {
    // --- receiver side (owned by `dst`) ---
    /// Base of the eager ring in the receiver's address space.
    pub ring_va: VirtAddr,
    /// Base of the credit page in the receiver's address space.
    pub credit_va: VirtAddr,
    /// Export of the bulk rendezvous window on the receiver.
    pub bulk_export: ExportId,
    /// Next sequence number the receiver expects.
    pub recv_seq: u64,
    /// Messages consumed (mirrored into the credit page).
    pub consumed: u64,

    // --- sender side (owned by `src`) ---
    /// Import of the ring at the sender.
    pub ring_import: ImportId,
    /// Import of the credit page at the sender.
    pub credit_import: ImportId,
    /// Import of the bulk window at the sender.
    pub bulk_import: ImportId,
    /// Next sequence number the sender will use.
    pub send_seq: u64,
    /// Sender's cached copy of the receiver's consumed counter.
    pub credits_seen: u64,
    /// Staging buffer in the sender's address space (eager copies and
    /// rendezvous payloads).
    pub send_stage_va: VirtAddr,
    /// Scratch page the sender fetches credits/CTS grants into.
    pub fetch_scratch_va: VirtAddr,
    /// A large send staged and announced, awaiting the receiver's grant:
    /// `(seq, staged address, length)`.
    pub pending_large: Option<(u64, VirtAddr, u64)>,
}

/// A bidirectional channel: two mirrored directions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Channel {
    pub a: EndpointId,
    pub b: EndpointId,
    pub cfg: ChannelConfig,
    /// Direction a → b.
    pub ab: Direction,
    /// Direction b → a.
    pub ba: Direction,
}

impl Channel {
    /// The direction sending *from* `src`, plus the destination endpoint.
    pub fn direction_from(&self, src: EndpointId) -> Option<(&Direction, EndpointId)> {
        if src == self.a {
            Some((&self.ab, self.b))
        } else if src == self.b {
            Some((&self.ba, self.a))
        } else {
            None
        }
    }

    /// Mutable direction sending from `src`.
    pub fn direction_from_mut(&mut self, src: EndpointId) -> Option<(&mut Direction, EndpointId)> {
        if src == self.a {
            Some((&mut self.ab, self.b))
        } else if src == self.b {
            Some((&mut self.ba, self.a))
        } else {
            None
        }
    }

    /// The direction delivering *to* `dst`, plus the source endpoint.
    pub fn direction_to_mut(&mut self, dst: EndpointId) -> Option<(&mut Direction, EndpointId)> {
        if dst == self.b {
            Some((&mut self.ab, self.a))
        } else if dst == self.a {
            Some((&mut self.ba, self.b))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_max_eager() {
        let c = ChannelConfig::default();
        assert_eq!(c.max_eager(), 1024 - 16);
        assert!(c.bulk_bytes > c.slot_bytes);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn degenerate_configs_are_error_typed() {
        use crate::MsgError;
        let ok = ChannelConfig::default();
        let no_slots = ChannelConfig { slots: 0, ..ok };
        assert!(matches!(
            no_slots.validate(),
            Err(MsgError::InvalidConfig(_))
        ));
        // slot_bytes == header leaves zero eager bytes; smaller would
        // underflow the subtraction — both must be typed errors, and
        // max_eager must saturate instead of wrapping to ~u64::MAX
        // (which would misclassify every payload as eager).
        for slot_bytes in [0, 8, 16] {
            let tiny = ChannelConfig { slot_bytes, ..ok };
            assert_eq!(tiny.max_eager(), 0, "slot_bytes={slot_bytes}");
            assert!(matches!(tiny.validate(), Err(MsgError::InvalidConfig(_))));
        }
        assert_eq!(
            ChannelConfig {
                slot_bytes: 17,
                bulk_bytes: 17,
                ..ok
            }
            .max_eager(),
            1
        );
        let narrow_bulk = ChannelConfig {
            bulk_bytes: 100,
            ..ok
        };
        assert!(matches!(
            narrow_bulk.validate(),
            Err(MsgError::InvalidConfig(_))
        ));
    }

    #[test]
    fn handles_display() {
        assert_eq!(EndpointId(1).to_string(), "endpoint:1");
        assert_eq!(ChannelId(2).to_string(), "channel:2");
    }
}
