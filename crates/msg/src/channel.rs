//! Channel and endpoint bookkeeping.

use utlb_mem::{ProcessId, VirtAddr};
use utlb_vmmc::{ExportId, ImportId};

/// Handle to a process endpoint registered with the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u32);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "endpoint:{}", self.0)
    }
}

/// Handle to an established channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel:{}", self.0)
    }
}

/// Ring geometry of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Slots per direction of the eager ring.
    pub slots: u64,
    /// Bytes per slot, including the 16-byte header.
    pub slot_bytes: u64,
    /// Size of the rendezvous bulk window per direction.
    pub bulk_bytes: u64,
}

impl ChannelConfig {
    /// Largest eager payload this configuration carries.
    pub fn max_eager(&self) -> u64 {
        self.slot_bytes - crate::ring::HEADER_BYTES
    }
}

impl Default for ChannelConfig {
    /// 16 slots of 1 KB plus a 64 KB rendezvous window.
    fn default() -> Self {
        ChannelConfig {
            slots: 16,
            slot_bytes: 1024,
            bulk_bytes: 64 * 1024,
        }
    }
}

/// One registered endpoint: a process on a node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Endpoint {
    pub node: usize,
    pub pid: ProcessId,
    /// Bump allocator for this endpoint's receive-side buffer placement.
    pub next_va: u64,
}

/// Per-direction connection state (one of two halves of a channel).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Direction {
    // --- receiver side (owned by `dst`) ---
    /// Base of the eager ring in the receiver's address space.
    pub ring_va: VirtAddr,
    /// Base of the credit page in the receiver's address space.
    pub credit_va: VirtAddr,
    /// Export of the bulk rendezvous window on the receiver.
    pub bulk_export: ExportId,
    /// Next sequence number the receiver expects.
    pub recv_seq: u64,
    /// Messages consumed (mirrored into the credit page).
    pub consumed: u64,

    // --- sender side (owned by `src`) ---
    /// Import of the ring at the sender.
    pub ring_import: ImportId,
    /// Import of the credit page at the sender.
    pub credit_import: ImportId,
    /// Import of the bulk window at the sender.
    pub bulk_import: ImportId,
    /// Next sequence number the sender will use.
    pub send_seq: u64,
    /// Sender's cached copy of the receiver's consumed counter.
    pub credits_seen: u64,
    /// Staging buffer in the sender's address space (eager copies and
    /// rendezvous payloads).
    pub send_stage_va: VirtAddr,
    /// Scratch page the sender fetches credits/CTS grants into.
    pub fetch_scratch_va: VirtAddr,
    /// A large send staged and announced, awaiting the receiver's grant:
    /// `(seq, staged address, length)`.
    pub pending_large: Option<(u64, VirtAddr, u64)>,
}

/// A bidirectional channel: two mirrored directions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Channel {
    pub a: EndpointId,
    pub b: EndpointId,
    pub cfg: ChannelConfig,
    /// Direction a → b.
    pub ab: Direction,
    /// Direction b → a.
    pub ba: Direction,
}

impl Channel {
    /// The direction sending *from* `src`, plus the destination endpoint.
    pub fn direction_from(&self, src: EndpointId) -> Option<(&Direction, EndpointId)> {
        if src == self.a {
            Some((&self.ab, self.b))
        } else if src == self.b {
            Some((&self.ba, self.a))
        } else {
            None
        }
    }

    /// Mutable direction sending from `src`.
    pub fn direction_from_mut(&mut self, src: EndpointId) -> Option<(&mut Direction, EndpointId)> {
        if src == self.a {
            Some((&mut self.ab, self.b))
        } else if src == self.b {
            Some((&mut self.ba, self.a))
        } else {
            None
        }
    }

    /// The direction delivering *to* `dst`, plus the source endpoint.
    pub fn direction_to_mut(&mut self, dst: EndpointId) -> Option<(&mut Direction, EndpointId)> {
        if dst == self.b {
            Some((&mut self.ab, self.a))
        } else if dst == self.a {
            Some((&mut self.ba, self.b))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_max_eager() {
        let c = ChannelConfig::default();
        assert_eq!(c.max_eager(), 1024 - 16);
        assert!(c.bulk_bytes > c.slot_bytes);
    }

    #[test]
    fn handles_display() {
        assert_eq!(EndpointId(1).to_string(), "endpoint:1");
        assert_eq!(ChannelId(2).to_string(), "channel:2");
    }
}
