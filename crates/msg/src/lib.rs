//! Connection-oriented, zero-copy messaging on top of VMMC.
//!
//! The paper's §4.1 motivates transfer redirection with exactly this layer:
//! "this enables zero-copy implementations of high-level communication
//! APIs" (citing Damianakis' connection-oriented communication work). This
//! crate is that layer, built only from the VMMC primitives the UTLB
//! empowers:
//!
//! * **Eager path** (small messages): the receiver exports a ring of
//!   message slots; `send` remote-stores the payload and then its header —
//!   the in-order data-link channel makes the header's arrival the
//!   completion flag — and `recv` just polls local memory. No kernel, no
//!   interrupts, no copies beyond the single wire transfer.
//! * **Rendezvous path** (large messages): `send` posts a
//!   request-to-send; the receiver *redirects* its bulk export straight at
//!   the application's destination buffer and grants a clear-to-send, which
//!   the sender picks up with a **remote fetch**; the payload then lands in
//!   its final location — true zero-copy, the data is never staged.
//! * **Credit-based flow control**: the receiver publishes its consumed
//!   count in an exported credit page; a sender that runs out of ring
//!   credits refreshes them with a remote fetch.
//!
//! # Example
//!
//! ```
//! use utlb_msg::{ChannelConfig, Fabric};
//! use utlb_vmmc::Cluster;
//!
//! # fn main() -> Result<(), utlb_msg::MsgError> {
//! let cluster = Cluster::new(2)?;
//! let mut fabric = Fabric::new(cluster);
//! let a = fabric.add_endpoint(0)?;
//! let b = fabric.add_endpoint(1)?;
//! let channel = fabric.connect(a, b, ChannelConfig::default())?;
//!
//! fabric.send(channel, a, b"hello from a")?;
//! let msg = fabric.recv(channel, b)?;
//! assert_eq!(&msg, b"hello from a");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod channel;
mod error;
mod fabric;
pub mod proto;
mod ring;

pub use channel::{ChannelConfig, ChannelId, EndpointId};
pub use error::MsgError;
pub use fabric::{Fabric, RecvBuf};
pub use proto::{Frame, FRAME_BYTES};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MsgError>;
