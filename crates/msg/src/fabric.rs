//! The messaging fabric: endpoints, channels, and the send/recv protocol.

use crate::channel::{Channel, ChannelConfig, ChannelId, Direction, Endpoint, EndpointId};
use crate::ring::{self, credit, HEADER_BYTES};
use crate::{MsgError, Result};
use std::collections::HashMap;
use utlb_mem::{VirtAddr, PAGE_SIZE};
use utlb_vmmc::{Cluster, ImportId};

/// Base of the fabric-managed buffer region in every endpoint's address
/// space (rings, credit pages, staging areas are bump-allocated from here;
/// application buffers live below it).
const FABRIC_BASE: u64 = 0x8000_0000;

/// A caller-owned reusable receive buffer for
/// [`Fabric::recv_reuse`] — the messaging analogue of the lookup path's
/// `OutcomeBuf`: one simulated landing region plus one byte `Vec`, both
/// kept across messages so a steady-state receive loop allocates nothing
/// per message (neither host memory nor simulated address space).
///
/// A buffer is bound to the first endpoint it receives for and rebinds
/// (with a fresh region) if used with a different one; the common pattern
/// is one `RecvBuf` per receiving endpoint.
#[derive(Debug, Default)]
pub struct RecvBuf {
    /// Landing region: owning endpoint, base address, capacity.
    region: Option<(EndpointId, VirtAddr, u64)>,
    /// The last received payload.
    bytes: Vec<u8>,
}

impl RecvBuf {
    /// An empty buffer; the landing region is allocated on first use.
    pub fn new() -> Self {
        RecvBuf::default()
    }

    /// The last received payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the last received payload, in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the last received payload was empty (or nothing was
    /// received yet).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Base address of the simulated landing region, if one is allocated —
    /// useful for asserting reuse in tests.
    pub fn region_base(&self) -> Option<VirtAddr> {
        self.region.map(|(_, base, _)| base)
    }
}

/// The messaging fabric.
///
/// Owns the [`Cluster`] and drives both endpoints of every channel — the
/// single-threaded stand-in for two concurrently running library instances.
/// All data still moves exclusively through VMMC remote stores/fetches with
/// UTLB translation; the fabric only sequences the protocol steps.
#[derive(Debug)]
pub struct Fabric {
    cluster: Cluster,
    endpoints: Vec<Endpoint>,
    channels: HashMap<u32, Channel>,
    next_channel: u32,
}

impl Fabric {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Fabric {
            cluster,
            endpoints: Vec::new(),
            channels: HashMap::new(),
            next_channel: 1,
        }
    }

    /// The underlying cluster (statistics, fault injection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (e.g. staging application data).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Spawns a process on `node` and registers it as an endpoint.
    ///
    /// # Errors
    ///
    /// Propagates cluster errors for an unknown node.
    pub fn add_endpoint(&mut self, node: usize) -> Result<EndpointId> {
        let pid = self.cluster.spawn_process(node)?;
        self.endpoints.push(Endpoint {
            node,
            pid,
            next_va: FABRIC_BASE,
            recv_scratch: None,
        });
        Ok(EndpointId(self.endpoints.len() as u32 - 1))
    }

    fn endpoint(&self, id: EndpointId) -> Result<Endpoint> {
        self.endpoints
            .get(id.0 as usize)
            .copied()
            .ok_or(MsgError::UnknownEndpoint(id.0))
    }

    /// Bump-allocates `len` page-aligned bytes in `id`'s address space.
    fn alloc_va(&mut self, id: EndpointId, len: u64) -> Result<VirtAddr> {
        let ep = self
            .endpoints
            .get_mut(id.0 as usize)
            .ok_or(MsgError::UnknownEndpoint(id.0))?;
        let va = VirtAddr::new(ep.next_va);
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        ep.next_va += pages * PAGE_SIZE;
        Ok(va)
    }

    /// Builds the receiver half of one direction and the matching imports
    /// on the sender.
    fn build_direction(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        cfg: ChannelConfig,
    ) -> Result<Direction> {
        let src_ep = self.endpoint(src)?;
        let dst_ep = self.endpoint(dst)?;

        let ring_va = self.alloc_va(dst, cfg.slots * cfg.slot_bytes)?;
        let credit_va = self.alloc_va(dst, PAGE_SIZE)?;
        let bulk_va = self.alloc_va(dst, cfg.bulk_bytes)?;
        let send_stage_va = self.alloc_va(src, cfg.bulk_bytes.max(cfg.slot_bytes))?;
        let fetch_scratch_va = self.alloc_va(src, PAGE_SIZE)?;

        let ring_export =
            self.cluster
                .export(dst_ep.node, dst_ep.pid, ring_va, cfg.slots * cfg.slot_bytes)?;
        let credit_export = self
            .cluster
            .export(dst_ep.node, dst_ep.pid, credit_va, PAGE_SIZE)?;
        let bulk_export = self
            .cluster
            .export(dst_ep.node, dst_ep.pid, bulk_va, cfg.bulk_bytes)?;

        let ring_import = self
            .cluster
            .import(src_ep.node, src_ep.pid, dst_ep.node, ring_export)?;
        let credit_import =
            self.cluster
                .import(src_ep.node, src_ep.pid, dst_ep.node, credit_export)?;
        let bulk_import = self
            .cluster
            .import(src_ep.node, src_ep.pid, dst_ep.node, bulk_export)?;

        Ok(Direction {
            ring_va,
            credit_va,
            bulk_export,
            recv_seq: 1,
            consumed: 0,
            ring_import,
            credit_import,
            bulk_import,
            send_seq: 1,
            credits_seen: 0,
            send_stage_va,
            fetch_scratch_va,
            pending_large: None,
        })
    }

    /// Establishes a bidirectional channel between two endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::InvalidConfig`] for a ring geometry that cannot
    /// carry traffic (see [`ChannelConfig::validate`]) and propagates
    /// export/import failures.
    pub fn connect(
        &mut self,
        a: EndpointId,
        b: EndpointId,
        cfg: ChannelConfig,
    ) -> Result<ChannelId> {
        cfg.validate()?;
        let ab = self.build_direction(a, b, cfg)?;
        let ba = self.build_direction(b, a, cfg)?;
        let id = ChannelId(self.next_channel);
        self.next_channel += 1;
        self.channels.insert(id.0, Channel { a, b, cfg, ab, ba });
        Ok(id)
    }

    fn channel(&self, id: ChannelId) -> Result<&Channel> {
        self.channels
            .get(&id.0)
            .ok_or(MsgError::UnknownChannel(id.0))
    }

    fn channel_mut(&mut self, id: ChannelId) -> Result<&mut Channel> {
        self.channels
            .get_mut(&id.0)
            .ok_or(MsgError::UnknownChannel(id.0))
    }

    /// Refreshes the sender's credit view with a remote fetch of the
    /// receiver's consumed counter.
    fn refresh_credits(
        &mut self,
        src: Endpoint,
        credit_import: ImportId,
        scratch: VirtAddr,
    ) -> Result<u64> {
        self.cluster.remote_fetch(
            src.node,
            src.pid,
            credit_import,
            scratch,
            credit::CONSUMED,
            8,
        )?;
        self.cluster.run_until_quiet()?;
        let mut buf = [0u8; 8];
        self.cluster
            .read_local(src.node, src.pid, scratch, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Sends `payload` on `channel` from endpoint `from`.
    ///
    /// Small messages take the eager ring; larger ones stage and announce a
    /// rendezvous that completes inside the peer's matching [`Fabric::recv`].
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::WouldBlock`] when the ring is full and the peer
    /// has not consumed (call `recv` on the peer first), and
    /// [`MsgError::MessageTooLarge`] beyond the bulk window.
    pub fn send(&mut self, channel: ChannelId, from: EndpointId, payload: &[u8]) -> Result<()> {
        let ch = self.channel(channel)?;
        let cfg = ch.cfg;
        let (dir, _) = ch.direction_from(from).ok_or(MsgError::NotAMember {
            endpoint: from.0,
            channel: channel.0,
        })?;
        let dir = *dir;
        let src = self.endpoint(from)?;
        let len = payload.len() as u64;

        if len > cfg.bulk_bytes {
            return Err(MsgError::MessageTooLarge {
                len,
                max: cfg.bulk_bytes,
            });
        }
        if dir.pending_large.is_some() {
            return Err(MsgError::ProtocolViolation(
                "previous rendezvous not yet received",
            ));
        }

        // Flow control: outstanding eager slots.
        let mut credits_seen = dir.credits_seen;
        if dir.send_seq - 1 - credits_seen >= cfg.slots {
            credits_seen = self.refresh_credits(src, dir.credit_import, dir.fetch_scratch_va)?;
            if dir.send_seq - 1 - credits_seen >= cfg.slots {
                return Err(MsgError::WouldBlock);
            }
        }

        let seq = dir.send_seq;
        let slot = ring::slot_offset(seq, cfg.slots, cfg.slot_bytes);

        if len <= cfg.max_eager() {
            // Eager: payload first, header second — the in-order channel
            // turns the header's arrival into the completion flag.
            if !payload.is_empty() {
                self.cluster
                    .write_local(src.node, src.pid, dir.send_stage_va, payload)?;
                self.cluster.remote_store(
                    src.node,
                    src.pid,
                    dir.ring_import,
                    dir.send_stage_va,
                    slot + HEADER_BYTES,
                    len,
                )?;
            }
            let header = ring::encode_header(seq, len);
            // Header staging lives in the fetch-scratch page, clear of the
            // payload staging area.
            let header_va = dir.fetch_scratch_va.offset(64);
            self.cluster
                .write_local(src.node, src.pid, header_va, &header)?;
            self.cluster.remote_store(
                src.node,
                src.pid,
                dir.ring_import,
                header_va,
                slot,
                HEADER_BYTES,
            )?;
            self.cluster.run_until_quiet()?;
        } else {
            // Rendezvous: stage the payload, announce with a header whose
            // length exceeds the eager maximum.
            self.cluster
                .write_local(src.node, src.pid, dir.send_stage_va, payload)?;
            let header = ring::encode_header(seq, len);
            let header_va = dir.fetch_scratch_va.offset(64);
            self.cluster
                .write_local(src.node, src.pid, header_va, &header)?;
            self.cluster.remote_store(
                src.node,
                src.pid,
                dir.ring_import,
                header_va,
                slot,
                HEADER_BYTES,
            )?;
            self.cluster.run_until_quiet()?;
        }

        let ch = self.channel_mut(channel)?;
        let (dir_mut, _) = ch.direction_from_mut(from).expect("membership checked");
        dir_mut.send_seq += 1;
        dir_mut.credits_seen = credits_seen;
        if len > cfg.max_eager() {
            dir_mut.pending_large = Some((seq, dir.send_stage_va, len));
        }
        Ok(())
    }

    /// Grows (or lazily allocates) `to`'s reusable receive-scratch region
    /// to hold at least `len` bytes, returning its base address.
    fn recv_scratch(&mut self, to: EndpointId, len: u64) -> Result<VirtAddr> {
        if let Some((va, cap)) = self.endpoint(to)?.recv_scratch {
            if cap >= len {
                return Ok(va);
            }
        }
        let cap = len.max(PAGE_SIZE);
        let va = self.alloc_va(to, cap)?;
        self.endpoints[to.0 as usize].recv_scratch = Some((va, cap));
        Ok(va)
    }

    /// Receives the next message on `channel` for endpoint `to`, into a
    /// fresh `Vec`.
    ///
    /// Convenience path: the payload lands in a per-endpoint scratch region
    /// (reused across calls, not leaked per message) and is then copied
    /// out. Hot paths should hold a [`RecvBuf`] and call
    /// [`recv_reuse`](Fabric::recv_reuse), or go straight to
    /// [`recv_into`](Fabric::recv_into).
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::WouldBlock`] if no message is pending.
    pub fn recv(&mut self, channel: ChannelId, to: EndpointId) -> Result<Vec<u8>> {
        let probe = self.peek_len(channel, to)?;
        let target = self.recv_scratch(to, probe.max(1))?;
        let n = self.recv_into(channel, to, target, probe)?;
        let dst = self.endpoint(to)?;
        let mut buf = vec![0u8; n as usize];
        self.cluster
            .read_local(dst.node, dst.pid, target, &mut buf)?;
        Ok(buf)
    }

    /// Receives the next message into a caller-owned [`RecvBuf`], reusing
    /// both its simulated landing region and its byte buffer — the
    /// allocation-free analogue of `OutcomeBuf` on the lookup path.
    /// Returns the message length; the payload is in
    /// [`RecvBuf::as_slice`].
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::WouldBlock`] if no message is pending.
    pub fn recv_reuse(
        &mut self,
        channel: ChannelId,
        to: EndpointId,
        buf: &mut RecvBuf,
    ) -> Result<u64> {
        let len = self.peek_len(channel, to)?;
        let base = match buf.region {
            Some((ep, base, cap)) if ep == to && cap >= len.max(1) => base,
            _ => {
                // First use, a different endpoint, or a message larger than
                // the region: (re)allocate, then reuse until outgrown.
                let cap = len.max(PAGE_SIZE);
                let base = self.alloc_va(to, cap)?;
                buf.region = Some((to, base, cap));
                base
            }
        };
        let n = self.recv_into(channel, to, base, len)?;
        let dst = self.endpoint(to)?;
        buf.bytes.clear();
        buf.bytes.resize(n as usize, 0);
        self.cluster
            .read_local(dst.node, dst.pid, base, &mut buf.bytes)?;
        Ok(n)
    }

    /// Length of the next pending message, without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::WouldBlock`] if no message is pending.
    pub fn peek_len(&mut self, channel: ChannelId, to: EndpointId) -> Result<u64> {
        let ch = self.channel_mut(channel)?;
        let cfg = ch.cfg;
        let (dir, _) = ch.direction_to_mut(to).ok_or(MsgError::NotAMember {
            endpoint: to.0,
            channel: channel.0,
        })?;
        let (ring_va, recv_seq) = (dir.ring_va, dir.recv_seq);
        let dst = self.endpoint(to)?;
        let slot = ring::slot_offset(recv_seq, cfg.slots, cfg.slot_bytes);
        let mut header = [0u8; HEADER_BYTES as usize];
        self.cluster
            .read_local(dst.node, dst.pid, ring_va.offset(slot), &mut header)?;
        let (seq, len) = ring::decode_header(&header);
        if seq != recv_seq {
            return Err(MsgError::WouldBlock);
        }
        Ok(len)
    }

    /// Receives the next message directly into `target` in the receiving
    /// process' memory — the zero-copy path. Returns the message length.
    ///
    /// For rendezvous messages the bulk export is *redirected* at `target`
    /// before the clear-to-send, so the payload's only movement is the wire
    /// transfer into its final location (paper §4.1).
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::WouldBlock`] if no message is pending and
    /// [`MsgError::MessageTooLarge`] if `capacity` is too small.
    pub fn recv_into(
        &mut self,
        channel: ChannelId,
        to: EndpointId,
        target: VirtAddr,
        capacity: u64,
    ) -> Result<u64> {
        let len = self.peek_len(channel, to)?;
        if len > capacity {
            return Err(MsgError::MessageTooLarge { len, max: capacity });
        }
        let (cfg, dir, from) = {
            let ch = self.channel_mut(channel)?;
            let cfg = ch.cfg;
            let (dir, from) = ch.direction_to_mut(to).expect("peek checked membership");
            (cfg, *dir, from)
        };
        let dst = self.endpoint(to)?;
        let src = self.endpoint(from)?;
        let slot = ring::slot_offset(dir.recv_seq, cfg.slots, cfg.slot_bytes);

        if len <= cfg.max_eager() {
            // Eager delivery: the payload already sits in the ring slot.
            if len > 0 {
                let mut buf = vec![0u8; len as usize];
                self.cluster.read_local(
                    dst.node,
                    dst.pid,
                    dir.ring_va.offset(slot + HEADER_BYTES),
                    &mut buf,
                )?;
                self.cluster.write_local(dst.node, dst.pid, target, &buf)?;
            }
        } else {
            // Rendezvous: redirect the bulk window at the final buffer,
            // grant clear-to-send, and let the sender push the payload.
            let (pseq, stage_va, plen) = dir
                .pending_large
                .ok_or(MsgError::ProtocolViolation("RTS without a staged payload"))?;
            if pseq != dir.recv_seq || plen != len {
                return Err(MsgError::ProtocolViolation("rendezvous sequence mismatch"));
            }
            self.cluster
                .redirect(dst.node, dst.pid, dir.bulk_export, target)?;
            self.cluster.write_local(
                dst.node,
                dst.pid,
                dir.credit_va.offset(credit::CTS_SEQ),
                &pseq.to_le_bytes(),
            )?;
            // The sender observes the grant with a remote fetch …
            let cts_scratch = dir.fetch_scratch_va.offset(8);
            self.cluster.remote_fetch(
                src.node,
                src.pid,
                dir.credit_import,
                cts_scratch,
                credit::CTS_SEQ,
                8,
            )?;
            self.cluster.run_until_quiet()?;
            let mut buf = [0u8; 8];
            self.cluster
                .read_local(src.node, src.pid, cts_scratch, &mut buf)?;
            if u64::from_le_bytes(buf) != pseq {
                return Err(MsgError::ProtocolViolation("clear-to-send not granted"));
            }
            // … and pushes the payload straight into its final location.
            self.cluster
                .remote_store(src.node, src.pid, dir.bulk_import, stage_va, 0, len)?;
            self.cluster.run_until_quiet()?;
        }

        // Consume: bump the receiver's counter and publish it for the
        // sender's next credit refresh.
        let consumed = dir.consumed + 1;
        self.cluster.write_local(
            dst.node,
            dst.pid,
            dir.credit_va.offset(credit::CONSUMED),
            &consumed.to_le_bytes(),
        )?;
        let ch = self.channel_mut(channel)?;
        let (dir_mut, _) = ch.direction_to_mut(to).expect("membership checked");
        dir_mut.recv_seq += 1;
        dir_mut.consumed = consumed;
        // Only a completed rendezvous consumes the staged payload; eager
        // messages queued ahead of an RTS must leave it pending.
        if len > cfg.max_eager() {
            dir_mut.pending_large = None;
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_endpoint_fabric() -> (Fabric, EndpointId, EndpointId, ChannelId) {
        let cluster = Cluster::new(2).expect("cluster");
        let mut fabric = Fabric::new(cluster);
        let a = fabric.add_endpoint(0).unwrap();
        let b = fabric.add_endpoint(1).unwrap();
        let ch = fabric.connect(a, b, ChannelConfig::default()).unwrap();
        (fabric, a, b, ch)
    }

    #[test]
    fn eager_roundtrip_both_directions() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        f.send(ch, a, b"ping").unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), b"ping");
        f.send(ch, b, b"pong").unwrap();
        assert_eq!(f.recv(ch, a).unwrap(), b"pong");
    }

    #[test]
    fn messages_are_fifo_within_a_direction() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        for i in 0..5u8 {
            f.send(ch, a, &[i; 8]).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(f.recv(ch, b).unwrap(), vec![i; 8]);
        }
        assert!(matches!(f.recv(ch, b), Err(MsgError::WouldBlock)));
    }

    #[test]
    fn ring_full_is_wouldblock_until_consumed() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        // Default ring has 16 slots.
        for _ in 0..16 {
            f.send(ch, a, b"x").unwrap();
        }
        assert!(matches!(f.send(ch, a, b"y"), Err(MsgError::WouldBlock)));
        // Consuming frees a credit (discovered via remote fetch).
        f.recv(ch, b).unwrap();
        f.send(ch, a, b"y").unwrap();
    }

    #[test]
    fn rendezvous_large_message() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 239) as u8).collect();
        f.send(ch, a, &big).unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), big);
        // The channel remains usable for eager traffic afterwards.
        f.send(ch, a, b"after").unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), b"after");
    }

    #[test]
    fn recv_into_is_zero_copy_to_the_caller_buffer() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        let big = vec![0x7Eu8; 8192];
        f.send(ch, a, &big).unwrap();
        let dst = f.endpoint(b).unwrap();
        let target = VirtAddr::new(0x2000_0000);
        let n = f.recv_into(ch, b, target, big.len() as u64).unwrap();
        assert_eq!(n, big.len() as u64);
        let mut got = vec![0u8; big.len()];
        f.cluster_mut()
            .read_local(dst.node, dst.pid, target, &mut got)
            .unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn oversized_and_undersized_are_rejected() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        let too_big = vec![0u8; 100 * 1024];
        assert!(matches!(
            f.send(ch, a, &too_big),
            Err(MsgError::MessageTooLarge { .. })
        ));
        f.send(ch, a, &[1u8; 100]).unwrap();
        assert!(matches!(
            f.recv_into(ch, b, VirtAddr::new(0x2000_0000), 10),
            Err(MsgError::MessageTooLarge { .. })
        ));
    }

    #[test]
    fn membership_is_enforced() {
        let (mut f, a, _b, ch) = two_endpoint_fabric();
        let outsider = f.add_endpoint(0).unwrap();
        assert!(matches!(
            f.send(ch, outsider, b"hi"),
            Err(MsgError::NotAMember { .. })
        ));
        assert!(matches!(
            f.recv(ch, outsider),
            Err(MsgError::NotAMember { .. })
        ));
        assert!(matches!(
            f.send(ChannelId(99), a, b"hi"),
            Err(MsgError::UnknownChannel(99))
        ));
    }

    #[test]
    fn eager_rendezvous_switch_is_exact_at_max_eager() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        let max = ChannelConfig::default().max_eager();

        // Exactly max_eager: stays on the eager path. Proof: a second send
        // succeeds immediately — a rendezvous would leave `pending_large`
        // set and fail it with ProtocolViolation.
        let at_max = vec![0x11u8; max as usize];
        f.send(ch, a, &at_max).unwrap();
        f.send(ch, a, b"follow-up").unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), at_max);
        assert_eq!(f.recv(ch, b).unwrap(), b"follow-up");

        // One byte more: rendezvous. The same probe now fails.
        let over_max = vec![0x22u8; max as usize + 1];
        f.send(ch, a, &over_max).unwrap();
        assert!(matches!(
            f.send(ch, a, b"blocked"),
            Err(MsgError::ProtocolViolation(_))
        ));
        assert_eq!(f.recv(ch, b).unwrap(), over_max);
        f.send(ch, a, b"unblocked").unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), b"unblocked");
    }

    #[test]
    fn zero_byte_payloads_roundtrip_eagerly() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        f.send(ch, a, b"").unwrap();
        f.send(ch, a, b"after-empty").unwrap();
        assert_eq!(f.recv(ch, b).unwrap(), b"");
        assert_eq!(f.recv(ch, b).unwrap(), b"after-empty");
        // Zero-byte also works through the zero-copy and reuse paths.
        f.send(ch, b, b"").unwrap();
        assert_eq!(
            f.recv_into(ch, a, VirtAddr::new(0x2000_0000), 0).unwrap(),
            0
        );
        f.send(ch, b, b"").unwrap();
        let mut buf = RecvBuf::new();
        assert_eq!(f.recv_reuse(ch, a, &mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn degenerate_ring_geometry_cannot_connect() {
        let mut f = Fabric::new(Cluster::new(2).unwrap());
        let a = f.add_endpoint(0).unwrap();
        let b = f.add_endpoint(1).unwrap();
        let bad = ChannelConfig {
            slot_bytes: 16, // no room for any payload after the header
            ..ChannelConfig::default()
        };
        assert!(matches!(
            f.connect(a, b, bad),
            Err(MsgError::InvalidConfig(_))
        ));
    }

    #[test]
    fn recv_reuse_keeps_one_region_and_buffer_across_messages() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        let mut buf = RecvBuf::new();
        f.send(ch, a, b"first").unwrap();
        f.recv_reuse(ch, b, &mut buf).unwrap();
        assert_eq!(buf.as_slice(), b"first");
        let base = buf.region_base().expect("region allocated");
        let cap = buf.bytes.capacity();
        for i in 0..20u8 {
            f.send(ch, a, &[i; 5]).unwrap();
            let n = f.recv_reuse(ch, b, &mut buf).unwrap();
            assert_eq!(n, 5);
            assert_eq!(buf.as_slice(), &[i; 5]);
            assert_eq!(buf.region_base(), Some(base), "region is reused");
            assert_eq!(buf.bytes.capacity(), cap, "byte buffer is reused");
        }
        // A message larger than the region grows it once …
        let big = vec![0x5Au8; 20_000];
        f.send(ch, a, &big).unwrap();
        f.recv_reuse(ch, b, &mut buf).unwrap();
        assert_eq!(buf.as_slice(), &big[..]);
        let grown = buf.region_base().unwrap();
        assert_ne!(grown, base);
        // … and small messages keep reusing the grown region.
        f.send(ch, a, b"small again").unwrap();
        f.recv_reuse(ch, b, &mut buf).unwrap();
        assert_eq!(buf.region_base(), Some(grown));
    }

    #[test]
    fn recv_scratch_region_is_reused_not_leaked() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        // Warm up: the first recv allocates the scratch region.
        f.send(ch, a, b"warm").unwrap();
        f.recv(ch, b).unwrap();
        let va_after_warmup = f.endpoint(b).unwrap().next_va;
        for _ in 0..50 {
            f.send(ch, a, b"steady").unwrap();
            f.recv(ch, b).unwrap();
        }
        assert_eq!(
            f.endpoint(b).unwrap().next_va,
            va_after_warmup,
            "steady-state recv must not bump-allocate address space"
        );
    }

    #[test]
    fn steady_state_messaging_needs_no_pins_or_interrupts() {
        let (mut f, a, b, ch) = two_endpoint_fabric();
        // Warm up both directions.
        for _ in 0..3 {
            f.send(ch, a, b"warm").unwrap();
            f.recv(ch, b).unwrap();
        }
        let before = f.cluster().node(0).unwrap().utlb().aggregate_stats();
        for _ in 0..50 {
            f.send(ch, a, b"steady").unwrap();
            f.recv(ch, b).unwrap();
        }
        let after = f.cluster().node(0).unwrap().utlb().aggregate_stats();
        assert_eq!(after.pin_calls, before.pin_calls, "no pin ioctls");
        assert_eq!(after.interrupts, 0, "no interrupts");
        assert_eq!(after.check_misses, before.check_misses);
    }
}

#[cfg(test)]
mod multi_channel_tests {
    use super::*;

    #[test]
    fn channels_between_the_same_endpoints_are_independent() {
        let mut f = Fabric::new(Cluster::new(2).unwrap());
        let a = f.add_endpoint(0).unwrap();
        let b = f.add_endpoint(1).unwrap();
        let ch1 = f.connect(a, b, ChannelConfig::default()).unwrap();
        let ch2 = f.connect(a, b, ChannelConfig::default()).unwrap();
        f.send(ch1, a, b"one").unwrap();
        f.send(ch2, a, b"two").unwrap();
        // Receiving on ch2 first does not disturb ch1's queue.
        assert_eq!(f.recv(ch2, b).unwrap(), b"two");
        assert_eq!(f.recv(ch1, b).unwrap(), b"one");
        assert!(matches!(f.recv(ch1, b), Err(MsgError::WouldBlock)));
    }

    #[test]
    fn one_endpoint_many_peers() {
        let mut f = Fabric::new(Cluster::new(3).unwrap());
        let hub = f.add_endpoint(0).unwrap();
        let p1 = f.add_endpoint(1).unwrap();
        let p2 = f.add_endpoint(2).unwrap();
        let c1 = f.connect(hub, p1, ChannelConfig::default()).unwrap();
        let c2 = f.connect(hub, p2, ChannelConfig::default()).unwrap();
        f.send(c1, hub, b"to p1").unwrap();
        f.send(c2, hub, b"to p2").unwrap();
        f.send(c1, p1, b"from p1").unwrap();
        assert_eq!(f.recv(c1, p1).unwrap(), b"to p1");
        assert_eq!(f.recv(c2, p2).unwrap(), b"to p2");
        assert_eq!(f.recv(c1, hub).unwrap(), b"from p1");
    }
}
