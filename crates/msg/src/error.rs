//! Error type for the messaging layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the messaging fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MsgError {
    /// The endpoint id is unknown.
    UnknownEndpoint(u32),
    /// The channel id is unknown.
    UnknownChannel(u32),
    /// The endpoint is not a member of the channel.
    NotAMember {
        /// Offending endpoint.
        endpoint: u32,
        /// The channel it is not on.
        channel: u32,
    },
    /// A message exceeds what the channel can carry.
    MessageTooLarge {
        /// Requested size.
        len: u64,
        /// The maximum this channel supports.
        max: u64,
    },
    /// `recv` found no message and the channel is idle.
    WouldBlock,
    /// A rendezvous handshake step arrived out of order.
    ProtocolViolation(&'static str),
    /// A [`ChannelConfig`](crate::ChannelConfig) describes a ring that
    /// cannot work (e.g. slots smaller than the slot header).
    InvalidConfig(&'static str),
    /// A request-plane frame failed to decode.
    BadFrame(&'static str),
    /// Underlying VMMC failure.
    Vmmc(utlb_vmmc::VmmcError),
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::UnknownEndpoint(e) => write!(f, "unknown endpoint {e}"),
            MsgError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            MsgError::NotAMember { endpoint, channel } => {
                write!(f, "endpoint {endpoint} is not on channel {channel}")
            }
            MsgError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds channel maximum {max}")
            }
            MsgError::WouldBlock => write!(f, "no message available"),
            MsgError::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
            MsgError::InvalidConfig(what) => write!(f, "invalid channel config: {what}"),
            MsgError::BadFrame(what) => write!(f, "bad frame: {what}"),
            MsgError::Vmmc(e) => write!(f, "vmmc error: {e}"),
        }
    }
}

impl Error for MsgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MsgError::Vmmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<utlb_vmmc::VmmcError> for MsgError {
    fn from(e: utlb_vmmc::VmmcError) -> Self {
        MsgError::Vmmc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wiring() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MsgError>();
        let e = MsgError::from(utlb_vmmc::VmmcError::UnknownNode(9));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("vmmc"));
        assert!(MsgError::WouldBlock.to_string().contains("no message"));
    }
}
