//! Wire vocabulary of the request plane (`utlb-sim::frontend`).
//!
//! Simulated peers talk to a board through fixed-size frames — the
//! RDMA-verbs-shaped subset of operations the UTLB exists to serve:
//! connection setup ([`Frame::Hello`]/[`Frame::Welcome`]), buffer export,
//! remote stores and fetches against exported buffers
//! ([`Frame::Store`]/[`Frame::Fetch`]), completions ([`Frame::Done`]),
//! credit exhaustion ([`Frame::Busy`]), graceful teardown
//! ([`Frame::Bye`]/[`Frame::ByeAck`]), and cross-board re-homing when a
//! board's registration SRAM is exhausted ([`Frame::Redirect`]).
//!
//! Frames are exactly [`FRAME_BYTES`] bytes — tag byte first, fields
//! little-endian — and encode *into a caller-owned buffer*
//! ([`Frame::encode_into`]), so a reactor moving millions of frames
//! allocates nothing per message (the same discipline as the fabric's
//! [`RecvBuf`](crate::RecvBuf) and the lookup path's `OutcomeBuf`). The
//! codec is total and deterministic: every frame round-trips bit-exactly,
//! and every malformed buffer decodes to a typed
//! [`MsgError::BadFrame`].

use crate::{MsgError, Result};

/// Size of every encoded frame, in bytes.
pub const FRAME_BYTES: usize = 32;

/// One request-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Client → board: open a connection and export a receive buffer of
    /// `buffer_bytes` starting at the client's chosen base.
    Hello {
        /// Caller-chosen client identity (echoed for tracing).
        client: u64,
        /// Bytes of buffer the client exports on connect.
        buffer_bytes: u64,
    },
    /// Board → client: connection accepted, registration done.
    Welcome {
        /// The connection id the board assigned.
        conn: u32,
        /// Credits in the client's send window.
        credits: u32,
    },
    /// Client → board: remote store of `nbytes` at virtual address `va`
    /// in the connection's exported buffer.
    Store {
        /// Client-assigned request sequence number.
        seq: u64,
        /// Target virtual address.
        va: u64,
        /// Transfer length in bytes.
        nbytes: u64,
    },
    /// Client → board: remote fetch of `nbytes` from `va`.
    Fetch {
        /// Client-assigned request sequence number.
        seq: u64,
        /// Source virtual address.
        va: u64,
        /// Transfer length in bytes.
        nbytes: u64,
    },
    /// Board → client: request `seq` completed, returning one credit.
    Done {
        /// The completed request.
        seq: u64,
        /// End-to-end simulated latency, arrival to completion.
        latency_ns: u64,
    },
    /// Board → client: request `seq` was rejected — window and stall
    /// queue both full. The credit is not consumed.
    Busy {
        /// The rejected request.
        seq: u64,
    },
    /// Client → board: graceful close; no further requests follow.
    Bye,
    /// Board → client: close acknowledged, buffers unpinned.
    ByeAck,
    /// Board → client: the handshake was refused here, but board `board`
    /// may have capacity — re-run the [`Frame::Hello`] there. This is the
    /// `Busy`-with-redirect of the clustered request plane: a lifetime
    /// SRAM-registration refusal becomes a re-homing hop instead of a dead
    /// connection.
    Redirect {
        /// The client being redirected (echoes the `Hello`'s identity).
        client: u64,
        /// The next candidate board to greet.
        board: u32,
    },
}

/// Frame tags (first byte of every encoding).
mod tag {
    pub const HELLO: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const STORE: u8 = 3;
    pub const FETCH: u8 = 4;
    pub const DONE: u8 = 5;
    pub const BUSY: u8 = 6;
    pub const BYE: u8 = 7;
    pub const BYE_ACK: u8 = 8;
    pub const REDIRECT: u8 = 9;
}

fn put_u64(out: &mut [u8; FRAME_BYTES], at: usize, v: u64) {
    out[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes in frame"))
}

impl Frame {
    /// Encodes into a caller-owned frame buffer (zeroing it first).
    pub fn encode_into(&self, out: &mut [u8; FRAME_BYTES]) {
        out.fill(0);
        match *self {
            Frame::Hello {
                client,
                buffer_bytes,
            } => {
                out[0] = tag::HELLO;
                put_u64(out, 8, client);
                put_u64(out, 16, buffer_bytes);
            }
            Frame::Welcome { conn, credits } => {
                out[0] = tag::WELCOME;
                out[8..12].copy_from_slice(&conn.to_le_bytes());
                out[12..16].copy_from_slice(&credits.to_le_bytes());
            }
            Frame::Store { seq, va, nbytes } => {
                out[0] = tag::STORE;
                put_u64(out, 8, seq);
                put_u64(out, 16, va);
                put_u64(out, 24, nbytes);
            }
            Frame::Fetch { seq, va, nbytes } => {
                out[0] = tag::FETCH;
                put_u64(out, 8, seq);
                put_u64(out, 16, va);
                put_u64(out, 24, nbytes);
            }
            Frame::Done { seq, latency_ns } => {
                out[0] = tag::DONE;
                put_u64(out, 8, seq);
                put_u64(out, 16, latency_ns);
            }
            Frame::Busy { seq } => {
                out[0] = tag::BUSY;
                put_u64(out, 8, seq);
            }
            Frame::Bye => out[0] = tag::BYE,
            Frame::ByeAck => out[0] = tag::BYE_ACK,
            Frame::Redirect { client, board } => {
                out[0] = tag::REDIRECT;
                put_u64(out, 8, client);
                out[16..20].copy_from_slice(&board.to_le_bytes());
            }
        }
    }

    /// Encodes into a fresh frame buffer (convenience; hot paths use
    /// [`encode_into`](Frame::encode_into)).
    pub fn encode(&self) -> [u8; FRAME_BYTES] {
        let mut out = [0u8; FRAME_BYTES];
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::BadFrame`] for a buffer shorter than
    /// [`FRAME_BYTES`] or an unknown tag.
    pub fn decode(buf: &[u8]) -> Result<Frame> {
        if buf.len() < FRAME_BYTES {
            return Err(MsgError::BadFrame("frame shorter than FRAME_BYTES"));
        }
        Ok(match buf[0] {
            tag::HELLO => Frame::Hello {
                client: get_u64(buf, 8),
                buffer_bytes: get_u64(buf, 16),
            },
            tag::WELCOME => Frame::Welcome {
                conn: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
                credits: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
            },
            tag::STORE => Frame::Store {
                seq: get_u64(buf, 8),
                va: get_u64(buf, 16),
                nbytes: get_u64(buf, 24),
            },
            tag::FETCH => Frame::Fetch {
                seq: get_u64(buf, 8),
                va: get_u64(buf, 16),
                nbytes: get_u64(buf, 24),
            },
            tag::DONE => Frame::Done {
                seq: get_u64(buf, 8),
                latency_ns: get_u64(buf, 16),
            },
            tag::BUSY => Frame::Busy {
                seq: get_u64(buf, 8),
            },
            tag::BYE => Frame::Bye,
            tag::BYE_ACK => Frame::ByeAck,
            tag::REDIRECT => Frame::Redirect {
                client: get_u64(buf, 8),
                board: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            },
            _ => return Err(MsgError::BadFrame("unknown frame tag")),
        })
    }

    /// Whether this frame is a client-side request (vs. a board response).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Frame::Hello { .. } | Frame::Store { .. } | Frame::Fetch { .. } | Frame::Bye
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                client: 0xDEAD_BEEF,
                buffer_bytes: 1 << 20,
            },
            Frame::Welcome {
                conn: 42,
                credits: 8,
            },
            Frame::Store {
                seq: 7,
                va: 0x4000_1000,
                nbytes: 8192,
            },
            Frame::Fetch {
                seq: u64::MAX,
                va: 0,
                nbytes: 1,
            },
            Frame::Done {
                seq: 7,
                latency_ns: 56_000,
            },
            Frame::Busy { seq: 9 },
            Frame::Bye,
            Frame::ByeAck,
            Frame::Redirect {
                client: 0xDEAD_BEEF,
                board: 3,
            },
        ]
    }

    #[test]
    fn every_frame_roundtrips_bit_exactly() {
        for f in all_frames() {
            let enc = f.encode();
            assert_eq!(Frame::decode(&enc).unwrap(), f, "{f:?}");
            // encode_into agrees with encode and zeroes stale bytes.
            let mut buf = [0xFFu8; FRAME_BYTES];
            f.encode_into(&mut buf);
            assert_eq!(buf, enc, "{f:?}");
        }
    }

    #[test]
    fn request_response_split() {
        assert!(Frame::Bye.is_request());
        assert!(Frame::Store {
            seq: 1,
            va: 0,
            nbytes: 1
        }
        .is_request());
        assert!(!Frame::ByeAck.is_request());
        assert!(!Frame::Busy { seq: 1 }.is_request());
        assert!(!Frame::Redirect {
            client: 1,
            board: 0
        }
        .is_request());
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(matches!(
            Frame::decode(&[0u8; 8]),
            Err(MsgError::BadFrame(_))
        ));
        let mut unknown = [0u8; FRAME_BYTES];
        unknown[0] = 0xEE;
        assert!(matches!(
            Frame::decode(&unknown),
            Err(MsgError::BadFrame(_))
        ));
    }
}
