//! Slot layout of the eager-message ring.
//!
//! Each slot is `[seq: u64][len: u64][payload …]`. The sender writes the
//! payload first and the header second; because the data-link channel is
//! reliable and in-order, a slot whose `seq` field matches the receiver's
//! expectation is guaranteed complete. `seq` starts at 1 and increases
//! monotonically, so a recycled slot never looks valid early: the receiver
//! expects exactly `last_seq + 1`.

/// Bytes of slot header preceding the payload.
pub const HEADER_BYTES: u64 = 16;

/// Encodes a slot header.
pub fn encode_header(seq: u64, len: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..8].copy_from_slice(&seq.to_le_bytes());
    h[8..].copy_from_slice(&len.to_le_bytes());
    h
}

/// Decodes a slot header into `(seq, len)`.
pub fn decode_header(bytes: &[u8]) -> (u64, u64) {
    let seq = u64::from_le_bytes(bytes[..8].try_into().expect("8 header bytes"));
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes"));
    (seq, len)
}

/// Byte offset of slot `seq` within a ring of `slots` slots of `slot_bytes`.
pub fn slot_offset(seq: u64, slots: u64, slot_bytes: u64) -> u64 {
    debug_assert!(seq >= 1, "sequence numbers start at 1");
    ((seq - 1) % slots) * slot_bytes
}

/// Layout of the credit page the receiver exports.
pub mod credit {
    /// Offset of the consumed counter (eager flow control).
    pub const CONSUMED: u64 = 0;
    /// Offset of the clear-to-send grant sequence (rendezvous).
    pub const CTS_SEQ: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = encode_header(42, 1000);
        assert_eq!(decode_header(&h), (42, 1000));
        let zero = encode_header(0, 0);
        assert_eq!(decode_header(&zero), (0, 0));
    }

    #[test]
    fn slot_offsets_wrap() {
        assert_eq!(slot_offset(1, 4, 256), 0);
        assert_eq!(slot_offset(4, 4, 256), 768);
        assert_eq!(slot_offset(5, 4, 256), 0, "wraps to the first slot");
        assert_eq!(slot_offset(6, 4, 256), 256);
    }

    #[test]
    fn credit_offsets_are_disjoint() {
        assert_ne!(credit::CONSUMED, credit::CTS_SEQ);
    }
}
