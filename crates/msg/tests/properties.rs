//! Property-based tests of the messaging fabric against a queue model.

use proptest::prelude::*;
use std::collections::VecDeque;
use utlb_msg::{ChannelConfig, Fabric, MsgError};
use utlb_vmmc::Cluster;

#[derive(Debug, Clone)]
enum Op {
    /// Send a message of `len` bytes filled with `fill`, from side 0 or 1.
    Send { from_a: bool, len: u16, fill: u8 },
    /// Receive the next message at side 0 or 1.
    Recv { at_a: bool },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), 1u16..3000, any::<u8>()).prop_map(|(from_a, len, fill)| Op::Send {
            from_a,
            len,
            fill
        }),
        any::<bool>().prop_map(|at_a| Op::Recv { at_a }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The channel behaves as two independent FIFO queues (one per
    /// direction) under arbitrary interleavings of sends and receives,
    /// across both the eager and rendezvous paths.
    #[test]
    fn channel_is_two_fifo_queues(script in proptest::collection::vec(ops(), 1..60)) {
        let mut fabric = Fabric::new(Cluster::new(2).unwrap());
        let a = fabric.add_endpoint(0).unwrap();
        let b = fabric.add_endpoint(1).unwrap();
        // Small ring so WouldBlock paths get exercised too.
        let cfg = ChannelConfig {
            slots: 4,
            slot_bytes: 1024,
            bulk_bytes: 8 * 1024,
        };
        let ch = fabric.connect(a, b, cfg).unwrap();

        let mut model_ab: VecDeque<Vec<u8>> = VecDeque::new();
        let mut model_ba: VecDeque<Vec<u8>> = VecDeque::new();
        // One rendezvous may be pending per direction.
        let mut large_pending = [false, false];

        for op in script {
            match op {
                Op::Send { from_a, len, fill } => {
                    let payload = vec![fill; len as usize];
                    let (from, model, pend_ix) = if from_a {
                        (a, &mut model_ab, 0usize)
                    } else {
                        (b, &mut model_ba, 1usize)
                    };
                    let is_large = u64::from(len) > cfg.max_eager();
                    match fabric.send(ch, from, &payload) {
                        Ok(()) => {
                            prop_assert!(
                                !large_pending[pend_ix],
                                "second rendezvous accepted while one pending"
                            );
                            model.push_back(payload);
                            if is_large {
                                large_pending[pend_ix] = true;
                            }
                        }
                        Err(MsgError::WouldBlock) => {
                            prop_assert!(
                                model.len() >= cfg.slots as usize,
                                "WouldBlock with only {} queued",
                                model.len()
                            );
                        }
                        Err(MsgError::ProtocolViolation(_)) => {
                            prop_assert!(large_pending[pend_ix]);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("send: {e}"))),
                    }
                }
                Op::Recv { at_a } => {
                    let (at, model, pend_ix) = if at_a {
                        (a, &mut model_ba, 1usize)
                    } else {
                        (b, &mut model_ab, 0usize)
                    };
                    match fabric.recv(ch, at) {
                        Ok(msg) => {
                            let expect = model.pop_front()
                                .ok_or_else(|| TestCaseError::fail("recv invented a message"))?;
                            let was_large = expect.len() as u64 > cfg.max_eager();
                            prop_assert_eq!(msg, expect);
                            // Only receiving the rendezvous message itself
                            // clears the pending flag; eager messages queued
                            // ahead of the RTS leave it set.
                            if was_large {
                                large_pending[pend_ix] = false;
                            }
                        }
                        Err(MsgError::WouldBlock) => {
                            prop_assert!(model.is_empty(), "message lost");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("recv: {e}"))),
                    }
                }
            }
        }

        // Drain everything still queued; FIFO order must hold to the end.
        while let Some(expect) = model_ab.pop_front() {
            prop_assert_eq!(fabric.recv(ch, b).unwrap(), expect);
        }
        while let Some(expect) = model_ba.pop_front() {
            prop_assert_eq!(fabric.recv(ch, a).unwrap(), expect);
        }
        // And the fabric never interrupted a host.
        for i in 0..2 {
            prop_assert_eq!(fabric.cluster().node(i).unwrap().board().intr.raised(), 0);
        }
    }
}

/// Messaging over a lossy wire: the data-link retransmission layer makes
/// the fabric's FIFO guarantee hold even when a bounded number of data
/// packets are dropped in flight.
#[test]
fn messaging_survives_bounded_packet_loss() {
    use utlb_nic::packet::{Packet, PacketKind};

    let mut cluster = Cluster::new(2).unwrap();
    // Drop the 2nd, 5th and 9th data packets, once each.
    let mut k = 0u64;
    cluster.inject_fault(Some(Box::new(move |p: &Packet| {
        if p.kind != PacketKind::Data {
            return false;
        }
        k += 1;
        matches!(k, 2 | 5 | 9)
    })));
    let mut fabric = Fabric::new(cluster);
    let a = fabric.add_endpoint(0).unwrap();
    let b = fabric.add_endpoint(1).unwrap();
    let ch = fabric.connect(a, b, ChannelConfig::default()).unwrap();

    for i in 0..12u32 {
        fabric.send(ch, a, &i.to_le_bytes()).unwrap();
        let got = fabric.recv(ch, b).unwrap();
        assert_eq!(got, i.to_le_bytes(), "message {i}");
    }
    // A rendezvous transfer across the same lossy wire.
    let big = vec![0x42u8; 12_000];
    fabric.send(ch, a, &big).unwrap();
    assert_eq!(fabric.recv(ch, b).unwrap(), big);
}
