//! The flat-array Shared UTLB-Cache against a nested-`Vec` reference model.
//!
//! The cache's storage was reworked from `Vec<Vec<Option<Line>>>` (one inner
//! vec per set) to one contiguous line array with a packed validity bitmap.
//! This test keeps the *old* representation alive as an executable spec and
//! drives both through random geometries and operation sequences, asserting
//! every observable — hit/miss results, eviction identities, invalidation
//! results, probe/hit/miss/eviction counters, occupancy — stays identical.

use proptest::prelude::*;
use utlb_core::{Associativity, CacheConfig, CacheStats, Evicted, SharedUtlbCache};
use utlb_mem::{PhysAddr, ProcessId, VirtPage};

#[derive(Clone, Copy)]
struct RefLine {
    pid: ProcessId,
    vpn: u64,
    phys: PhysAddr,
    last_use: u64,
}

/// The pre-rework cache, verbatim: a vec of sets, each a vec of optional
/// lines, indexed by modulo (no power-of-two masking).
struct RefCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Option<RefLine>>>,
    num_sets: usize,
    ways: usize,
    tick: u64,
    stats: CacheStats,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let ways = cfg.associativity.ways();
        let num_sets = cfg.entries / ways;
        RefCache {
            cfg,
            sets: vec![vec![None; ways]; num_sets],
            num_sets,
            ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn offset(&self, pid: ProcessId) -> u64 {
        if self.cfg.offsetting {
            let frac = u64::from(pid.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((u128::from(frac) * self.num_sets as u128) >> 64) as u64
        } else {
            0
        }
    }

    fn set_index(&self, pid: ProcessId, page: VirtPage) -> usize {
        let hashed = page.number().wrapping_add(self.offset(pid));
        (hashed % self.num_sets as u64) as usize
    }

    fn lookup(&mut self, pid: ProcessId, page: VirtPage) -> Option<PhysAddr> {
        self.tick += 1;
        let six = self.set_index(pid, page);
        let tick = self.tick;
        let vpn = page.number();
        for (way, slot) in self.sets[six].iter_mut().enumerate() {
            if let Some(line) = slot {
                if line.pid == pid && line.vpn == vpn {
                    line.last_use = tick;
                    self.stats.probes += way as u64 + 1;
                    self.stats.hits += 1;
                    return Some(line.phys);
                }
            }
        }
        self.stats.probes += self.ways as u64;
        self.stats.misses += 1;
        None
    }

    fn insert(&mut self, pid: ProcessId, page: VirtPage, phys: PhysAddr) -> Option<Evicted> {
        self.tick += 1;
        let six = self.set_index(pid, page);
        let tick = self.tick;
        let vpn = page.number();
        for line in self.sets[six].iter_mut().flatten() {
            if line.pid == pid && line.vpn == vpn {
                line.phys = phys;
                line.last_use = tick;
                return None;
            }
        }
        let new_line = RefLine {
            pid,
            vpn,
            phys,
            last_use: tick,
        };
        if let Some(slot) = self.sets[six].iter_mut().find(|s| s.is_none()) {
            *slot = Some(new_line);
            return None;
        }
        let victim_slot = self.sets[six]
            .iter_mut()
            .min_by_key(|s| s.as_ref().expect("set is full").last_use)
            .expect("set has at least one way");
        let victim = victim_slot.replace(new_line).expect("set is full");
        self.stats.evictions += 1;
        Some(Evicted {
            pid: victim.pid,
            page: VirtPage::new(victim.vpn),
        })
    }

    fn invalidate(&mut self, pid: ProcessId, page: VirtPage) -> bool {
        let six = self.set_index(pid, page);
        let vpn = page.number();
        for slot in self.sets[six].iter_mut() {
            if let Some(line) = slot {
                if line.pid == pid && line.vpn == vpn {
                    *slot = None;
                    return true;
                }
            }
        }
        false
    }

    fn invalidate_process(&mut self, pid: ProcessId) -> usize {
        let mut dropped = 0;
        for set in self.sets.iter_mut() {
            for slot in set.iter_mut() {
                if slot.map(|l| l.pid == pid).unwrap_or(false) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        dropped
    }

    fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.is_some()).count())
            .sum()
    }
}

fn any_assoc() -> impl Strategy<Value = Associativity> {
    prop_oneof![
        Just(Associativity::Direct),
        Just(Associativity::TwoWay),
        Just(Associativity::FourWay),
    ]
}

/// Set counts covering both index paths: powers of two (mask) and not
/// (modulo fallback).
const SET_COUNTS: [usize; 6] = [1, 2, 3, 7, 8, 16];

proptest! {
    /// Every observable of the flat cache matches the nested-`Vec` model
    /// over random geometries and hit/miss/evict/invalidate sequences.
    #[test]
    fn flat_cache_matches_nested_vec_reference(
        sets_ix in 0usize..6,
        assoc in any_assoc(),
        offsetting in any::<bool>(),
        ops in proptest::collection::vec((0u8..8, 1u32..4, 0u64..96), 1..250),
    ) {
        let cfg = CacheConfig {
            entries: SET_COUNTS[sets_ix] * assoc.ways(),
            associativity: assoc,
            offsetting,
        };
        let mut flat = SharedUtlbCache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (op, pid_raw, vpn) in ops {
            let pid = ProcessId::new(pid_raw);
            let page = VirtPage::new(vpn);
            let phys = PhysAddr::new((u64::from(pid_raw) << 32) | (vpn << 12));
            match op {
                // The common drive pattern: look up, fill on miss.
                0..=3 => {
                    let got = flat.lookup(pid, page);
                    prop_assert_eq!(got, reference.lookup(pid, page));
                    if got.is_none() {
                        prop_assert_eq!(
                            flat.insert(pid, page, phys),
                            reference.insert(pid, page, phys)
                        );
                    }
                }
                4 | 5 => {
                    prop_assert_eq!(
                        flat.insert(pid, page, phys),
                        reference.insert(pid, page, phys)
                    );
                }
                6 => {
                    prop_assert_eq!(
                        flat.invalidate(pid, page),
                        reference.invalidate(pid, page)
                    );
                }
                _ => {
                    prop_assert_eq!(
                        flat.invalidate_process(pid),
                        reference.invalidate_process(pid)
                    );
                }
            }
            prop_assert_eq!(flat.stats(), reference.stats);
            prop_assert_eq!(flat.occupancy(), reference.occupancy());
            prop_assert_eq!(flat.peek(pid, page), {
                let six = reference.set_index(pid, page);
                reference.sets[six]
                    .iter()
                    .flatten()
                    .find(|l| l.pid == pid && l.vpn == page.number())
                    .map(|l| l.phys)
            });
        }
    }
}
