//! Property-based tests of the UTLB core invariants.

use proptest::prelude::*;
use utlb_core::{
    Associativity, CacheConfig, PinBitVector, PinnedSet, Policy, SharedUtlbCache, UtlbConfig,
    UtlbEngine,
};
use utlb_mem::{Host, PhysAddr, ProcessId, VirtPage};
use utlb_nic::Board;

fn any_assoc() -> impl Strategy<Value = Associativity> {
    prop_oneof![
        Just(Associativity::Direct),
        Just(Associativity::TwoWay),
        Just(Associativity::FourWay),
    ]
}

proptest! {
    /// The Shared UTLB-Cache behaves like a map with bounded residency:
    /// a lookup after insert either returns exactly what was inserted or
    /// misses (evicted); it never returns a wrong translation.
    #[test]
    fn cache_never_returns_wrong_translation(
        entries_log in 2u32..8,
        assoc in any_assoc(),
        offsetting in any::<bool>(),
        accesses in proptest::collection::vec((1u32..4, 0u64..512), 1..300),
    ) {
        let entries = (1usize << entries_log) * assoc.ways();
        let mut cache = SharedUtlbCache::new(CacheConfig { entries, associativity: assoc, offsetting });
        let mut model = std::collections::HashMap::new();
        for (pid_raw, vpn) in accesses {
            let pid = ProcessId::new(pid_raw);
            let page = VirtPage::new(vpn);
            let truth = PhysAddr::new((u64::from(pid_raw) << 32) | (vpn << 12));
            match cache.lookup(pid, page) {
                Some(got) => prop_assert_eq!(got, truth, "stale or foreign translation"),
                None => {
                    cache.insert(pid, page, truth);
                    model.insert((pid_raw, vpn), truth);
                }
            }
            prop_assert!(cache.occupancy() <= entries);
        }
    }

    /// Invalidation removes exactly the named line.
    #[test]
    fn cache_invalidate_is_precise(vpns in proptest::collection::vec(0u64..64, 2..32)) {
        let mut cache = SharedUtlbCache::new(CacheConfig::direct(256));
        let pid = ProcessId::new(1);
        for &v in &vpns {
            cache.insert(pid, VirtPage::new(v), PhysAddr::new(v << 12));
        }
        let victim = vpns[0];
        cache.invalidate(pid, VirtPage::new(victim));
        prop_assert!(cache.peek(pid, VirtPage::new(victim)).is_none());
        for &v in &vpns[1..] {
            if v != victim {
                prop_assert_eq!(cache.peek(pid, VirtPage::new(v)), Some(PhysAddr::new(v << 12)));
            }
        }
    }

    /// The pin bit vector agrees with a reference HashSet under arbitrary
    /// set/clear/check interleavings.
    #[test]
    fn bitvec_matches_reference_set(
        ops in proptest::collection::vec((0u64..100_000, any::<bool>()), 1..300),
    ) {
        let mut v = PinBitVector::new();
        let mut model = std::collections::HashSet::new();
        for (vpn, set) in ops {
            let page = VirtPage::new(vpn);
            if set {
                prop_assert_eq!(v.set(page), model.insert(vpn));
            } else {
                prop_assert_eq!(v.clear(page), model.remove(&vpn));
            }
            prop_assert_eq!(v.is_set(page), model.contains(&vpn));
            prop_assert_eq!(v.count(), model.len() as u64);
        }
    }

    /// check_run finds exactly the first unpinned page of a run.
    #[test]
    fn check_run_agrees_with_scan(
        pinned in proptest::collection::hash_set(0u64..64, 0..40),
        start in 0u64..32,
        count in 1u64..32,
    ) {
        let mut v = PinBitVector::new();
        for &p in &pinned {
            v.set(VirtPage::new(p));
        }
        let expect = (start..start + count).find(|p| !pinned.contains(p));
        let got = v.check_run(VirtPage::new(start), count).first_unpinned.map(|p| p.number());
        prop_assert_eq!(got, expect);
    }

    /// Every policy selects only evictable pages, never more than asked,
    /// and never a held page.
    #[test]
    fn policies_respect_holds(
        policy_ix in 0usize..5,
        pages in proptest::collection::hash_set(0u64..64, 1..32),
        held in proptest::collection::hash_set(0u64..64, 0..16),
        want in 1usize..10,
    ) {
        let policy = Policy::ALL[policy_ix];
        let mut set = PinnedSet::new(policy, 99);
        for &p in &pages {
            set.insert(VirtPage::new(p));
        }
        for &h in &held {
            set.hold(VirtPage::new(h)); // no-op for untracked pages
        }
        let victims = set.select_victims(want);
        prop_assert!(victims.len() <= want);
        let evictable = pages.iter().filter(|p| !held.contains(p)).count();
        prop_assert_eq!(victims.len(), want.min(evictable));
        for v in &victims {
            prop_assert!(pages.contains(&v.number()));
            prop_assert!(!held.contains(&v.number()), "held page selected");
        }
    }

    /// Engine-level invariant: under any lookup sequence and memory limit,
    /// (a) translations are always correct, (b) the pinned count never
    /// exceeds the limit, (c) pins - unpins equals live pinned pages.
    #[test]
    fn engine_accounting_invariants(
        lookups in proptest::collection::vec(0u64..64, 1..150),
        limit in 2u64..16,
        prepin in prop_oneof![Just(1u64), Just(4), Just(16)],
    ) {
        let mut host = Host::new(1 << 12);
        let mut board = Board::new();
        let mut engine = UtlbEngine::new(UtlbConfig {
            cache: CacheConfig::direct(64),
            mem_limit_pages: Some(limit),
            prepin,
            ..UtlbConfig::default()
        });
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        for vpn in lookups {
            let report = engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(vpn), 1)
                .unwrap();
            // Correctness: the returned frame is the process' real mapping.
            let expected = host
                .process(pid).unwrap()
                .space()
                .translate(VirtPage::new(vpn))
                .expect("pinned pages are mapped");
            prop_assert_eq!(report.pages[0].phys, expected.base());
            let pinned = host.driver().pins().pinned_pages(pid);
            prop_assert!(pinned <= limit, "pinned {pinned} > limit {limit}");
            let s = engine.stats(pid).unwrap();
            prop_assert_eq!(s.pins - s.unpins, pinned);
        }
    }
}

proptest! {
    /// Translation *results* are invariant under every NIC-side performance
    /// knob: cache size, associativity, offsetting, and prefetch change
    /// miss counts and costs — never the physical address returned.
    /// (Prepinning is excluded: batching pins legitimately changes the
    /// *order* frames are allocated in, though each translation still
    /// matches the OS mapping — covered by `engine_accounting_invariants`.)
    #[test]
    fn performance_knobs_never_change_translations(
        lookups in proptest::collection::vec(0u64..96, 1..120),
        entries_log in 2u32..8,
        assoc in any_assoc(),
        offsetting in any::<bool>(),
        prefetch in prop_oneof![Just(1u64), Just(4), Just(16)],
    ) {
        let run = |cfg: UtlbConfig, lookups: &[u64]| -> Vec<u64> {
            let mut host = Host::new(1 << 12);
            let mut board = Board::new();
            let mut engine = UtlbEngine::new(cfg);
            let pid = host.spawn_process();
            engine.register_process(&mut host, &mut board, pid).unwrap();
            lookups
                .iter()
                .map(|&v| {
                    engine
                        .lookup(&mut host, &mut board, pid, VirtPage::new(v), 1)
                        .unwrap()
                        .pages[0]
                        .phys
                        .raw()
                })
                .collect()
        };
        let baseline = run(
            UtlbConfig {
                cache: CacheConfig::direct(64),
                ..UtlbConfig::default()
            },
            &lookups,
        );
        let entries = (1usize << entries_log) * assoc.ways();
        let tuned = run(
            UtlbConfig {
                cache: CacheConfig {
                    entries,
                    associativity: assoc,
                    offsetting,
                },
                prefetch,
                ..UtlbConfig::default()
            },
            &lookups,
        );
        // Frames allocate deterministically, so equal configs aside, the
        // translated physical addresses must be byte-identical.
        prop_assert_eq!(baseline, tuned);
    }

    /// HierTable behaves as a vpn→phys map with a garbage default, under
    /// arbitrary install/invalidate/swap interleavings.
    #[test]
    fn hier_table_matches_reference_map(
        ops in proptest::collection::vec((0u64..128, 0u8..4), 1..150),
    ) {
        use utlb_core::HierTable;
        use utlb_mem::{PhysAddr, PhysicalMemory, SwapDevice};
        use utlb_nic::Sram;

        let garbage = PhysAddr::new(0x00BA_D000);
        let mut phys = PhysicalMemory::new(512);
        let mut sram = Sram::new(1 << 20);
        let mut swap = SwapDevice::new();
        let mut table = HierTable::new(ProcessId::new(1), &mut sram, garbage).unwrap();
        let mut model: std::collections::HashMap<u64, u64> = Default::default();

        for (vpn, op) in ops {
            let page = VirtPage::new(vpn);
            match op {
                0 => {
                    // The driver faults a swapped table in before
                    // installing (the engine's swap-in-then-install order).
                    table.swap_in(page, &mut phys, &mut sram, &mut swap).unwrap();
                    let pa = PhysAddr::new((vpn + 1) << 12);
                    table.install(page, pa, &mut phys, &mut sram).unwrap();
                    model.insert(vpn, pa.raw());
                }
                1 => {
                    // Same driver discipline as install: resident first.
                    table.swap_in(page, &mut phys, &mut sram, &mut swap).unwrap();
                    table.invalidate(page, &mut phys, &sram).unwrap();
                    model.remove(&vpn);
                }
                2 => {
                    table.swap_out(page, &mut phys, &mut sram, &mut swap).unwrap();
                }
                _ => {
                    table.swap_in(page, &mut phys, &mut sram, &mut swap).unwrap();
                }
            }
            // Reading any *resident* entry agrees with the model; swapped
            // leaves simply aren't readable until swapped in.
            if table.entry_addr(page, &sram).unwrap().is_some() {
                let got = table.read_entry(page, &phys, &sram).unwrap().raw();
                let expect = model.get(&vpn).copied().unwrap_or(garbage.raw());
                prop_assert_eq!(got, expect, "vpn {}", vpn);
            }
            prop_assert_eq!(table.installed(), model.len() as u64);
        }
    }
}
