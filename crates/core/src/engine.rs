//! The Hierarchical-UTLB engine — the mechanism the paper evaluates.
//!
//! Ties the pieces together exactly as Figure 4 lays them out:
//!
//! * host side: the pin-status [`PinBitVector`], the pin manager with the
//!   application-chosen replacement [`Policy`] and the optional
//!   pinned-memory limit, sequential pre-pinning (§6.5), and the device
//!   driver `ioctl` that pins pages and installs translations,
//! * NIC side: the per-process [`HierTable`] directory in SRAM, the
//!   [`SharedUtlbCache`], and prefetching of consecutive translation entries
//!   on a miss (§6.4).
//!
//! A translation lookup never enters the kernel unless pages must actually
//! be pinned, and never interrupts the host — the two properties the whole
//! design exists to provide.

use crate::obs::{Event, EvictReason, ProbeSlot};
use crate::pincore::{charge_us, probe_stats_accessors, PinCore};
use crate::{
    CacheConfig, CostModel, HierTable, OutcomeBuf, PinBitVector, Policy, Result, SharedUtlbCache,
    UtlbError,
};
use std::collections::HashMap;
use utlb_mem::{Host, PhysAddr, ProcessId, VirtAddr, VirtPage};
use utlb_nic::{Board, Nanos};

/// Configuration of a [`UtlbEngine`].
///
/// Prefer [`UtlbConfig::builder`], which validates the widths up front and
/// returns a [`Result`] instead of letting a zero `prefetch`/`prepin` reach
/// the engine. Direct struct-literal construction still works for field
/// updates off [`UtlbConfig::default`], but skips validation until the
/// engine is built.
#[derive(Debug, Clone)]
pub struct UtlbConfig {
    /// Shared UTLB-Cache geometry.
    pub cache: CacheConfig,
    /// Translation entries fetched per NIC miss (1 = no prefetch, §6.4).
    pub prefetch: u64,
    /// Pages pinned per check miss (1 = no prepinning, §6.5).
    pub prepin: u64,
    /// Replacement policy for pinned pages (§3.4).
    pub policy: Policy,
    /// Per-process pinned-memory limit in pages (`None` = unlimited, the
    /// "infinite host memory" configuration of Table 4).
    pub mem_limit_pages: Option<u64>,
    /// Cost model charged to the board clock.
    pub cost: CostModel,
    /// Seed for the RANDOM policy.
    pub seed: u64,
}

impl Default for UtlbConfig {
    fn default() -> Self {
        UtlbConfig {
            cache: CacheConfig::default(),
            prefetch: 1,
            prepin: 1,
            policy: Policy::Lru,
            mem_limit_pages: None,
            cost: CostModel::default(),
            seed: 0xDEFA,
        }
    }
}

impl UtlbConfig {
    /// A builder starting from [`UtlbConfig::default`] that validates on
    /// [`build`](UtlbConfigBuilder::build).
    pub fn builder() -> UtlbConfigBuilder {
        UtlbConfigBuilder {
            cfg: UtlbConfig::default(),
        }
    }

    /// Checks the invariants the engine relies on.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::InvalidConfig`] if `prefetch` or `prepin` is
    /// zero, the cache has no entries, or the entry count is not a multiple
    /// of the associativity's way count.
    pub fn validate(&self) -> Result<()> {
        if self.prefetch < 1 {
            return Err(UtlbError::InvalidConfig(
                "prefetch width must be at least 1".into(),
            ));
        }
        if self.prepin < 1 {
            return Err(UtlbError::InvalidConfig(
                "prepin width must be at least 1".into(),
            ));
        }
        if self.cache.entries == 0 {
            return Err(UtlbError::InvalidConfig(
                "cache must have at least one entry".into(),
            ));
        }
        let ways = self.cache.associativity.ways();
        if !self.cache.entries.is_multiple_of(ways) {
            return Err(UtlbError::InvalidConfig(format!(
                "cache entries {} not divisible by {} ways",
                self.cache.entries, ways
            )));
        }
        Ok(())
    }
}

/// Builder for [`UtlbConfig`] — the validating construction path.
///
/// ```
/// use utlb_core::{CacheConfig, Policy, UtlbConfig};
///
/// let cfg = UtlbConfig::builder()
///     .cache(CacheConfig::direct(1024))
///     .prefetch(8)
///     .prepin(8)
///     .policy(Policy::Lru)
///     .build()
///     .expect("widths are nonzero");
/// assert_eq!(cfg.prefetch, 8);
/// assert!(UtlbConfig::builder().prefetch(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct UtlbConfigBuilder {
    cfg: UtlbConfig,
}

impl UtlbConfigBuilder {
    /// Sets the Shared UTLB-Cache geometry.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = cache;
        self
    }

    /// Sets the entries fetched per NIC miss (§6.4).
    pub fn prefetch(mut self, prefetch: u64) -> Self {
        self.cfg.prefetch = prefetch;
        self
    }

    /// Sets the pages pinned per check miss (§6.5).
    pub fn prepin(mut self, prepin: u64) -> Self {
        self.cfg.prepin = prepin;
        self
    }

    /// Sets the pinned-page replacement policy (§3.4).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the per-process pinned-memory limit.
    pub fn mem_limit_pages(mut self, limit: Option<u64>) -> Self {
        self.cfg.mem_limit_pages = limit;
        self
    }

    /// Sets the cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Sets the RANDOM-policy seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::InvalidConfig`] as described on
    /// [`UtlbConfig::validate`].
    pub fn build(self) -> Result<UtlbConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Outcome of translating one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageOutcome {
    /// The translated page.
    pub page: VirtPage,
    /// Its physical address, ready for DMA.
    pub phys: PhysAddr,
    /// Whether the user-level check missed (pages had to be pinned).
    pub check_miss: bool,
    /// Whether the NIC translation cache missed.
    pub ni_miss: bool,
}

/// Result of a [`UtlbEngine::lookup`] over a page run.
#[derive(Debug, Clone)]
pub struct LookupReport {
    /// Per-page outcomes, in run order.
    pub pages: Vec<PageOutcome>,
    /// Simulated time the run consumed.
    pub elapsed: Nanos,
}

#[derive(Debug)]
struct ProcState {
    bitvec: PinBitVector,
    hier: HierTable,
    core: PinCore,
}

/// The Hierarchical-UTLB translation engine.
#[derive(Debug)]
pub struct UtlbEngine {
    cfg: UtlbConfig,
    cache: SharedUtlbCache,
    procs: HashMap<ProcessId, ProcState>,
    probe: ProbeSlot,
}

impl UtlbEngine {
    /// Creates an engine with the given configuration.
    ///
    /// Prefer building the configuration via [`UtlbConfig::builder`], which
    /// surfaces invalid widths as a [`Result`] before this point.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`UtlbConfig::validate`].
    pub fn new(cfg: UtlbConfig) -> Self {
        Self::try_new(cfg).expect("invalid UtlbConfig")
    }

    /// Creates an engine, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::InvalidConfig`] as described on
    /// [`UtlbConfig::validate`].
    pub fn try_new(cfg: UtlbConfig) -> Result<Self> {
        cfg.validate()?;
        let cache = SharedUtlbCache::new(cfg.cache);
        Ok(UtlbEngine {
            cfg,
            cache,
            procs: HashMap::new(),
            probe: ProbeSlot::detached(),
        })
    }

    probe_stats_accessors!();

    /// The engine configuration.
    pub fn config(&self) -> &UtlbConfig {
        &self.cfg
    }

    /// The shared NIC translation cache.
    pub fn cache(&self) -> &SharedUtlbCache {
        &self.cache
    }

    /// Registers `pid`: allocates its directory in NIC SRAM and applies the
    /// pinned-memory limit to the host driver.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::AlreadyRegistered`] on a duplicate, and
    /// propagates SRAM exhaustion.
    pub fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        if self.procs.contains_key(&pid) {
            return Err(UtlbError::AlreadyRegistered(pid));
        }
        let garbage = host.driver().garbage_addr();
        let hier = HierTable::new(pid, &mut board.sram, garbage)?;
        host.driver_mut()
            .pins_mut()
            .set_limit(pid, self.cfg.mem_limit_pages);
        board.cmdq.register(pid);
        self.procs.insert(
            pid,
            ProcState {
                bitvec: PinBitVector::new(),
                hier,
                core: PinCore::new(self.cfg.policy, self.cfg.seed, pid),
            },
        );
        Ok(())
    }

    /// Removes `pid`: unpins everything it had pinned and drops its cache
    /// lines and tables.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn unregister_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        let mut state = self
            .procs
            .remove(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        self.cache.invalidate_process(pid);
        state.hier.release(host.physical_mut());
        host.driver_mut().pins_mut().release_process(pid);
        Ok(())
    }

    /// Marks the pages of a buffer as held by an outstanding send so the
    /// replacement policy cannot unpin them mid-transfer (§3.1).
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn hold_pages(&mut self, pid: ProcessId, start: VirtPage, npages: u64) -> Result<()> {
        let state = self
            .procs
            .get_mut(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        for p in start.range(npages) {
            state.core.pinned.hold(p);
        }
        Ok(())
    }

    /// Releases an outstanding-send hold taken by [`UtlbEngine::hold_pages`].
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn release_pages(&mut self, pid: ProcessId, start: VirtPage, npages: u64) -> Result<()> {
        let state = self
            .procs
            .get_mut(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        for p in start.range(npages) {
            state.core.pinned.release(p);
        }
        Ok(())
    }

    /// Translates the buffer `[va, va + nbytes)` — the `send message`
    /// pseudo-code of Figure 2: check the user-level structure, pin missing
    /// pages through the driver, then resolve each page on the NIC.
    ///
    /// # Errors
    ///
    /// Propagates pinning, memory, and protocol errors.
    pub fn lookup_buffer(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        va: VirtAddr,
        nbytes: u64,
    ) -> Result<LookupReport> {
        let npages = va.span_pages(nbytes);
        self.lookup(host, board, pid, va.page(), npages)
    }

    /// NIC-side-only resolution of one page, as if a (buggy or malicious)
    /// user library submitted a request *without* performing the user-level
    /// check and pinning first.
    ///
    /// This is §3.1's correctness alternative: "Otherwise, the network
    /// interface must be able to check for possible unpinned pages, and
    /// interrupt the host to pin pages before executing the requests."
    /// When the translation entry still holds the garbage address, the NIC
    /// interrupts the host, which pins the page and installs the entry;
    /// the lookup then proceeds. The cost — one interrupt plus an in-kernel
    /// pin — is exactly what the user-level check exists to avoid.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors.
    pub fn nic_resolve(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<PhysAddr> {
        // Disjoint borrows: the process state, the shared cache, and the
        // probe are all live across the miss path.
        let UtlbEngine {
            cfg,
            cache,
            procs,
            probe,
        } = self;
        let cost = &cfg.cost;
        let t0 = board.clock.now();
        let state = procs
            .get_mut(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        state.core.stats.lookups += 1;
        charge_us(board, cost.ni_check_us);
        if let Some(phys) = cache.lookup(pid, page) {
            let ns = (board.clock.now() - t0).as_nanos();
            probe.emit(pid, Event::Lookup { ns });
            return Ok(phys);
        }
        // Miss path: check the table; a garbage entry means the page was
        // never pinned — fall back to interrupting the host.
        charge_us(board, cost.directory_ref_us);
        let needs_pin =
            state.hier.read_entry(page, host.physical(), &board.sram)? == state.hier.garbage();
        if needs_pin {
            let intr_cost = board.intr.raise(&mut board.clock);
            probe.emit(
                pid,
                Event::Interrupt {
                    ns: intr_cost.as_nanos(),
                },
            );
            state.core.stats.interrupts += 1;
            let pinned = state.core.pin(
                host,
                board,
                pid,
                page,
                1,
                cost.kernel_pin_cost(1),
                &mut |ev| probe.emit(pid, ev),
            )?;
            state.hier.install(
                page,
                pinned[0].phys_addr(),
                host.physical_mut(),
                &mut board.sram,
            )?;
            state.bitvec.set(page);
        }
        state.core.stats.ni_misses += 1;
        probe.emit(pid, Event::NiMiss);
        let entry_addr = state
            .hier
            .entry_addr(page, &board.sram)?
            .expect("installed above or already present");
        let Board { dma, clock, .. } = board;
        let (words, dma_cost) = dma.fetch_words_timed(clock, host.physical(), entry_addr, 1)?;
        state.core.stats.entries_fetched += 1;
        probe.emit(
            pid,
            Event::DmaFetch {
                entries: 1,
                ns: dma_cost.as_nanos(),
            },
        );
        let phys = PhysAddr::new(words[0]);
        if cache.insert(pid, page, phys).is_some() {
            probe.emit(
                pid,
                Event::Evict {
                    reason: EvictReason::CacheConflict,
                },
            );
        }
        let ns = (board.clock.now() - t0).as_nanos();
        probe.emit(pid, Event::Lookup { ns });
        Ok(phys)
    }

    /// Translates `npages` pages starting at `start`, one page-granular
    /// lookup per page (the firmware splits transfers at page boundaries).
    ///
    /// # Errors
    ///
    /// Propagates pinning, memory, and protocol errors.
    pub fn lookup(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<LookupReport> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        let t0 = board.clock.now();
        let mut pages = Vec::with_capacity(npages as usize);
        for page in start.range(npages) {
            let outcome = self.lookup_page(host, board, pid, page)?;
            pages.push(outcome);
        }
        Ok(LookupReport {
            pages,
            elapsed: board.clock.now() - t0,
        })
    }

    /// Batched lookup: translates `npages` pages starting at `start`,
    /// appending outcomes into the caller-owned buffer.
    ///
    /// Pages whose user-level check and cache probe would both hit —
    /// decided by pure reads of the pin bitmap (word-wise, via
    /// [`PinBitVector::pinned_prefix`]) and a stats-free cache peek — take
    /// a coalesced fast path: the per-process state is resolved once per
    /// run of consecutive hits, and the run's identical clock charges are
    /// applied in one advance. Any other page settles the pending charges
    /// and goes through the scalar per-page walk unchanged, so outcomes,
    /// statistics, probe events, and the clock are identical to
    /// [`UtlbEngine::lookup`].
    ///
    /// # Errors
    ///
    /// Propagates pinning, memory, and protocol errors.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        // Per-record resolution: the two hit charges, converted once
        // instead of per page. A hit's Lookup charge is the clock delta
        // user + ni, independent of absolute time, so runs of hits can
        // defer their advances.
        let user_ns = Nanos::from_micros(self.cfg.cost.user_check_us);
        let ni_ns = Nanos::from_micros(self.cfg.cost.ni_check_us);
        let hit_ns = user_ns + ni_ns;
        let hit_event_ns = hit_ns.as_nanos();

        let mut pending = 0u64; // coalesced hit charges not yet on the clock
        let mut i = 0u64;
        while i < npages {
            let page = start.offset(i);
            // Maximal run of pure-hit pages from `page` (pure reads only).
            let state = self.procs.get(&pid).expect("checked above");
            let pinned = state.bitvec.pinned_prefix(page, npages - i);
            let mut run = 0u64;
            while run < pinned && self.cache.peek(pid, start.offset(i + run)).is_some() {
                run += 1;
            }
            if run == 0 {
                // Slow page: settle the coalesced time first so the miss
                // path sees the same absolute clock as the scalar walk.
                if pending > 0 {
                    board.clock.advance(hit_ns * pending);
                    pending = 0;
                }
                out.push(self.lookup_page(host, board, pid, page)?);
                i += 1;
                continue;
            }
            let state = self.procs.get_mut(&pid).expect("checked above");
            for k in 0..run {
                let page = start.offset(i + k);
                state.core.fast_hit(page);
                let phys = self.cache.lookup(pid, page).expect("peeked above");
                self.probe.emit(pid, Event::Lookup { ns: hit_event_ns });
                out.push(PageOutcome {
                    page,
                    phys,
                    check_miss: false,
                    ni_miss: false,
                });
            }
            pending += run;
            i += run;
        }
        if pending > 0 {
            board.clock.advance(hit_ns * pending);
        }
        Ok(())
    }

    fn lookup_page(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<PageOutcome> {
        let cost = self.cfg.cost.clone();
        let t0 = board.clock.now();
        let state = self.procs.get_mut(&pid).expect("checked by caller");
        state.core.stats.lookups += 1;

        // 1. User-level check against the pin bitmap (Figure 2 step 1).
        charge_us(board, cost.user_check_us);
        let check = state.bitvec.check_run(page, 1);
        let check_miss = !check.is_hit();

        if check_miss {
            state.core.stats.check_misses += 1;
            self.probe.emit(pid, Event::CheckMiss);
            self.pin_run(host, board, pid, page)?;
        }

        let state = self.procs.get_mut(&pid).expect("still registered");
        state.core.pinned.touch(page);

        // 2. NIC-side resolution (Figure 2 NIC steps 1–2).
        charge_us(board, cost.ni_check_us);
        let (phys, ni_miss) = match self.cache.lookup(pid, page) {
            Some(phys) => (phys, false),
            None => {
                let phys = self.fill_from_table(host, board, pid, page)?;
                (phys, true)
            }
        };
        let state = self.procs.get_mut(&pid).expect("still registered");
        if ni_miss {
            state.core.stats.ni_misses += 1;
            self.probe.emit(pid, Event::NiMiss);
        }
        let ns = (board.clock.now() - t0).as_nanos();
        self.probe.emit(pid, Event::Lookup { ns });
        Ok(PageOutcome {
            page,
            phys,
            check_miss,
            ni_miss,
        })
    }

    /// Handles a check miss: evict under the memory limit, then pin the
    /// contiguous run of unpinned pages starting at `page` (sequential
    /// pre-pinning, §6.5) and install the translations.
    fn pin_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<()> {
        let UtlbEngine {
            cfg,
            cache,
            procs,
            probe,
        } = self;
        let cost = &cfg.cost;
        let state = procs.get_mut(&pid).expect("checked by caller");
        let mut sink = |ev: Event| probe.emit(pid, ev);

        // Length of the contiguous unpinned run, capped by the prepin width.
        let mut run = 0u64;
        while run < cfg.prepin && !state.bitvec.is_set(page.offset(run)) {
            run += 1;
        }
        debug_assert!(run >= 1, "called on a check miss");

        // Make room under the pinned-memory limit.
        if let Some(limit) = cfg.mem_limit_pages {
            let pinned = state.core.pinned.len() as u64;
            if pinned + run > limit {
                let deficit = (pinned + run).saturating_sub(limit);
                let victims = state.core.pinned.select_victims(deficit as usize);
                if victims.is_empty() && pinned >= limit {
                    // Cannot pin even the demanded page.
                    return Err(UtlbError::NoEvictableVictim(pid));
                }
                // If fewer victims than the deficit, shrink the prepin run
                // (but never below the demanded page).
                if (victims.len() as u64) < deficit {
                    let shortfall = deficit - victims.len() as u64;
                    run = run.saturating_sub(shortfall).max(1);
                }
                for victim in victims {
                    // Unpinning is one page at a time (§6.5).
                    state.core.unpin(
                        host,
                        board,
                        pid,
                        victim,
                        cost.unpin_cost(1),
                        EvictReason::MemLimit,
                        &mut sink,
                    )?;
                    state.bitvec.clear(victim);
                    state
                        .hier
                        .invalidate(victim, host.physical_mut(), &board.sram)?;
                    cache.invalidate(pid, victim);
                }
            }
        }

        // One ioctl pins the whole run (Figure 2 step 2).
        let pinned = state
            .core
            .pin(host, board, pid, page, run, cost.pin_cost(run), &mut sink)?;
        for p in &pinned {
            state.hier.install(
                p.page(),
                p.phys_addr(),
                host.physical_mut(),
                &mut board.sram,
            )?;
            state.bitvec.set(p.page());
        }
        Ok(())
    }

    /// Handles a Shared UTLB-Cache miss: one SRAM directory reference plus a
    /// DMA fetching `prefetch` consecutive entries (§3.3, §6.4). Entries
    /// still holding the garbage address (unpinned neighbours) are fetched
    /// but not cached.
    fn fill_from_table(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<PhysAddr> {
        let UtlbEngine {
            cfg,
            cache,
            procs,
            probe,
        } = self;
        let cost = &cfg.cost;
        charge_us(board, cost.directory_ref_us);

        let state = procs.get_mut(&pid).expect("checked by caller");
        // Swapped-out second-level table: the NIC interrupts the host to
        // bring it back (§3.3) — the one interrupt UTLB can ever take.
        if state.hier.entry_addr(page, &board.sram)?.is_none() {
            let intr_cost = board.intr.raise(&mut board.clock);
            state.core.stats.interrupts += 1;
            probe.emit(
                pid,
                Event::Interrupt {
                    ns: intr_cost.as_nanos(),
                },
            );
            let (phys, swap) = host.phys_and_swap();
            let swapped_in = state.hier.swap_in(page, phys, &mut board.sram, swap)?;
            if !swapped_in || state.hier.entry_addr(page, &board.sram)?.is_none() {
                return Err(UtlbError::ProtocolViolation { pid, page });
            }
            probe.emit(pid, Event::SwapIn);
        }

        let entry_addr = state
            .hier
            .entry_addr(page, &board.sram)?
            .expect("resident after swap-in");

        // Fetch up to `prefetch` consecutive entries, not crossing the leaf
        // (one DMA must stay within one second-level table).
        let leaf_remaining = crate::hier::LEAF_ENTRIES - page.number() % crate::hier::LEAF_ENTRIES;
        let fetch = cfg.prefetch.min(leaf_remaining);
        let Board { dma, clock, .. } = board;
        let (words, dma_cost) = dma.fetch_words_timed(clock, host.physical(), entry_addr, fetch)?;
        state.core.stats.entries_fetched += fetch;
        probe.emit(
            pid,
            Event::DmaFetch {
                entries: fetch,
                ns: dma_cost.as_nanos(),
            },
        );

        let garbage = state.hier.garbage().raw();
        let first = PhysAddr::new(words[0]);
        if words[0] == garbage {
            return Err(UtlbError::ProtocolViolation { pid, page });
        }
        for (i, w) in words.into_iter().enumerate() {
            if w != garbage
                && cache
                    .insert(pid, page.offset(i as u64), PhysAddr::new(w))
                    .is_some()
            {
                probe.emit(
                    pid,
                    Event::Evict {
                        reason: EvictReason::CacheConflict,
                    },
                );
            }
        }
        Ok(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: UtlbConfig) -> (Host, Board, UtlbEngine, ProcessId) {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut engine = UtlbEngine::new(cfg);
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        (host, board, engine, pid)
    }

    fn small_cfg() -> UtlbConfig {
        UtlbConfig {
            cache: CacheConfig::direct(64),
            ..UtlbConfig::default()
        }
    }

    #[test]
    fn first_lookup_misses_everywhere_second_hits_everywhere() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        let page = VirtPage::new(100);
        let r1 = engine.lookup(&mut host, &mut board, pid, page, 1).unwrap();
        assert!(r1.pages[0].check_miss);
        assert!(r1.pages[0].ni_miss);
        let r2 = engine.lookup(&mut host, &mut board, pid, page, 1).unwrap();
        assert!(!r2.pages[0].check_miss);
        assert!(!r2.pages[0].ni_miss);
        assert!(r2.elapsed < r1.elapsed, "hit path is faster");
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.check_misses, 1);
        assert_eq!(s.ni_misses, 1);
        assert_eq!(s.pins, 1);
        assert_eq!(s.unpins, 0);
        assert_eq!(s.interrupts, 0, "UTLB never interrupts on the common path");
    }

    #[test]
    fn translation_points_at_the_real_frame() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        let va = VirtAddr::new(0x30_0000);
        host.process_mut(pid)
            .unwrap()
            .write(va, b"dma payload")
            .unwrap();
        let r = engine
            .lookup_buffer(&mut host, &mut board, pid, va, 11)
            .unwrap();
        let mut buf = [0u8; 11];
        host.physical().read(r.pages[0].phys, &mut buf).unwrap();
        assert_eq!(&buf, b"dma payload");
    }

    #[test]
    fn buffer_spanning_pages_counts_one_lookup_per_page() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        let va = VirtAddr::new(0x10_0FF0); // 16 bytes before a boundary
        let r = engine
            .lookup_buffer(&mut host, &mut board, pid, va, 32)
            .unwrap();
        assert_eq!(r.pages.len(), 2);
        assert_eq!(engine.stats(pid).unwrap().lookups, 2);
    }

    #[test]
    fn memory_limit_forces_unpins_via_policy() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            mem_limit_pages: Some(4),
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        for i in 0..8 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i), 1)
                .unwrap();
        }
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.pins, 8);
        assert_eq!(s.unpins, 4, "limit 4 evicts the 4 LRU pages");
        assert_eq!(host.driver().pins().pinned_pages(pid), 4);
        // LRU: pages 0–3 were evicted; touching page 0 re-pins.
        let r = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        assert!(r.pages[0].check_miss);
    }

    #[test]
    fn unpinned_page_is_invalidated_in_cache_and_table() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            mem_limit_pages: Some(1),
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(1), 1)
            .unwrap();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(2), 1)
            .unwrap();
        // Page 1 was unpinned: its cache line must be gone and a re-lookup
        // must re-pin and re-miss.
        assert!(engine.cache().peek(pid, VirtPage::new(1)).is_none());
        let r = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(1), 1)
            .unwrap();
        assert!(r.pages[0].check_miss);
        assert!(r.pages[0].ni_miss);
    }

    #[test]
    fn prepinning_batches_pins() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            prepin: 8,
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.pins, 8, "one miss pre-pins the run");
        assert_eq!(s.pin_calls, 1);
        // The next 7 pages are check hits.
        for i in 1..8 {
            let r = engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i), 1)
                .unwrap();
            assert!(!r.pages[0].check_miss, "page {i}");
        }
        assert_eq!(engine.stats(pid).unwrap().check_misses, 1);
    }

    #[test]
    fn prefetch_hides_subsequent_ni_misses() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            prepin: 8,
            prefetch: 8,
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        // One lookup pins 8 pages and prefetches all 8 entries.
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 8)
            .unwrap();
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.ni_misses, 1, "only the first page misses in the cache");
        assert_eq!(s.entries_fetched, 8);
    }

    #[test]
    fn prefetch_skips_garbage_neighbours() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            prepin: 1,
            prefetch: 4,
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        // Neighbours 1..3 were fetched but hold garbage: not cached.
        assert!(engine.cache().peek(pid, VirtPage::new(1)).is_none());
        // And looking one up later is still correct (pin, then NI miss).
        let r = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(1), 1)
            .unwrap();
        assert!(r.pages[0].ni_miss);
    }

    #[test]
    fn outstanding_holds_protect_pages_from_eviction() {
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            mem_limit_pages: Some(2),
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(1), 1)
            .unwrap();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(2), 1)
            .unwrap();
        engine.hold_pages(pid, VirtPage::new(1), 2).unwrap();
        // Both pinned pages are held: pinning a third must fail.
        let err = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(3), 1)
            .unwrap_err();
        assert!(matches!(err, UtlbError::NoEvictableVictim(_)));
        engine.release_pages(pid, VirtPage::new(1), 2).unwrap();
        assert!(engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(3), 1)
            .is_ok());
    }

    #[test]
    fn register_twice_and_unknown_process_errors() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        assert!(matches!(
            engine.register_process(&mut host, &mut board, pid),
            Err(UtlbError::AlreadyRegistered(_))
        ));
        let ghost = ProcessId::new(404);
        assert!(matches!(
            engine.lookup(&mut host, &mut board, ghost, VirtPage::new(0), 1),
            Err(UtlbError::UnregisteredProcess(_))
        ));
        assert!(engine.stats(ghost).is_err());
    }

    #[test]
    fn unregister_releases_everything() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 4)
            .unwrap();
        let frames_before = host.physical().allocator().allocated_frames();
        assert!(frames_before > 0);
        engine
            .unregister_process(&mut host, &mut board, pid)
            .unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
        assert_eq!(engine.cache().occupancy(), 0);
        assert!(engine
            .unregister_process(&mut host, &mut board, pid)
            .is_err());
    }

    #[test]
    fn two_processes_share_the_cache_without_interference_on_correctness() {
        let (mut host, mut board, mut engine, pid1) = setup(small_cfg());
        let pid2 = host.spawn_process();
        engine
            .register_process(&mut host, &mut board, pid2)
            .unwrap();
        let va = VirtAddr::new(0x50_0000);
        host.process_mut(pid1).unwrap().write(va, b"one").unwrap();
        host.process_mut(pid2).unwrap().write(va, b"two").unwrap();
        let r1 = engine
            .lookup_buffer(&mut host, &mut board, pid1, va, 3)
            .unwrap();
        let r2 = engine
            .lookup_buffer(&mut host, &mut board, pid2, va, 3)
            .unwrap();
        let mut b1 = [0u8; 3];
        let mut b2 = [0u8; 3];
        host.physical().read(r1.pages[0].phys, &mut b1).unwrap();
        host.physical().read(r2.pages[0].phys, &mut b2).unwrap();
        assert_eq!(&b1, b"one");
        assert_eq!(&b2, b"two");
    }

    #[test]
    fn nic_resolve_falls_back_to_an_interrupt_for_unpinned_pages() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        let va = VirtAddr::new(0x77_000);
        host.process_mut(pid)
            .unwrap()
            .write(va, b"unchecked")
            .unwrap();
        // A request lands on the NIC without the user-level step: the NIC
        // interrupts the host and still resolves correctly.
        let phys = engine
            .nic_resolve(&mut host, &mut board, pid, va.page())
            .unwrap();
        let mut buf = [0u8; 9];
        host.physical().read(phys, &mut buf).unwrap();
        assert_eq!(&buf, b"unchecked");
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.interrupts, 1, "the fallback costs an interrupt");
        assert_eq!(s.pins, 1);
        // A well-behaved lookup of the same page afterwards is a pure hit
        // and never interrupts.
        let r = engine
            .lookup(&mut host, &mut board, pid, va.page(), 1)
            .unwrap();
        assert!(!r.pages[0].check_miss);
        assert!(!r.pages[0].ni_miss);
        assert_eq!(engine.stats(pid).unwrap().interrupts, 1);
        // Resolving an already-pinned page via the NIC path needs no
        // interrupt either (cache was filled above; invalidate to force the
        // table read).
        engine.cache.invalidate(pid, va.page());
        engine
            .nic_resolve(&mut host, &mut board, pid, va.page())
            .unwrap();
        assert_eq!(engine.stats(pid).unwrap().interrupts, 1);
    }

    #[test]
    fn os_reclaim_of_unpinned_pages_is_invisible_to_the_engine() {
        // Under a memory limit the engine unpins cold pages; the OS may
        // then reclaim them. A later lookup must transparently fault the
        // page back in, re-pin it, and yield a *fresh, correct* frame.
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            mem_limit_pages: Some(1),
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        let va = VirtAddr::new(0x123_000);
        host.process_mut(pid)
            .unwrap()
            .write(va, b"survives")
            .unwrap();
        engine
            .lookup(&mut host, &mut board, pid, va.page(), 1)
            .unwrap();
        // Another page evicts (unpins) the first; the OS reclaims it.
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0x200), 1)
            .unwrap();
        assert!(host.reclaim_page(pid, va.page()).unwrap());
        // Re-lookup: pin path faults the page in; data and translation agree.
        let r = engine
            .lookup(&mut host, &mut board, pid, va.page(), 1)
            .unwrap();
        assert!(r.pages[0].check_miss);
        let mut buf = [0u8; 8];
        host.physical().read(r.pages[0].phys, &mut buf).unwrap();
        assert_eq!(&buf, b"survives");
    }

    #[test]
    fn invalid_configs_are_rejected_without_panicking() {
        let bad = UtlbConfig {
            prefetch: 0,
            ..UtlbConfig::default()
        };
        assert!(matches!(
            UtlbEngine::try_new(bad),
            Err(UtlbError::InvalidConfig(_))
        ));
        assert!(UtlbConfig::builder().prepin(0).build().is_err());
        assert!(UtlbConfig::builder()
            .cache(CacheConfig {
                entries: 6,
                associativity: crate::Associativity::FourWay,
                offsetting: false,
            })
            .build()
            .is_err());
        let good = UtlbConfig::builder()
            .cache(CacheConfig::direct(128))
            .prefetch(4)
            .prepin(2)
            .mem_limit_pages(Some(64))
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(good.prefetch, 4);
        assert!(UtlbEngine::try_new(good).is_ok());
    }

    #[test]
    fn probe_event_counts_reconcile_with_stats() {
        use crate::obs::SharedCollector;
        let cfg = UtlbConfig {
            cache: CacheConfig::direct(64),
            prepin: 4,
            prefetch: 4,
            mem_limit_pages: Some(8),
            ..UtlbConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        let collector = SharedCollector::new(16);
        engine.set_probe(collector.boxed());
        // The interrupt fallback path first, while pins are under the limit
        // (nic_resolve pins directly, without the limit-eviction path).
        engine
            .nic_resolve(&mut host, &mut board, pid, VirtPage::new(500))
            .unwrap();
        // Strided lookups: check misses, NI misses, pins, limit evictions.
        for i in 0..24 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i * 3), 2)
                .unwrap();
        }
        let snap = collector.snapshot();
        let stats = engine.aggregate_stats();
        let mismatches = snap.metrics.reconcile(&stats);
        assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
        assert!(snap.metrics.counts.evictions > 0, "limit evictions seen");
        assert_eq!(snap.metrics.lookup_ns.count(), stats.lookups);
        // Detaching stops the stream: stats advance, metrics do not.
        engine.take_probe().expect("probe was attached");
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(9000), 1)
            .unwrap();
        assert_eq!(collector.snapshot().metrics.counts.lookups, stats.lookups);
    }

    #[test]
    fn swapped_out_table_is_brought_back_with_one_interrupt() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg());
        let page = VirtPage::new(10);
        engine.lookup(&mut host, &mut board, pid, page, 1).unwrap();
        // Swap the leaf out behind the engine's back, then evict the cache
        // line so the next lookup must go to the table.
        let state = engine.procs.get_mut(&pid).unwrap();
        let (phys, swap) = host.phys_and_swap();
        state
            .hier
            .swap_out(page, phys, &mut board.sram, swap)
            .unwrap();
        engine.cache.invalidate(pid, page);
        let r = engine.lookup(&mut host, &mut board, pid, page, 1).unwrap();
        assert!(r.pages[0].ni_miss);
        assert_eq!(engine.stats(pid).unwrap().interrupts, 1);
    }
}
