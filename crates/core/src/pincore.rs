//! The shared pinning/fault core every translation engine composes.
//!
//! All four engines — per-process UTLB (§3.1), Shared UTLB-Cache over
//! indexed tables (§3.2), Hierarchical-UTLB (§3.3), and the interrupt
//! baseline (§6.2) — keep the same per-process block: the [`PinnedSet`]
//! driving the replacement policy, the [`TranslationStats`] counters, and
//! the demand-pin / demand-unpin path that charges the board clock, calls
//! into the host driver, updates both, and narrates the work as
//! [`Event`]s. [`PinCore`] is that block, extracted once; each engine keeps
//! only what is genuinely its own — which table the translation lands in,
//! which NIC structure to invalidate, and which cost constants apply
//! (user-level `ioctl` vs in-handler kernel work).
//!
//! Events go through a `sink` closure rather than a probe reference so the
//! engines can keep their two emission disciplines: the hierarchical and
//! interrupt engines forward straight to their [`ProbeSlot`]
//! (`crate::obs::ProbeSlot`), while §3.1/§3.2 buffer events across the
//! borrow-heavy miss path and flush before the closing `Lookup`.

use crate::obs::{Event, EvictReason};
use crate::policy::{PinnedSet, Policy};
use crate::{Result, TranslationStats};
use utlb_mem::{Host, PinnedPage, ProcessId, VirtPage};
use utlb_nic::{Board, Nanos};

/// Advances the board clock by a microsecond-denominated charge — the one
/// clock idiom every engine shares.
pub fn charge_us(board: &mut Board, us: f64) {
    board.clock.advance(Nanos::from_micros(us));
}

/// Per-process pinning state and counters, shared by every engine.
#[derive(Debug)]
pub struct PinCore {
    /// Pinned pages under the application-chosen replacement policy.
    pub pinned: PinnedSet,
    /// The engine's counters for this process.
    pub stats: TranslationStats,
}

impl PinCore {
    /// A fresh core for `pid`: an empty [`PinnedSet`] seeded per process
    /// (so RANDOM replacement decorrelates across processes) and zeroed
    /// counters.
    pub fn new(policy: Policy, seed: u64, pid: ProcessId) -> Self {
        PinCore {
            pinned: PinnedSet::new(policy, seed ^ pid.raw() as u64),
            stats: TranslationStats::default(),
        }
    }

    /// The counter/recency work of a pure translation hit, shared by every
    /// engine's batched fast path: one lookup counted and the page's
    /// recency refreshed in the replacement set. The caller owns the clock
    /// charge (batched walks coalesce the identical hit charges of a run
    /// into one advance) and the NIC-side structure probe.
    #[inline]
    pub fn fast_hit(&mut self, page: VirtPage) {
        self.stats.lookups += 1;
        self.pinned.touch(page);
    }

    /// The demand-unpin path: charge `unpin_us` to the board clock, drop
    /// the driver pin, update the replacement set and counters, and narrate
    /// the eviction as `Evict { reason }` + `Unpin`.
    ///
    /// The caller is responsible for whatever the page's translation lived
    /// in — invalidating a table slot, a cache line, or a bit vector —
    /// before or after this call; none of that work charges the clock.
    ///
    /// # Errors
    ///
    /// Propagates driver unpin failures.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn unpin(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        victim: VirtPage,
        unpin_us: f64,
        reason: EvictReason,
        sink: &mut dyn FnMut(Event),
    ) -> Result<()> {
        charge_us(board, unpin_us);
        host.driver_unpin(pid, victim)?;
        self.pinned.remove(victim);
        self.stats.unpins += 1;
        self.stats.unpin_calls += 1;
        let ns = (unpin_us * 1000.0) as u64;
        self.stats.unpin_time_ns += ns;
        sink(Event::Evict { reason });
        sink(Event::Unpin { ns });
        Ok(())
    }

    /// The demand-pin path: charge `pin_us`, pin `run` pages starting at
    /// `start` through one driver call, track them in the replacement set,
    /// bump the counters, and narrate one `Pin` event.
    ///
    /// Returns the driver's `(page, frame)` pairs so the caller can install
    /// the translations in its own structure — the only step that differs
    /// between engines.
    ///
    /// # Errors
    ///
    /// Propagates driver pin failures.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn pin(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        run: u64,
        pin_us: f64,
        sink: &mut dyn FnMut(Event),
    ) -> Result<Vec<PinnedPage>> {
        charge_us(board, pin_us);
        let pinned = host.driver_pin(pid, start, run)?;
        for p in &pinned {
            self.pinned.insert(p.page());
        }
        self.stats.pins += pinned.len() as u64;
        self.stats.pin_calls += 1;
        let ns = (pin_us * 1000.0) as u64;
        self.stats.pin_time_ns += ns;
        sink(Event::Pin {
            run: pinned.len() as u64,
            ns,
        });
        Ok(pinned)
    }
}

/// Sums the counters of an iterator of cores — the body every engine's
/// `aggregate_stats` shares.
pub fn aggregate<'a>(cores: impl Iterator<Item = &'a PinCore>) -> TranslationStats {
    cores
        .map(|c| c.stats)
        .fold(TranslationStats::default(), |a, b| a + b)
}

/// Generates the accessor quartet every engine exposes identically —
/// probe attach/detach plus per-process and aggregate statistics — for an
/// engine whose `procs` map values embed their [`PinCore`] in a `core`
/// field.
macro_rules! probe_stats_accessors {
    () => {
        /// Attaches an observability probe (see [`crate::obs`]), replacing
        /// and returning any previous one. Detached engines skip all event
        /// work.
        pub fn set_probe(
            &mut self,
            probe: Box<dyn crate::obs::Probe>,
        ) -> Option<Box<dyn crate::obs::Probe>> {
            self.probe.attach(probe)
        }

        /// Detaches and returns the probe, if one was attached.
        pub fn take_probe(&mut self) -> Option<Box<dyn crate::obs::Probe>> {
            self.probe.detach()
        }

        /// Per-process statistics.
        ///
        /// # Errors
        ///
        /// Returns [`crate::UtlbError::UnregisteredProcess`] if `pid` is
        /// unknown.
        pub fn stats(&self, pid: utlb_mem::ProcessId) -> crate::Result<crate::TranslationStats> {
            self.procs
                .get(&pid)
                .map(|s| s.core.stats)
                .ok_or(crate::UtlbError::UnregisteredProcess(pid))
        }

        /// Statistics summed over all processes.
        pub fn aggregate_stats(&self) -> crate::TranslationStats {
            crate::pincore::aggregate(self.procs.values().map(|s| &s.core))
        }
    };
}
pub(crate) use probe_stats_accessors;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_then_unpin_round_trips_counters_and_events() {
        let mut host = Host::new(1 << 12);
        let mut board = Board::new();
        let pid = host.spawn_process();
        let mut core = PinCore::new(Policy::Lru, 7, pid);
        let mut events = Vec::new();
        let mut sink = |ev: Event| events.push(ev);

        let t0 = board.clock.now();
        let pinned = core
            .pin(
                &mut host,
                &mut board,
                pid,
                VirtPage::new(3),
                2,
                54.0,
                &mut sink,
            )
            .unwrap();
        assert_eq!(pinned.len(), 2);
        assert_eq!(core.stats.pins, 2);
        assert_eq!(core.stats.pin_calls, 1);
        assert_eq!(core.stats.pin_time_ns, 54_000);
        assert_eq!((board.clock.now() - t0).as_nanos(), 54_000);
        assert!(host.driver().pins().is_pinned(pid, VirtPage::new(4)));

        core.unpin(
            &mut host,
            &mut board,
            pid,
            VirtPage::new(3),
            25.0,
            EvictReason::TableFull,
            &mut sink,
        )
        .unwrap();
        assert_eq!(core.stats.unpins, 1);
        assert_eq!(core.stats.unpin_calls, 1);
        assert_eq!(core.stats.unpin_time_ns, 25_000);
        assert!(!host.driver().pins().is_pinned(pid, VirtPage::new(3)));
        assert_eq!(
            events,
            vec![
                Event::Pin { run: 2, ns: 54_000 },
                Event::Evict {
                    reason: EvictReason::TableFull
                },
                Event::Unpin { ns: 25_000 },
            ]
        );
    }

    #[test]
    fn per_process_seeds_differ() {
        let mut host = Host::new(1 << 12);
        let p1 = host.spawn_process();
        let p2 = host.spawn_process();
        let a = PinCore::new(Policy::Random, 0xABCD, p1);
        let b = PinCore::new(Policy::Random, 0xABCD, p2);
        // Different pids perturb the seed; the sets start equally empty.
        assert_eq!(a.pinned.len(), 0);
        assert_eq!(b.pinned.len(), 0);
    }

    #[test]
    fn aggregate_sums_across_cores() {
        let mut host = Host::new(1 << 12);
        let p1 = host.spawn_process();
        let p2 = host.spawn_process();
        let mut a = PinCore::new(Policy::Lru, 1, p1);
        let mut b = PinCore::new(Policy::Lru, 1, p2);
        a.stats.lookups = 3;
        b.stats.lookups = 4;
        let cores = [a, b];
        assert_eq!(aggregate(cores.iter()).lookups, 7);
    }
}
