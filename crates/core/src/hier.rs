//! The Hierarchical-UTLB translation table (paper §3.3).
//!
//! Instead of user-managed slot indices, the translation table *is* a
//! two-level page table keyed by virtual address:
//!
//! * the **top-level directory** lives in NIC SRAM, so a Shared UTLB-Cache
//!   miss costs one SRAM reference (directory) plus one DMA (second-level
//!   entry fetch),
//! * the **second-level tables** live in host physical memory, one 4 KB
//!   frame each, holding the physical addresses of explicitly pinned pages,
//! * entries of pages that are not pinned hold the garbage-page address, so
//!   the NIC performs no validity checks (§4.2),
//! * a second-level table may be **swapped out** to disk; the directory then
//!   stores the disk block number and a presence bit (§3.3), and touching it
//!   requires a host interrupt to swap it back in.

use crate::{Result, UtlbError};
use std::collections::HashMap;
use utlb_mem::{
    BlockId, FrameId, PhysAddr, PhysicalMemory, ProcessId, SwapDevice, VirtPage, PAGE_SIZE,
};
use utlb_nic::{Sram, SramRegion};

/// Entries per second-level table: one 4 KB frame of 8-byte entries.
pub const LEAF_ENTRIES: u64 = PAGE_SIZE / 8;

/// Directory entries per process: covers `DIR_ENTRIES * LEAF_ENTRIES` pages
/// (4 GB of virtual address space with 4 KB pages — the whole 32-bit space
/// of the paper's machines).
pub const DIR_ENTRIES: u64 = 2048;

/// What a directory slot currently points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEntry {
    /// No second-level table exists yet.
    Empty,
    /// Second-level table resident in host memory at this frame.
    Present(FrameId),
    /// Second-level table swapped out to this disk block.
    Swapped(BlockId),
}

const FLAG_PRESENT: u64 = 0b01;
const FLAG_SWAPPED: u64 = 0b10;

fn encode(entry: DirEntry) -> u64 {
    match entry {
        DirEntry::Empty => 0,
        DirEntry::Present(f) => (f.number() << 2) | FLAG_PRESENT,
        DirEntry::Swapped(b) => (b.raw() << 2) | FLAG_SWAPPED,
    }
}

fn decode(raw: u64) -> DirEntry {
    if raw & FLAG_PRESENT != 0 {
        DirEntry::Present(FrameId::new(raw >> 2))
    } else if raw & FLAG_SWAPPED != 0 {
        DirEntry::Swapped(BlockId::new(raw >> 2))
    } else {
        DirEntry::Empty
    }
}

/// A per-process Hierarchical-UTLB translation table.
#[derive(Debug)]
pub struct HierTable {
    pid: ProcessId,
    directory: SramRegion,
    garbage: PhysAddr,
    /// Valid (installed, non-garbage) entry count, for accounting.
    installed: u64,
    /// Resident leaf frames, mirrored from the directory for iteration.
    leaves: HashMap<u64, FrameId>,
}

impl HierTable {
    /// Allocates the top-level directory in NIC SRAM.
    ///
    /// # Errors
    ///
    /// Propagates SRAM exhaustion.
    pub fn new(pid: ProcessId, sram: &mut Sram, garbage: PhysAddr) -> Result<Self> {
        let directory = sram.alloc(DIR_ENTRIES * 8).map_err(UtlbError::Nic)?;
        for i in 0..DIR_ENTRIES {
            sram.write_u64(directory.at(i * 8), encode(DirEntry::Empty))
                .map_err(UtlbError::Nic)?;
        }
        Ok(HierTable {
            pid,
            directory,
            garbage,
            installed: 0,
            leaves: HashMap::new(),
        })
    }

    /// Owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of installed (pinned) translations.
    pub fn installed(&self) -> u64 {
        self.installed
    }

    /// The garbage-page address entries are initialized with.
    pub fn garbage(&self) -> PhysAddr {
        self.garbage
    }

    fn split(page: VirtPage) -> (u64, u64) {
        let n = page.number();
        let dir = n / LEAF_ENTRIES;
        assert!(
            dir < DIR_ENTRIES,
            "virtual page {n:#x} outside the 4 GB space the directory covers"
        );
        (dir, n % LEAF_ENTRIES)
    }

    /// Reads a directory slot — one NIC SRAM reference.
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors (simulator-internal).
    pub fn dir_entry(&self, page: VirtPage, sram: &Sram) -> Result<DirEntry> {
        let (dir, _) = Self::split(page);
        let raw = sram
            .read_u64(self.directory.at(dir * 8))
            .map_err(UtlbError::Nic)?;
        Ok(decode(raw))
    }

    fn set_dir_entry(&mut self, dir: u64, entry: DirEntry, sram: &mut Sram) -> Result<()> {
        sram.write_u64(self.directory.at(dir * 8), encode(entry))
            .map_err(UtlbError::Nic)?;
        match entry {
            DirEntry::Present(f) => {
                self.leaves.insert(dir, f);
            }
            _ => {
                self.leaves.remove(&dir);
            }
        }
        Ok(())
    }

    fn ensure_leaf(
        &mut self,
        dir: u64,
        host: &mut PhysicalMemory,
        sram: &mut Sram,
    ) -> Result<FrameId> {
        if let Some(f) = self.leaves.get(&dir) {
            return Ok(*f);
        }
        let raw = sram
            .read_u64(self.directory.at(dir * 8))
            .map_err(UtlbError::Nic)?;
        match decode(raw) {
            DirEntry::Present(f) => Ok(f),
            DirEntry::Swapped(_) => panic!("swap-in must be performed before installing"),
            DirEntry::Empty => {
                let frame = host.alloc_frame()?;
                for i in 0..LEAF_ENTRIES {
                    host.write_u64(frame.base().offset(i * 8), self.garbage.raw())?;
                }
                self.set_dir_entry(dir, DirEntry::Present(frame), sram)?;
                Ok(frame)
            }
        }
    }

    /// Host physical address of the translation entry for `page`, when its
    /// second-level table is resident — this is the address the NIC DMAs
    /// from on a Shared UTLB-Cache miss.
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors.
    pub fn entry_addr(&self, page: VirtPage, sram: &Sram) -> Result<Option<PhysAddr>> {
        let (dir, leaf) = Self::split(page);
        match self.dir_entry(page, sram)? {
            DirEntry::Present(_) => {
                let frame = self.leaves[&dir];
                Ok(Some(frame.base().offset(leaf * 8)))
            }
            _ => Ok(None),
        }
    }

    /// Installs the translation `page → phys` (driver side of the pin
    /// `ioctl`), materializing the second-level table if needed.
    ///
    /// # Errors
    ///
    /// Propagates frame-allocation and range errors.
    pub fn install(
        &mut self,
        page: VirtPage,
        phys: PhysAddr,
        host: &mut PhysicalMemory,
        sram: &mut Sram,
    ) -> Result<()> {
        let (dir, leaf) = Self::split(page);
        let frame = self.ensure_leaf(dir, host, sram)?;
        let addr = frame.base().offset(leaf * 8);
        let old = host.read_u64(addr)?;
        host.write_u64(addr, phys.raw())?;
        if old == self.garbage.raw() && phys != self.garbage {
            self.installed += 1;
        }
        Ok(())
    }

    /// Invalidates the translation for `page` (after unpinning), restoring
    /// the garbage address.
    ///
    /// The second-level table must be resident: like the install path, the
    /// driver faults a swapped table in (see [`HierTable::swap_in`]) before
    /// touching entries. Invalidating through a swapped-out leaf is a
    /// silent no-op, mirroring an OS that defers the table update to the
    /// next fault.
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn invalidate(
        &mut self,
        page: VirtPage,
        host: &mut PhysicalMemory,
        sram: &Sram,
    ) -> Result<()> {
        let (dir, leaf) = Self::split(page);
        let _ = sram; // directory itself is untouched by an invalidate
        if let Some(frame) = self.leaves.get(&dir) {
            let addr = frame.base().offset(leaf * 8);
            let old = host.read_u64(addr)?;
            if old != self.garbage.raw() {
                host.write_u64(addr, self.garbage.raw())?;
                self.installed -= 1;
            }
        }
        Ok(())
    }

    /// Reads the stored translation for `page`; garbage means "not pinned".
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn read_entry(
        &self,
        page: VirtPage,
        host: &PhysicalMemory,
        sram: &Sram,
    ) -> Result<PhysAddr> {
        match self.entry_addr(page, sram)? {
            Some(addr) => Ok(PhysAddr::new(host.read_u64(addr)?)),
            None => Ok(self.garbage),
        }
    }

    /// Swaps the second-level table containing `page` out to disk (§3.3),
    /// freeing its host frame. Returns the disk block, or `None` if the
    /// table was not resident.
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn swap_out(
        &mut self,
        page: VirtPage,
        host: &mut PhysicalMemory,
        sram: &mut Sram,
        swap: &mut SwapDevice,
    ) -> Result<Option<BlockId>> {
        let (dir, _) = Self::split(page);
        let Some(frame) = self.leaves.get(&dir).copied() else {
            return Ok(None);
        };
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        host.read(frame.base(), &mut buf)?;
        let block = swap.store(&buf);
        host.free_frame(frame);
        self.set_dir_entry(dir, DirEntry::Swapped(block), sram)?;
        Ok(Some(block))
    }

    /// Swaps the second-level table containing `page` back in. The real
    /// system raises a host interrupt for this; the caller charges that
    /// cost. Returns `true` if a swap-in happened.
    ///
    /// # Errors
    ///
    /// Propagates swap and allocation errors.
    pub fn swap_in(
        &mut self,
        page: VirtPage,
        host: &mut PhysicalMemory,
        sram: &mut Sram,
        swap: &mut SwapDevice,
    ) -> Result<bool> {
        let (dir, _) = Self::split(page);
        let raw = sram
            .read_u64(self.directory.at(dir * 8))
            .map_err(UtlbError::Nic)?;
        let DirEntry::Swapped(block) = decode(raw) else {
            return Ok(false);
        };
        let data = swap.load(block)?;
        let frame = host.alloc_frame()?;
        host.write(frame.base(), &data)?;
        self.set_dir_entry(dir, DirEntry::Present(frame), sram)?;
        Ok(true)
    }

    /// Releases every resident leaf frame (process teardown).
    pub fn release(&mut self, host: &mut PhysicalMemory) {
        for (_, frame) in self.leaves.drain() {
            host.free_frame(frame);
        }
        self.installed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GARBAGE: PhysAddr = PhysAddr::new(0x00BA_D000);

    fn setup() -> (PhysicalMemory, Sram, HierTable) {
        let mut host = PhysicalMemory::new(256);
        let mut sram = Sram::new(1 << 20);
        let t = HierTable::new(ProcessId::new(1), &mut sram, GARBAGE).unwrap();
        let _ = &mut host;
        (host, sram, t)
    }

    #[test]
    fn fresh_table_reads_garbage() {
        let (host, sram, t) = setup();
        assert_eq!(
            t.read_entry(VirtPage::new(7), &host, &sram).unwrap(),
            GARBAGE
        );
        assert_eq!(
            t.dir_entry(VirtPage::new(7), &sram).unwrap(),
            DirEntry::Empty
        );
        assert_eq!(t.installed(), 0);
    }

    #[test]
    fn install_read_invalidate_roundtrip() {
        let (mut host, mut sram, mut t) = setup();
        let page = VirtPage::new(1000);
        t.install(page, PhysAddr::new(0x42_000), &mut host, &mut sram)
            .unwrap();
        assert_eq!(t.installed(), 1);
        assert_eq!(
            t.read_entry(page, &host, &sram).unwrap(),
            PhysAddr::new(0x42_000)
        );
        // Re-install does not double count.
        t.install(page, PhysAddr::new(0x43_000), &mut host, &mut sram)
            .unwrap();
        assert_eq!(t.installed(), 1);
        t.invalidate(page, &mut host, &sram).unwrap();
        assert_eq!(t.read_entry(page, &host, &sram).unwrap(), GARBAGE);
        assert_eq!(t.installed(), 0);
        // Idempotent invalidate.
        t.invalidate(page, &mut host, &sram).unwrap();
        assert_eq!(t.installed(), 0);
    }

    #[test]
    fn entry_addr_supports_consecutive_prefetch() {
        let (mut host, mut sram, mut t) = setup();
        // Two consecutive pages in the same leaf: their entry addresses are
        // 8 bytes apart, which is what makes prefetch a single DMA.
        let p0 = VirtPage::new(64);
        let p1 = VirtPage::new(65);
        t.install(p0, PhysAddr::new(0x1000), &mut host, &mut sram)
            .unwrap();
        t.install(p1, PhysAddr::new(0x2000), &mut host, &mut sram)
            .unwrap();
        let a0 = t.entry_addr(p0, &sram).unwrap().unwrap();
        let a1 = t.entry_addr(p1, &sram).unwrap().unwrap();
        assert_eq!(a1.raw() - a0.raw(), 8);
    }

    #[test]
    fn swap_out_and_in_preserves_translations() {
        let (mut host, mut sram, mut t) = setup();
        let mut swap = SwapDevice::new();
        let page = VirtPage::new(12);
        t.install(page, PhysAddr::new(0x9000), &mut host, &mut sram)
            .unwrap();
        let frames_before = host.allocator().allocated_frames();

        let block = t.swap_out(page, &mut host, &mut sram, &mut swap).unwrap();
        assert!(block.is_some());
        assert_eq!(host.allocator().allocated_frames(), frames_before - 1);
        assert!(matches!(
            t.dir_entry(page, &sram).unwrap(),
            DirEntry::Swapped(_)
        ));
        assert_eq!(t.entry_addr(page, &sram).unwrap(), None);

        assert!(t.swap_in(page, &mut host, &mut sram, &mut swap).unwrap());
        assert_eq!(
            t.read_entry(page, &host, &sram).unwrap(),
            PhysAddr::new(0x9000)
        );
        // Second swap-in is a no-op.
        assert!(!t.swap_in(page, &mut host, &mut sram, &mut swap).unwrap());
    }

    #[test]
    fn swap_out_of_nonresident_leaf_is_none() {
        let (mut host, mut sram, mut t) = setup();
        let mut swap = SwapDevice::new();
        assert_eq!(
            t.swap_out(VirtPage::new(5), &mut host, &mut sram, &mut swap)
                .unwrap(),
            None
        );
    }

    #[test]
    fn release_frees_leaf_frames() {
        let (mut host, mut sram, mut t) = setup();
        t.install(
            VirtPage::new(0),
            PhysAddr::new(0x1000),
            &mut host,
            &mut sram,
        )
        .unwrap();
        t.install(
            VirtPage::new(LEAF_ENTRIES),
            PhysAddr::new(0x2000),
            &mut host,
            &mut sram,
        )
        .unwrap();
        let before = host.allocator().allocated_frames();
        t.release(&mut host);
        assert_eq!(host.allocator().allocated_frames(), before - 2);
        assert_eq!(t.installed(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the 4 GB space")]
    fn out_of_coverage_page_panics() {
        let (_, sram, t) = setup();
        let _ = t.dir_entry(VirtPage::new(DIR_ENTRIES * LEAF_ENTRIES), &sram);
    }
}
