//! User-level replacement policies.
//!
//! Paper §3.4: "UTLB predefines five replacement policies for applications
//! to choose: LRU, MRU, LFU, MFU, and RANDOM." The policy picks which pinned
//! virtual pages to *unpin* when the process hits its pinned-memory limit.
//! Because the application chooses the policy, this is the
//! "application-controlled" part of the mechanism — the kernel only ever
//! sees pin/unpin calls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_mem::VirtPage;

/// Which predefined replacement policy to use (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Policy {
    /// Least-recently-used (the policy used throughout the paper's study).
    #[default]
    Lru,
    /// Most-recently-used.
    Mru,
    /// Least-frequently-used.
    Lfu,
    /// Most-frequently-used.
    Mfu,
    /// Uniformly random among evictable pages.
    Random,
}

impl Policy {
    /// All predefined policies, for sweeps.
    pub const ALL: [Policy; 5] = [
        Policy::Lru,
        Policy::Mru,
        Policy::Lfu,
        Policy::Mfu,
        Policy::Random,
    ];
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Policy::Lru => "LRU",
            Policy::Mru => "MRU",
            Policy::Lfu => "LFU",
            Policy::Mfu => "MFU",
            Policy::Random => "RANDOM",
        };
        f.write_str(name)
    }
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    last_use: u64,
    uses: u64,
    /// Pages involved in outstanding sends must not be unpinned (§3.1).
    outstanding: u32,
}

/// The set of pinned pages of one process, with the metadata the
/// replacement policies need.
///
/// The structure is policy-agnostic: every access records both recency and
/// frequency, and [`PinnedSet::select_victims`] applies whichever policy the
/// application chose.
#[derive(Debug)]
pub struct PinnedSet {
    pages: HashMap<u64, PageMeta>,
    policy: Policy,
    tick: u64,
    rng: StdRng,
}

impl PinnedSet {
    /// Creates an empty set using `policy`, with a deterministic seed for
    /// the RANDOM policy.
    pub fn new(policy: Policy, seed: u64) -> Self {
        PinnedSet {
            pages: HashMap::new(),
            policy,
            tick: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of pinned pages tracked.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are pinned.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether `page` is tracked.
    pub fn contains(&self, page: VirtPage) -> bool {
        self.pages.contains_key(&page.number())
    }

    /// Registers a freshly pinned page.
    pub fn insert(&mut self, page: VirtPage) {
        self.tick += 1;
        self.pages.insert(
            page.number(),
            PageMeta {
                last_use: self.tick,
                uses: 1,
                outstanding: 0,
            },
        );
    }

    /// Records a use of `page` (a translation lookup touching it).
    pub fn touch(&mut self, page: VirtPage) {
        self.tick += 1;
        if let Some(meta) = self.pages.get_mut(&page.number()) {
            meta.last_use = self.tick;
            meta.uses += 1;
        }
    }

    /// Removes `page` (after it was unpinned).
    pub fn remove(&mut self, page: VirtPage) {
        self.pages.remove(&page.number());
    }

    /// Marks `page` as held by an outstanding send; it cannot be a victim
    /// until released (§3.1: "the user-level library must only select
    /// virtual pages that will not be involved in any outstanding send
    /// requests").
    pub fn hold(&mut self, page: VirtPage) {
        if let Some(meta) = self.pages.get_mut(&page.number()) {
            meta.outstanding += 1;
        }
    }

    /// Releases one outstanding-send hold on `page`.
    pub fn release(&mut self, page: VirtPage) {
        if let Some(meta) = self.pages.get_mut(&page.number()) {
            meta.outstanding = meta.outstanding.saturating_sub(1);
        }
    }

    /// Number of pages currently evictable (pinned and not held).
    pub fn evictable(&self) -> usize {
        self.pages.values().filter(|m| m.outstanding == 0).count()
    }

    /// Selects up to `count` victim pages to unpin, per the policy.
    ///
    /// Held pages are never selected. Returns fewer than `count` victims if
    /// not enough pages are evictable. Victims are *not* removed; call
    /// [`PinnedSet::remove`] once the unpin succeeds.
    pub fn select_victims(&mut self, count: usize) -> Vec<VirtPage> {
        let mut candidates: Vec<(u64, PageMeta)> = self
            .pages
            .iter()
            .filter(|(_, m)| m.outstanding == 0)
            .map(|(p, m)| (*p, *m))
            .collect();
        if candidates.is_empty() || count == 0 {
            return Vec::new();
        }
        match self.policy {
            Policy::Lru => candidates.sort_by_key(|(p, m)| (m.last_use, *p)),
            Policy::Mru => candidates.sort_by_key(|(p, m)| (std::cmp::Reverse(m.last_use), *p)),
            Policy::Lfu => candidates.sort_by_key(|(p, m)| (m.uses, m.last_use, *p)),
            Policy::Mfu => {
                candidates.sort_by_key(|(p, m)| (std::cmp::Reverse(m.uses), m.last_use, *p))
            }
            Policy::Random => {
                // Partial Fisher-Yates: shuffle just the prefix we need.
                let n = candidates.len();
                // Sort first so the shuffle is deterministic given the seed,
                // independent of HashMap iteration order.
                candidates.sort_by_key(|(p, _)| *p);
                for i in 0..count.min(n) {
                    let j = self.rng.gen_range(i..n);
                    candidates.swap(i, j);
                }
            }
        }
        candidates
            .into_iter()
            .take(count)
            .map(|(p, _)| VirtPage::new(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> VirtPage {
        VirtPage::new(n)
    }

    fn set_with_pages(policy: Policy) -> PinnedSet {
        let mut s = PinnedSet::new(policy, 42);
        for i in 0..4 {
            s.insert(page(i));
        }
        // Access pattern: page 0 oldest & least used; page 3 newest;
        // page 1 most frequently used.
        s.touch(page(1));
        s.touch(page(1));
        s.touch(page(2));
        s.touch(page(3));
        s
    }

    #[test]
    fn lru_selects_oldest() {
        let mut s = set_with_pages(Policy::Lru);
        assert_eq!(s.select_victims(1), vec![page(0)]);
    }

    #[test]
    fn mru_selects_newest() {
        let mut s = set_with_pages(Policy::Mru);
        assert_eq!(s.select_victims(1), vec![page(3)]);
    }

    #[test]
    fn lfu_selects_least_used() {
        let mut s = set_with_pages(Policy::Lfu);
        // Page 0 has 1 use and is the least recently used tie-breaker.
        assert_eq!(s.select_victims(1), vec![page(0)]);
    }

    #[test]
    fn mfu_selects_most_used() {
        let mut s = set_with_pages(Policy::Mfu);
        // Page 1 has 3 uses (insert + 2 touches).
        assert_eq!(s.select_victims(1), vec![page(1)]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_within_set() {
        let mut a = set_with_pages(Policy::Random);
        let mut b = set_with_pages(Policy::Random);
        assert_eq!(a.select_victims(2), b.select_victims(2));
        let vs = a.select_victims(4);
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn outstanding_pages_are_never_victims() {
        let mut s = set_with_pages(Policy::Lru);
        s.hold(page(0));
        s.hold(page(0));
        assert_eq!(s.select_victims(1), vec![page(1)]);
        assert_eq!(s.evictable(), 3);
        s.release(page(0));
        assert_eq!(s.select_victims(1), vec![page(1)], "still one hold left");
        s.release(page(0));
        assert_eq!(s.select_victims(1), vec![page(0)]);
        // Releasing an unheld page is a no-op.
        s.release(page(2));
    }

    #[test]
    fn select_caps_at_evictable_count() {
        let mut s = set_with_pages(Policy::Lru);
        s.hold(page(2));
        let vs = s.select_victims(10);
        assert_eq!(vs.len(), 3);
        assert!(!vs.contains(&page(2)));
    }

    #[test]
    fn remove_and_contains() {
        let mut s = set_with_pages(Policy::Lru);
        assert!(s.contains(page(1)));
        s.remove(page(1));
        assert!(!s.contains(page(1)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn policy_display_and_all() {
        assert_eq!(Policy::ALL.len(), 5);
        assert_eq!(Policy::Lru.to_string(), "LRU");
        assert_eq!(Policy::Random.to_string(), "RANDOM");
        assert_eq!(Policy::default(), Policy::Lru);
    }

    #[test]
    fn touch_of_untracked_page_is_noop() {
        let mut s = PinnedSet::new(Policy::Lru, 0);
        s.touch(page(9));
        assert!(s.is_empty());
    }
}
