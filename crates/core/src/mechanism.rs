//! The unified mechanism API.
//!
//! The paper evaluates competing ways to translate addresses on the NIC —
//! the three UTLB variants of §3 and the interrupt-based baseline (§6.2) —
//! under identical workloads and cache structures. [`TranslationMechanism`]
//! captures the surface that comparison needs (register, translate, read
//! out statistics, attach a probe), so drivers can be written once and
//! instantiated per mechanism instead of duplicating the replay loop per
//! engine.

use crate::obs::Probe;
use crate::{
    CacheStats, IndexedEngine, IntrEngine, LookupBatch, OutcomeBuf, PageOutcome, PerProcessEngine,
    Result, TranslationStats, UtlbEngine,
};
use utlb_mem::{Host, ProcessId, VirtPage};
use utlb_nic::Board;

/// A NIC address-translation mechanism, as the simulation drives one.
///
/// Implemented by all four engines: [`PerProcessEngine`] (per-process UTLB,
/// §3.1), [`IndexedEngine`] (Shared UTLB-Cache over indexed tables, §3.2),
/// [`UtlbEngine`] (Hierarchical UTLB, §3.3), and [`IntrEngine`]
/// (interrupt-based baseline, §6.2). Per-page outcomes are normalized to
/// [`PageOutcome`]; the interrupt-based design has no user-level check, so
/// its outcomes always report `check_miss: false`, and the per-process UTLB
/// reads a statically allocated SRAM table, so its outcomes always report
/// `ni_miss: false`.
pub trait TranslationMechanism {
    /// Short human-readable mechanism name ("UTLB", "Intr").
    fn name(&self) -> &'static str;

    /// Whether pin/unpin work runs inside the host interrupt handler.
    ///
    /// The interrupt-based baseline does all pinning in interrupt context,
    /// so a contention model must queue that work behind host interrupt
    /// service; UTLB pins from the kernel top half on the miss path, where
    /// it serializes with the translation itself. Drivers use this to route
    /// each mechanism's miss-time work to the right contended resource.
    fn kernel_pins(&self) -> bool;

    /// Registers `pid` with the mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::AlreadyRegistered`](crate::UtlbError) on a
    /// duplicate and propagates resource exhaustion.
    fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()>;

    /// Removes `pid`, releasing its pins and any NIC state.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`](crate::UtlbError) if
    /// unknown.
    fn unregister_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()>;

    /// Translates `npages` pages starting at `start`.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors.
    fn lookup_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<PageOutcome>>;

    /// Translates a batch into a caller-owned buffer, appending one outcome
    /// per page — the allocation-free path the replay runners drive.
    ///
    /// Outcomes, statistics, probe events, and clock charges are identical
    /// to [`lookup_run`](TranslationMechanism::lookup_run); only the
    /// software overhead differs. The default implementation delegates to
    /// the scalar path; the four engines override it with fast paths that
    /// resolve per-process state once per record and coalesce runs of
    /// consecutive hit pages.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors, as for
    /// [`lookup_run`](TranslationMechanism::lookup_run).
    fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        batch: LookupBatch,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        let pages = self.lookup_run(host, board, batch.pid, batch.start, batch.npages)?;
        out.extend_from_slice(&pages);
        Ok(())
    }

    /// Per-process statistics.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`](crate::UtlbError) if
    /// unknown.
    fn stats(&self, pid: ProcessId) -> Result<TranslationStats>;

    /// Statistics summed over all processes.
    fn aggregate_stats(&self) -> TranslationStats;

    /// NIC translation-cache counters.
    fn cache_stats(&self) -> CacheStats;

    /// Attaches an observability probe (see [`crate::obs`]), replacing and
    /// returning any previous one.
    fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>>;

    /// Detaches and returns the probe, if one was attached.
    fn take_probe(&mut self) -> Option<Box<dyn Probe>>;
}

impl TranslationMechanism for UtlbEngine {
    fn name(&self) -> &'static str {
        "UTLB"
    }

    fn kernel_pins(&self) -> bool {
        false
    }

    fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        UtlbEngine::register_process(self, host, board, pid)
    }

    fn unregister_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        UtlbEngine::unregister_process(self, host, board, pid)
    }

    fn lookup_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<PageOutcome>> {
        UtlbEngine::lookup(self, host, board, pid, start, npages).map(|r| r.pages)
    }

    fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        batch: LookupBatch,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        UtlbEngine::lookup_run_into(self, host, board, batch.pid, batch.start, batch.npages, out)
    }

    fn stats(&self, pid: ProcessId) -> Result<TranslationStats> {
        UtlbEngine::stats(self, pid)
    }

    fn aggregate_stats(&self) -> TranslationStats {
        UtlbEngine::aggregate_stats(self)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }

    fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        UtlbEngine::set_probe(self, probe)
    }

    fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        UtlbEngine::take_probe(self)
    }
}

impl TranslationMechanism for PerProcessEngine {
    fn name(&self) -> &'static str {
        "PerProc"
    }

    fn kernel_pins(&self) -> bool {
        false
    }

    fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        PerProcessEngine::register_process(self, host, board, pid)
    }

    fn unregister_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        PerProcessEngine::unregister_process(self, host, board, pid)
    }

    fn lookup_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<PageOutcome>> {
        let mut out = Vec::with_capacity(npages as usize);
        for page in start.range(npages) {
            out.push(PerProcessEngine::lookup(self, host, board, pid, page)?);
        }
        Ok(out)
    }

    fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        batch: LookupBatch,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        PerProcessEngine::lookup_run_into(
            self,
            host,
            board,
            batch.pid,
            batch.start,
            batch.npages,
            out,
        )
    }

    fn stats(&self, pid: ProcessId) -> Result<TranslationStats> {
        PerProcessEngine::stats(self, pid)
    }

    fn aggregate_stats(&self) -> TranslationStats {
        PerProcessEngine::aggregate_stats(self)
    }

    fn cache_stats(&self) -> CacheStats {
        // The NIC reads the SRAM table directly — there is no shared cache
        // in this design, so the counters are identically zero.
        CacheStats::default()
    }

    fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        PerProcessEngine::set_probe(self, probe)
    }

    fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        PerProcessEngine::take_probe(self)
    }
}

impl TranslationMechanism for IndexedEngine {
    fn name(&self) -> &'static str {
        "Indexed"
    }

    fn kernel_pins(&self) -> bool {
        false
    }

    fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        IndexedEngine::register_process(self, host, board, pid)
    }

    fn unregister_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        IndexedEngine::unregister_process(self, host, board, pid)
    }

    fn lookup_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<PageOutcome>> {
        let mut out = Vec::with_capacity(npages as usize);
        for page in start.range(npages) {
            out.push(IndexedEngine::lookup(self, host, board, pid, page)?);
        }
        Ok(out)
    }

    fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        batch: LookupBatch,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        IndexedEngine::lookup_run_into(self, host, board, batch.pid, batch.start, batch.npages, out)
    }

    fn stats(&self, pid: ProcessId) -> Result<TranslationStats> {
        IndexedEngine::stats(self, pid)
    }

    fn aggregate_stats(&self) -> TranslationStats {
        IndexedEngine::aggregate_stats(self)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }

    fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        IndexedEngine::set_probe(self, probe)
    }

    fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        IndexedEngine::take_probe(self)
    }
}

impl TranslationMechanism for IntrEngine {
    fn name(&self) -> &'static str {
        "Intr"
    }

    fn kernel_pins(&self) -> bool {
        true
    }

    fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        IntrEngine::register_process(self, host, board, pid)
    }

    fn unregister_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        IntrEngine::unregister_process(self, host, board, pid)
    }

    fn lookup_run(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<PageOutcome>> {
        IntrEngine::lookup(self, host, board, pid, start, npages).map(|outcomes| {
            outcomes
                .into_iter()
                .map(|o| PageOutcome {
                    page: o.page,
                    phys: o.phys,
                    // No user-level check exists in this design.
                    check_miss: false,
                    ni_miss: o.ni_miss,
                })
                .collect()
        })
    }

    fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        batch: LookupBatch,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        IntrEngine::lookup_run_into(self, host, board, batch.pid, batch.start, batch.npages, out)
    }

    fn stats(&self, pid: ProcessId) -> Result<TranslationStats> {
        IntrEngine::stats(self, pid)
    }

    fn aggregate_stats(&self) -> TranslationStats {
        IntrEngine::aggregate_stats(self)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }

    fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        IntrEngine::set_probe(self, probe)
    }

    fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        IntrEngine::take_probe(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, IndexedConfig, IntrConfig, PerProcessConfig, UtlbConfig};

    fn drive<M: TranslationMechanism>(mut mech: M) -> (TranslationStats, CacheStats) {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let pid = host.spawn_process();
        mech.register_process(&mut host, &mut board, pid).unwrap();
        for round in 0..2 {
            let pages = mech
                .lookup_run(&mut host, &mut board, pid, VirtPage::new(40), 4)
                .unwrap();
            assert_eq!(pages.len(), 4);
            assert!(pages.iter().all(|p| p.ni_miss == (round == 0)));
        }
        let per = mech.stats(pid).unwrap();
        let agg = mech.aggregate_stats();
        assert_eq!(per, agg, "single process: per == aggregate");
        mech.unregister_process(&mut host, &mut board, pid).unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
        (agg, mech.cache_stats())
    }

    /// Drives the batched entry point twice into one buffer, checking the
    /// trait contract: `lookup_run_into` *appends* (the caller owns
    /// clearing) and produces the same outcomes as the scalar path.
    fn drive_batched<M: TranslationMechanism>(mut mech: M, mut scalar: M) {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut host_s = Host::new(1 << 16);
        let mut board_s = Board::new();
        let pid = host.spawn_process();
        assert_eq!(host_s.spawn_process(), pid);
        mech.register_process(&mut host, &mut board, pid).unwrap();
        scalar
            .register_process(&mut host_s, &mut board_s, pid)
            .unwrap();
        let mut out = OutcomeBuf::new();
        let mut reference = Vec::new();
        for _ in 0..2 {
            let batch = LookupBatch::new(pid, VirtPage::new(40), 4);
            mech.lookup_run_into(&mut host, &mut board, batch, &mut out)
                .unwrap();
            reference.extend(
                scalar
                    .lookup_run(&mut host_s, &mut board_s, pid, VirtPage::new(40), 4)
                    .unwrap(),
            );
        }
        assert_eq!(out.len(), 8, "two batches appended, none overwritten");
        assert_eq!(out.as_slice(), &reference[..]);
        assert_eq!(board.clock.now(), board_s.clock.now());
        assert_eq!(mech.aggregate_stats(), scalar.aggregate_stats());
        assert_eq!(mech.cache_stats(), scalar.cache_stats());
    }

    #[test]
    fn batched_entry_point_appends_and_matches_scalar_for_all_mechanisms() {
        drive_batched(
            UtlbEngine::new(UtlbConfig::default()),
            UtlbEngine::new(UtlbConfig::default()),
        );
        drive_batched(
            PerProcessEngine::new(PerProcessConfig::default()),
            PerProcessEngine::new(PerProcessConfig::default()),
        );
        drive_batched(
            IndexedEngine::new(IndexedConfig::default()),
            IndexedEngine::new(IndexedConfig::default()),
        );
        drive_batched(
            IntrEngine::new(IntrConfig::default()),
            IntrEngine::new(IntrConfig::default()),
        );
    }

    #[test]
    fn both_engines_run_through_the_trait() {
        let utlb = UtlbEngine::new(UtlbConfig {
            cache: CacheConfig::direct(64),
            ..UtlbConfig::default()
        });
        assert_eq!(utlb.name(), "UTLB");
        assert!(!utlb.kernel_pins(), "UTLB pins outside interrupt context");
        let (stats, cache) = drive(utlb);
        assert_eq!(stats.lookups, 8);
        assert_eq!(stats.interrupts, 0);
        assert_eq!(cache.misses, 4);

        let intr = IntrEngine::new(IntrConfig {
            cache: CacheConfig::direct(64),
            ..IntrConfig::default()
        });
        assert_eq!(intr.name(), "Intr");
        assert!(intr.kernel_pins(), "the baseline pins inside the handler");
        let (stats, cache) = drive(intr);
        assert_eq!(stats.lookups, 8);
        assert_eq!(stats.interrupts, 4, "the baseline interrupts per miss");
        assert_eq!(cache.misses, 4);
    }

    #[test]
    fn section_three_variants_run_through_the_trait() {
        let indexed = IndexedEngine::new(IndexedConfig {
            cache: CacheConfig::direct(64),
            table_entries: 64,
            ..IndexedConfig::default()
        });
        assert_eq!(indexed.name(), "Indexed");
        assert!(!indexed.kernel_pins(), "§3.2 pins via a user-level ioctl");
        let (stats, cache) = drive(indexed);
        assert_eq!(stats.lookups, 8);
        assert_eq!(stats.interrupts, 0);
        assert_eq!(cache.misses, 4);

        // The per-process table never NI-misses, so it cannot go through
        // `drive`'s per-round miss assertions: every outcome reports a hit
        // on the NIC and the whole story happens at the user-level check.
        let mut pp = PerProcessEngine::new(PerProcessConfig {
            table_entries: 64,
            ..PerProcessConfig::default()
        });
        assert_eq!(pp.name(), "PerProc");
        assert!(!pp.kernel_pins(), "§3.1 pins via a user-level ioctl");
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let pid = host.spawn_process();
        TranslationMechanism::register_process(&mut pp, &mut host, &mut board, pid).unwrap();
        for round in 0..2 {
            let pages = pp
                .lookup_run(&mut host, &mut board, pid, VirtPage::new(40), 4)
                .unwrap();
            assert_eq!(pages.len(), 4);
            assert!(pages.iter().all(|p| !p.ni_miss), "never NI-misses");
            assert!(pages.iter().all(|p| p.check_miss == (round == 0)));
        }
        assert_eq!(pp.aggregate_stats().lookups, 8);
        assert_eq!(pp.cache_stats(), CacheStats::default());
        TranslationMechanism::unregister_process(&mut pp, &mut host, &mut board, pid).unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
    }
}
