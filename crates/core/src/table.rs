//! The per-process UTLB translation table (paper §3.1).
//!
//! A fixed-size table in NIC SRAM, one per process, holding physical
//! addresses of pinned pages. The table is protected — invisible to the user
//! process — but *user-managed*: the process chooses the slots where the
//! driver stores translations, and passes slot indices to the NIC with each
//! request. Every slot is initialized with the garbage page's physical
//! address (§4.2), so the NIC never validates indices.
//!
//! This variant suffers *fragmentation*: after complex access patterns a
//! buffer's translations may be scattered through the table — one of the
//! reasons §3.3 introduces Hierarchical-UTLB, which this crate also
//! implements in [`crate::HierTable`].

use crate::lookup::UtlbIndex;
use crate::{Result, UtlbError};
use utlb_mem::{PhysAddr, ProcessId};
use utlb_nic::{Sram, SramRegion};

/// A per-process translation table resident in NIC SRAM.
#[derive(Debug)]
pub struct PerProcessTable {
    pid: ProcessId,
    region: SramRegion,
    capacity: usize,
    free: Vec<u32>,
    garbage: PhysAddr,
}

impl PerProcessTable {
    /// Allocates a table of `capacity` entries in `sram` for `pid`, with
    /// every slot initialized to the garbage address.
    ///
    /// # Errors
    ///
    /// Propagates SRAM exhaustion — the board limitation motivating the
    /// Shared UTLB-Cache.
    pub fn new(
        pid: ProcessId,
        capacity: usize,
        sram: &mut Sram,
        garbage: PhysAddr,
    ) -> Result<Self> {
        let region = sram.alloc(capacity as u64 * 8).map_err(UtlbError::Nic)?;
        for i in 0..capacity {
            sram.write_u64(region.at(i as u64 * 8), garbage.raw())
                .map_err(UtlbError::Nic)?;
        }
        Ok(PerProcessTable {
            pid,
            region,
            capacity,
            free: (0..capacity as u32).rev().collect(),
            garbage,
        })
    }

    /// Owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Table capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Reserves a free slot, if any.
    pub fn alloc_slot(&mut self) -> Option<UtlbIndex> {
        self.free.pop().map(UtlbIndex)
    }

    /// Stores `phys` at `index` (the driver half of the install `ioctl`).
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors.
    ///
    /// # Panics
    ///
    /// Panics if the index is beyond the table capacity — indices come from
    /// [`PerProcessTable::alloc_slot`], so an out-of-range one is a bug.
    pub fn install(&mut self, index: UtlbIndex, phys: PhysAddr, sram: &mut Sram) -> Result<()> {
        assert!((index.0 as usize) < self.capacity, "index out of range");
        sram.write_u64(self.region.at(index.0 as u64 * 8), phys.raw())
            .map_err(UtlbError::Nic)?;
        Ok(())
    }

    /// Invalidates `index`: rewrites the garbage address and frees the slot.
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors.
    pub fn evict(&mut self, index: UtlbIndex, sram: &mut Sram) -> Result<()> {
        assert!((index.0 as usize) < self.capacity, "index out of range");
        sram.write_u64(self.region.at(index.0 as u64 * 8), self.garbage.raw())
            .map_err(UtlbError::Nic)?;
        self.free.push(index.0);
        Ok(())
    }

    /// The NIC-side read: returns the physical address stored at `index`.
    ///
    /// By the garbage-page design this *never fails* for in-range indices —
    /// a stale or wrong index yields the harmless garbage address. Indices
    /// past the table end are clamped onto the garbage page too, matching
    /// the "no validity checking" contract.
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors (simulator-internal only).
    pub fn read(&self, index: UtlbIndex, sram: &Sram) -> Result<PhysAddr> {
        if (index.0 as usize) >= self.capacity {
            return Ok(self.garbage);
        }
        let raw = sram
            .read_u64(self.region.at(index.0 as u64 * 8))
            .map_err(UtlbError::Nic)?;
        Ok(PhysAddr::new(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: usize) -> (Sram, PerProcessTable) {
        let mut sram = Sram::new(1 << 16);
        let t = PerProcessTable::new(
            ProcessId::new(1),
            capacity,
            &mut sram,
            PhysAddr::new(0x00BA_D000),
        )
        .unwrap();
        (sram, t)
    }

    #[test]
    fn fresh_table_reads_garbage_everywhere() {
        let (sram, t) = setup(8);
        for i in 0..8 {
            assert_eq!(
                t.read(UtlbIndex(i), &sram).unwrap(),
                PhysAddr::new(0x00BA_D000)
            );
        }
        // Out-of-range index also lands on garbage, never an error.
        assert_eq!(
            t.read(UtlbIndex(999), &sram).unwrap(),
            PhysAddr::new(0x00BA_D000)
        );
    }

    #[test]
    fn install_then_read_then_evict() {
        let (mut sram, mut t) = setup(4);
        let idx = t.alloc_slot().unwrap();
        t.install(idx, PhysAddr::new(0x0123_4000), &mut sram)
            .unwrap();
        assert_eq!(t.read(idx, &sram).unwrap(), PhysAddr::new(0x0123_4000));
        t.evict(idx, &mut sram).unwrap();
        assert_eq!(t.read(idx, &sram).unwrap(), PhysAddr::new(0x00BA_D000));
        assert_eq!(t.free_slots(), 4);
    }

    #[test]
    fn slots_exhaust_and_recycle() {
        let (mut sram, mut t) = setup(2);
        let a = t.alloc_slot().unwrap();
        let _b = t.alloc_slot().unwrap();
        assert!(t.alloc_slot().is_none());
        t.evict(a, &mut sram).unwrap();
        assert_eq!(t.alloc_slot(), Some(a));
    }

    #[test]
    fn sram_exhaustion_surfaces() {
        let mut sram = Sram::new(64);
        let r = PerProcessTable::new(ProcessId::new(1), 1024, &mut sram, PhysAddr::new(0));
        assert!(matches!(r, Err(UtlbError::Nic(_))));
    }
}
