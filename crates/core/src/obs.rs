//! Structured observability for the translation engines.
//!
//! The paper's entire argument rests on *where* translation time goes —
//! user-level check vs. NIC cache probe vs. DMA table fetch vs. host
//! interrupt (§6.2's cost breakdown) — yet end-of-run counters alone cannot
//! explain a surprising sweep cell after the fact. This module adds a
//! per-event attribution substrate:
//!
//! * [`Probe`] — a lightweight trait engines emit typed [`Event`]s into.
//!   Engines hold a [`ProbeSlot`] that defaults to *detached*; with no
//!   probe attached the emission path is a single `Option` branch, so the
//!   hot path keeps its cost (guarded by the criterion `sweep` bench and
//!   `scripts/ci.sh`'s overhead gate).
//! * [`Histogram`] — log₂-bucketed latency accounting, mergeable across
//!   sweep workers.
//! * [`Metrics`] — per-event counters plus pin/unpin/DMA/interrupt/lookup
//!   latency histograms, reconcilable against [`TranslationStats`].
//! * [`TraceRecorder`] — a bounded per-process ring of the most recent
//!   events, for post-mortem dumps of a run that went sideways.
//! * [`ObsCollector`] / [`SharedCollector`] — the standard probe stack the
//!   simulation runners attach: metrics + recorder behind an `Rc` so the
//!   caller keeps a handle while the engine owns the boxed probe.

use crate::TranslationStats;
use serde::{DeError, Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use utlb_mem::ProcessId;

/// Why a resident translation (or pinned page) was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictReason {
    /// The per-process pinned-memory limit forced an unpin (§3.4).
    MemLimit,
    /// A Shared UTLB-Cache set conflict displaced the line (§3.2).
    CacheConflict,
    /// A fixed-size translation table ran out of free slots (§3.1/§3.2).
    TableFull,
}

/// A shared station a translation can queue at (see `utlb-des` and
/// `utlb-sim::run_des`): which device a [`Event::Wait`] was spent behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitResource {
    /// The NIC firmware processor serializing translation requests.
    Firmware,
    /// The NIC DMA engine (per-transfer programming).
    DmaEngine,
    /// The shared I/O bus (data movement).
    Bus,
    /// Host interrupt service (dispatch + handler occupancy).
    IntrService,
    /// The host memory system serializing pin/unpin driver work — shared
    /// across boards by the cluster runner (`utlb-sim::cluster`).
    HostMem,
}

/// One observable step of a translation engine.
///
/// Latencies are simulated nanoseconds charged to the board clock, so the
/// histogram totals reconcile exactly with the engines' own accounting.
///
/// Serializes as an object tagged by an `event` field, e.g.
/// `{"event": "DmaFetch", "entries": 8, "ns": 2500}` (implemented by hand:
/// the vendored serde derive covers only unit enum variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// One page-granular lookup completed, taking `ns` of simulated time
    /// end to end (user-level check through NIC resolution).
    Lookup {
        /// Simulated nanoseconds the lookup consumed.
        ns: u64,
    },
    /// The user-level check found an unpinned page in the run.
    CheckMiss,
    /// The NIC translation cache (or table) missed.
    NiMiss,
    /// A DMA fetched translation entries from the host-resident table.
    DmaFetch {
        /// Entries moved by the transfer (> 1 under prefetching, §6.4).
        entries: u64,
        /// Simulated nanoseconds the transfer took on the I/O bus.
        ns: u64,
    },
    /// The NIC interrupted the host.
    Interrupt {
        /// Simulated nanoseconds of handler-dispatch cost.
        ns: u64,
    },
    /// A driver call pinned a run of pages.
    Pin {
        /// Pages pinned by the one `ioctl` (> 1 under prepinning, §6.5).
        run: u64,
        /// Simulated nanoseconds of host time the call took.
        ns: u64,
    },
    /// A driver call unpinned one page.
    Unpin {
        /// Simulated nanoseconds of host time the call took.
        ns: u64,
    },
    /// A translation or pinned page was displaced.
    Evict {
        /// What forced the displacement.
        reason: EvictReason,
    },
    /// A swapped-out second-level table page was brought back (§3.3).
    SwapIn,
    /// Queueing delay spent waiting for a shared station — emitted by the
    /// discrete-event runner (`utlb-sim::run_des`), never by the engines
    /// themselves, so service histograms stay pure device cost and wait
    /// histograms pure contention.
    Wait {
        /// The station waited for.
        resource: WaitResource,
        /// Simulated nanoseconds of queueing delay (0 when uncontended).
        ns: u64,
    },
    /// A request-plane peer completed its handshake and was registered
    /// with the board (`utlb-sim::frontend`).
    Connect,
    /// A request-plane peer closed gracefully and was unregistered,
    /// releasing its pinned pages.
    Close,
    /// A request stalled at the admission point because the connection's
    /// credit window was exhausted — emitted by the request-plane front
    /// end, one event per stalled admission.
    Backpressure {
        /// Simulated nanoseconds the request waited for a credit.
        ns: u64,
    },
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let (kind, fields) = match *self {
            Event::Lookup { ns } => ("Lookup", vec![("ns", Value::U64(ns))]),
            Event::CheckMiss => ("CheckMiss", Vec::new()),
            Event::NiMiss => ("NiMiss", Vec::new()),
            Event::DmaFetch { entries, ns } => (
                "DmaFetch",
                vec![("entries", Value::U64(entries)), ("ns", Value::U64(ns))],
            ),
            Event::Interrupt { ns } => ("Interrupt", vec![("ns", Value::U64(ns))]),
            Event::Pin { run, ns } => (
                "Pin",
                vec![("run", Value::U64(run)), ("ns", Value::U64(ns))],
            ),
            Event::Unpin { ns } => ("Unpin", vec![("ns", Value::U64(ns))]),
            Event::Evict { reason } => ("Evict", vec![("reason", reason.to_value())]),
            Event::SwapIn => ("SwapIn", Vec::new()),
            Event::Wait { resource, ns } => (
                "Wait",
                vec![("resource", resource.to_value()), ("ns", Value::U64(ns))],
            ),
            Event::Connect => ("Connect", Vec::new()),
            Event::Close => ("Close", Vec::new()),
            Event::Backpressure { ns } => ("Backpressure", vec![("ns", Value::U64(ns))]),
        };
        let mut obj = vec![("event".to_string(), Value::Str(kind.to_string()))];
        obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        Value::Object(obj)
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let obj = match v {
            Value::Object(entries) => entries,
            _ => return Err(DeError::custom("Event: expected object")),
        };
        let get = |name: &str| -> std::result::Result<u64, DeError> {
            match serde::field(obj, name, "Event")? {
                Value::U64(n) => Ok(*n),
                Value::I64(n) if *n >= 0 => Ok(*n as u64),
                _ => Err(DeError::custom(format!("Event.{name}: expected u64"))),
            }
        };
        let kind = match serde::field(obj, "event", "Event")? {
            Value::Str(s) => s.as_str(),
            _ => return Err(DeError::custom("Event.event: expected string tag")),
        };
        match kind {
            "Lookup" => Ok(Event::Lookup { ns: get("ns")? }),
            "CheckMiss" => Ok(Event::CheckMiss),
            "NiMiss" => Ok(Event::NiMiss),
            "DmaFetch" => Ok(Event::DmaFetch {
                entries: get("entries")?,
                ns: get("ns")?,
            }),
            "Interrupt" => Ok(Event::Interrupt { ns: get("ns")? }),
            "Pin" => Ok(Event::Pin {
                run: get("run")?,
                ns: get("ns")?,
            }),
            "Unpin" => Ok(Event::Unpin { ns: get("ns")? }),
            "Evict" => Ok(Event::Evict {
                reason: EvictReason::from_value(serde::field(obj, "reason", "Event")?)?,
            }),
            "SwapIn" => Ok(Event::SwapIn),
            "Wait" => Ok(Event::Wait {
                resource: WaitResource::from_value(serde::field(obj, "resource", "Event")?)?,
                ns: get("ns")?,
            }),
            "Connect" => Ok(Event::Connect),
            "Close" => Ok(Event::Close),
            "Backpressure" => Ok(Event::Backpressure { ns: get("ns")? }),
            other => Err(DeError::custom(format!("Event: unknown tag `{other}`"))),
        }
    }
}

/// A sink for engine events.
///
/// Implementations must be cheap: probes run inline on the simulated fast
/// path. The engines attach at most one probe; fan-out belongs inside a
/// composite probe, not in the engines.
pub trait Probe: std::fmt::Debug {
    /// Receives one event attributed to `pid`.
    fn on_event(&mut self, pid: ProcessId, event: Event);
}

/// Logs `msg()` to stderr exactly once per `topic` per process.
///
/// For facts that hold for a whole batch run — e.g. the sweep executor's
/// resolved worker count and where it came from — where per-call logging
/// would drown a 140-cell grid's output but zero logging leaves the
/// archive guessing at the topology. `msg` is only rendered on the first
/// call for its topic.
pub fn note_once(topic: &str, msg: impl FnOnce() -> String) {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static SEEN: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut seen = seen.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if seen.insert(topic.to_string()) {
        eprintln!("[utlb:{topic}] {}", msg());
    }
}

/// A probe that discards everything — for overhead measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    #[inline]
    fn on_event(&mut self, _pid: ProcessId, _event: Event) {}
}

/// The engine-side attachment point: either detached (the default, a single
/// branch per would-be event) or one boxed [`Probe`].
#[derive(Debug, Default)]
pub struct ProbeSlot(Option<Box<dyn Probe>>);

impl ProbeSlot {
    /// A detached slot.
    pub fn detached() -> Self {
        ProbeSlot(None)
    }

    /// Attaches `probe`, replacing and returning any previous one.
    pub fn attach(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        self.0.replace(probe)
    }

    /// Detaches and returns the probe, if one was attached.
    pub fn detach(&mut self) -> Option<Box<dyn Probe>> {
        self.0.take()
    }

    /// Whether a probe is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits `event` if a probe is attached; a no-op branch otherwise.
    #[inline]
    pub fn emit(&mut self, pid: ProcessId, event: Event) {
        if let Some(p) = self.0.as_mut() {
            p.on_event(pid, event);
        }
    }
}

/// A log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples with `floor(log2(ns)) == i - 1`; bucket 0
/// counts zero-nanosecond samples. Buckets grow lazily, so a histogram that
/// only ever sees microsecond-scale values serializes compactly. Histograms
/// from different sweep workers [`merge`](Histogram::merge) losslessly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Occupied log₂ buckets, lowest first.
    buckets: Vec<u64>,
    /// Samples recorded.
    count: u64,
    /// Sum of all samples, in nanoseconds.
    sum: u64,
    /// Smallest sample seen (0 when empty).
    min: u64,
    /// Largest sample seen.
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index of a nanosecond value: 0 for 0, else `floor(log2) + 1`.
    fn bucket_of(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        let b = Self::bucket_of(ns);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 || ns < self.min {
            self.min = ns;
        }
        self.max = self.max.max(ns);
        self.count += 1;
        self.sum += ns;
    }

    /// Folds another histogram in (sweep workers merge into one registry).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile in nanoseconds (`0.0 < q <= 1.0`), from the
    /// log₂ buckets: the upper bound of the bucket holding the
    /// `ceil(q · count)`-th sample, clamped to the observed `[min, max]`
    /// range so p100 is exact and single-bucket histograms report exactly.
    /// Returns 0 when empty. Deterministic: a pure function of the recorded
    /// samples, so merged worker histograms report identical quantiles
    /// regardless of merge order.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0;
        }
        // ceil(q * count) without floating-point edge surprises at q=1.0.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `(lower_ns, upper_ns, count)` for each occupied bucket — the shape a
    /// textual or JSON rendering wants.
    pub fn occupied_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(b, n)| {
                let (lo, hi) = if b == 0 {
                    (0, 0)
                } else {
                    (1u64 << (b - 1), (1u64 << b) - 1)
                };
                (lo, hi, *n)
            })
            .collect()
    }
}

/// Per-event-kind counters, reconcilable against [`TranslationStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// [`Event::Lookup`] events.
    pub lookups: u64,
    /// [`Event::CheckMiss`] events.
    pub check_misses: u64,
    /// [`Event::NiMiss`] events.
    pub ni_misses: u64,
    /// [`Event::DmaFetch`] events (one per transfer).
    pub dma_fetches: u64,
    /// Total entries moved across all [`Event::DmaFetch`] events.
    pub entries_fetched: u64,
    /// [`Event::Interrupt`] events.
    pub interrupts: u64,
    /// Total pages pinned across all [`Event::Pin`] events.
    pub pins: u64,
    /// [`Event::Pin`] events (driver calls).
    pub pin_calls: u64,
    /// [`Event::Unpin`] events (one page each).
    pub unpins: u64,
    /// [`Event::Evict`] events.
    pub evictions: u64,
    /// [`Event::SwapIn`] events.
    pub swap_ins: u64,
    /// [`Event::Wait`] events (one per station acquisition under the
    /// discrete-event runner, zero-delay acquisitions included).
    pub waits: u64,
    /// [`Event::Connect`] events (request-plane handshakes completed).
    pub connects: u64,
    /// [`Event::Close`] events (request-plane graceful closes).
    pub closes: u64,
    /// [`Event::Backpressure`] events (credit-window admission stalls).
    pub backpressure: u64,
}

/// The latency metrics registry: one histogram per charged phase plus the
/// event counters. One registry per run; sweep workers each fill their own
/// and [`merge`](Metrics::merge) afterwards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Event counters.
    pub counts: EventCounts,
    /// End-to-end per-page lookup latency.
    pub lookup_ns: Histogram,
    /// Driver pin-call latency.
    pub pin_ns: Histogram,
    /// Driver unpin-call latency.
    pub unpin_ns: Histogram,
    /// Translation-entry DMA latency.
    pub dma_ns: Histogram,
    /// Host interrupt dispatch latency.
    pub intr_ns: Histogram,
    /// Queueing delay behind the NIC firmware processor
    /// ([`WaitResource::Firmware`]).
    pub fw_wait_ns: Histogram,
    /// Queueing delay behind the DMA engine ([`WaitResource::DmaEngine`]).
    pub dma_wait_ns: Histogram,
    /// Queueing delay behind the I/O bus ([`WaitResource::Bus`]).
    pub bus_wait_ns: Histogram,
    /// Queueing delay behind host interrupt service
    /// ([`WaitResource::IntrService`]).
    pub intr_wait_ns: Histogram,
    /// Queueing delay behind the shared host memory system
    /// ([`WaitResource::HostMem`]) — populated only by the cluster runner,
    /// where pin work from many boards funnels through one station.
    pub host_mem_wait_ns: Histogram,
    /// Credit-window admission stall latency ([`Event::Backpressure`]) —
    /// populated only by the request-plane front end
    /// (`utlb-sim::frontend`).
    pub backpressure_ns: Histogram,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Routes one event into the counters and histograms.
    pub fn record(&mut self, event: Event) {
        match event {
            Event::Lookup { ns } => {
                self.counts.lookups += 1;
                self.lookup_ns.record(ns);
            }
            Event::CheckMiss => self.counts.check_misses += 1,
            Event::NiMiss => self.counts.ni_misses += 1,
            Event::DmaFetch { entries, ns } => {
                self.counts.dma_fetches += 1;
                self.counts.entries_fetched += entries;
                self.dma_ns.record(ns);
            }
            Event::Interrupt { ns } => {
                self.counts.interrupts += 1;
                self.intr_ns.record(ns);
            }
            Event::Pin { run, ns } => {
                self.counts.pins += run;
                self.counts.pin_calls += 1;
                self.pin_ns.record(ns);
            }
            Event::Unpin { ns } => {
                self.counts.unpins += 1;
                self.unpin_ns.record(ns);
            }
            Event::Evict { .. } => self.counts.evictions += 1,
            Event::SwapIn => self.counts.swap_ins += 1,
            Event::Wait { resource, ns } => {
                self.counts.waits += 1;
                match resource {
                    WaitResource::Firmware => self.fw_wait_ns.record(ns),
                    WaitResource::DmaEngine => self.dma_wait_ns.record(ns),
                    WaitResource::Bus => self.bus_wait_ns.record(ns),
                    WaitResource::IntrService => self.intr_wait_ns.record(ns),
                    WaitResource::HostMem => self.host_mem_wait_ns.record(ns),
                }
            }
            Event::Connect => self.counts.connects += 1,
            Event::Close => self.counts.closes += 1,
            Event::Backpressure { ns } => {
                self.counts.backpressure += 1;
                self.backpressure_ns.record(ns);
            }
        }
    }

    /// Total queueing delay across all stations, in nanoseconds — the
    /// contention surcharge on top of the serial cost model.
    pub fn total_wait_ns(&self) -> u64 {
        self.fw_wait_ns.sum_ns()
            + self.dma_wait_ns.sum_ns()
            + self.bus_wait_ns.sum_ns()
            + self.intr_wait_ns.sum_ns()
            + self.host_mem_wait_ns.sum_ns()
    }

    /// Folds another registry in.
    pub fn merge(&mut self, other: &Metrics) {
        let c = &mut self.counts;
        let o = other.counts;
        c.lookups += o.lookups;
        c.check_misses += o.check_misses;
        c.ni_misses += o.ni_misses;
        c.dma_fetches += o.dma_fetches;
        c.entries_fetched += o.entries_fetched;
        c.interrupts += o.interrupts;
        c.pins += o.pins;
        c.pin_calls += o.pin_calls;
        c.unpins += o.unpins;
        c.evictions += o.evictions;
        c.swap_ins += o.swap_ins;
        c.waits += o.waits;
        c.connects += o.connects;
        c.closes += o.closes;
        c.backpressure += o.backpressure;
        self.lookup_ns.merge(&other.lookup_ns);
        self.pin_ns.merge(&other.pin_ns);
        self.unpin_ns.merge(&other.unpin_ns);
        self.dma_ns.merge(&other.dma_ns);
        self.intr_ns.merge(&other.intr_ns);
        self.fw_wait_ns.merge(&other.fw_wait_ns);
        self.dma_wait_ns.merge(&other.dma_wait_ns);
        self.bus_wait_ns.merge(&other.bus_wait_ns);
        self.intr_wait_ns.merge(&other.intr_wait_ns);
        self.host_mem_wait_ns.merge(&other.host_mem_wait_ns);
        self.backpressure_ns.merge(&other.backpressure_ns);
    }

    /// Cross-checks the event-derived totals against an engine's own
    /// counters. Returns one human-readable line per mismatch; empty means
    /// the two accountings agree exactly.
    pub fn reconcile(&self, stats: &TranslationStats) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, obs: u64, eng: u64| {
            if obs != eng {
                out.push(format!("{name}: observed {obs} != engine {eng}"));
            }
        };
        check("lookups", self.counts.lookups, stats.lookups);
        check("check_misses", self.counts.check_misses, stats.check_misses);
        check("ni_misses", self.counts.ni_misses, stats.ni_misses);
        check("pins", self.counts.pins, stats.pins);
        check("pin_calls", self.counts.pin_calls, stats.pin_calls);
        check("unpins", self.counts.unpins, stats.unpins);
        check("unpin_calls", self.counts.unpins, stats.unpin_calls);
        check(
            "entries_fetched",
            self.counts.entries_fetched,
            stats.entries_fetched,
        );
        check("interrupts", self.counts.interrupts, stats.interrupts);
        check("pin_time_ns", self.pin_ns.sum_ns(), stats.pin_time_ns);
        check("unpin_time_ns", self.unpin_ns.sum_ns(), stats.unpin_time_ns);
        out
    }
}

impl Probe for Metrics {
    fn on_event(&mut self, _pid: ProcessId, event: Event) {
        self.record(event);
    }
}

/// One recorded event with its global sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Position in the run's global event order (starts at 0).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// The ring dump for one process, as serialized by an obs export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessTrace {
    /// Raw process id.
    pub pid: u32,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// The most recent events, oldest first.
    pub events: Vec<TimedEvent>,
}

/// A bounded ring of the last `capacity` events per process — enough to
/// explain *how* a run reached a surprising state without retaining the
/// full event stream.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    capacity: usize,
    rings: HashMap<ProcessId, (VecDeque<TimedEvent>, u64)>,
    seq: u64,
}

impl TraceRecorder {
    /// A recorder keeping the last `capacity` events per process.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a ring that can hold nothing records
    /// nothing and hides the misconfiguration.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        TraceRecorder {
            capacity,
            rings: HashMap::new(),
            seq: 0,
        }
    }

    /// Per-process ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event for `pid`, evicting the oldest if the ring is full.
    pub fn record(&mut self, pid: ProcessId, event: Event) {
        let entry = self
            .rings
            .entry(pid)
            .or_insert_with(|| (VecDeque::with_capacity(self.capacity.min(64)), 0));
        if entry.0.len() == self.capacity {
            entry.0.pop_front();
            entry.1 += 1;
        }
        entry.0.push_back(TimedEvent {
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Events recorded in total (including ones since evicted).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// The retained events of `pid`, oldest first (empty if unknown).
    pub fn events(&self, pid: ProcessId) -> Vec<TimedEvent> {
        self.rings
            .get(&pid)
            .map(|(ring, _)| ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All rings, sorted by pid — the post-mortem dump.
    pub fn dump(&self) -> Vec<ProcessTrace> {
        let mut out: Vec<ProcessTrace> = self
            .rings
            .iter()
            .map(|(pid, (ring, dropped))| ProcessTrace {
                pid: pid.raw(),
                dropped: *dropped,
                events: ring.iter().copied().collect(),
            })
            .collect();
        out.sort_by_key(|t| t.pid);
        out
    }
}

impl Probe for TraceRecorder {
    fn on_event(&mut self, pid: ProcessId, event: Event) {
        self.record(pid, event);
    }
}

/// The standard probe stack: metrics registry + bounded event recorder.
#[derive(Debug, Clone)]
pub struct ObsCollector {
    /// Counters and latency histograms.
    pub metrics: Metrics,
    /// Last-events ring per process.
    pub recorder: TraceRecorder,
}

impl ObsCollector {
    /// A collector whose recorder keeps `ring_capacity` events per process.
    pub fn new(ring_capacity: usize) -> Self {
        ObsCollector {
            metrics: Metrics::new(),
            recorder: TraceRecorder::new(ring_capacity),
        }
    }
}

impl Probe for ObsCollector {
    fn on_event(&mut self, pid: ProcessId, event: Event) {
        self.metrics.record(event);
        self.recorder.record(pid, event);
    }
}

/// A cloneable handle to an [`ObsCollector`]: hand [`boxed`] copies to
/// engines, keep one handle, and [`snapshot`] after the run. Single-threaded
/// by design — each sweep worker builds its own collector and the merged
/// [`Metrics`] cross threads as plain data.
///
/// [`boxed`]: SharedCollector::boxed
/// [`snapshot`]: SharedCollector::snapshot
#[derive(Debug, Clone)]
pub struct SharedCollector(Rc<RefCell<ObsCollector>>);

impl SharedCollector {
    /// A fresh collector with the given per-process ring capacity.
    pub fn new(ring_capacity: usize) -> Self {
        SharedCollector(Rc::new(RefCell::new(ObsCollector::new(ring_capacity))))
    }

    /// A boxed probe for an engine, sharing this collector.
    pub fn boxed(&self) -> Box<dyn Probe> {
        Box::new(self.clone())
    }

    /// A copy of the collector's current state.
    pub fn snapshot(&self) -> ObsCollector {
        self.0.borrow().clone()
    }
}

impl Probe for SharedCollector {
    fn on_event(&mut self, pid: ProcessId, event: Event) {
        self.0.borrow_mut().on_event(pid, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for ns in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_ns(), 2034);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 1024);
        let occupied = h.occupied_buckets();
        // 0 → [0,0]; 1 → [1,1]; 2,3 → [2,3]; 4 → [4,7]; 1000 → [512,1023];
        // 1024 → [1024,2047].
        assert_eq!(
            occupied,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 1),
                (512, 1023, 1),
                (1024, 2047, 1),
            ]
        );
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 100 samples: 90 at 100 ns, 9 at 1000 ns, 1 at 100_000 ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(100_000);
        // p50 and p90 land in the [64,127] bucket → upper bound 127.
        assert_eq!(h.quantile_ns(0.5), 127);
        assert_eq!(h.quantile_ns(0.9), 127);
        // p99 lands in the [512,1023] bucket.
        assert_eq!(h.quantile_ns(0.99), 1023);
        // p99.9 and p100 hit the top sample's bucket, clamped to max.
        assert_eq!(h.quantile_ns(0.999), 100_000);
        assert_eq!(h.quantile_ns(1.0), 100_000);
        // Quantiles clamp to [min, max]: a single-valued histogram reports
        // the exact value at every quantile.
        let mut single = Histogram::new();
        single.record(300);
        assert_eq!(single.quantile_ns(0.5), 300);
        assert_eq!(single.quantile_ns(0.999), 300);
        assert_eq!(Histogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn histogram_quantiles_survive_merge_in_any_order() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for ns in [10, 20, 5000] {
            a.record(ns);
        }
        for ns in [15, 700_000] {
            b.record(ns);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(ab.quantile_ns(q), ba.quantile_ns(q));
        }
    }

    #[test]
    fn frontend_events_route_and_merge() {
        let mut m = Metrics::new();
        m.record(Event::Connect);
        m.record(Event::Connect);
        m.record(Event::Close);
        m.record(Event::Backpressure { ns: 4000 });
        assert_eq!(m.counts.connects, 2);
        assert_eq!(m.counts.closes, 1);
        assert_eq!(m.counts.backpressure, 1);
        assert_eq!(m.backpressure_ns.sum_ns(), 4000);
        let mut other = Metrics::new();
        other.record(Event::Backpressure { ns: 1000 });
        other.record(Event::Close);
        m.merge(&other);
        assert_eq!(m.counts.backpressure, 2);
        assert_eq!(m.counts.closes, 2);
        assert_eq!(m.backpressure_ns.count(), 2);
        // Frontend events do not perturb engine reconciliation.
        assert!(m.reconcile(&TranslationStats::default()).is_empty());
    }

    #[test]
    fn histogram_merge_is_lossless() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for ns in [5, 90, 700] {
            a.record(ns);
            whole.record(ns);
        }
        for ns in [1, 40_000] {
            b.record(ns);
            whole.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::new());
        assert_eq!(a, whole);
        // Merging into an empty histogram copies.
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn metrics_route_events_and_reconcile() {
        let mut m = Metrics::new();
        m.record(Event::Lookup { ns: 1000 });
        m.record(Event::Lookup { ns: 3000 });
        m.record(Event::CheckMiss);
        m.record(Event::NiMiss);
        m.record(Event::DmaFetch {
            entries: 4,
            ns: 1500,
        });
        m.record(Event::Interrupt { ns: 10_000 });
        m.record(Event::Pin { run: 8, ns: 47_000 });
        m.record(Event::Unpin { ns: 25_000 });
        m.record(Event::Evict {
            reason: EvictReason::MemLimit,
        });
        m.record(Event::SwapIn);
        m.record(Event::Wait {
            resource: WaitResource::Bus,
            ns: 64,
        });
        m.record(Event::Wait {
            resource: WaitResource::IntrService,
            ns: 5_000,
        });
        assert_eq!(m.counts.lookups, 2);
        assert_eq!(m.counts.entries_fetched, 4);
        assert_eq!(m.counts.pins, 8);
        assert_eq!(m.counts.pin_calls, 1);
        assert_eq!(m.counts.evictions, 1);
        assert_eq!(m.counts.swap_ins, 1);
        assert_eq!(m.counts.waits, 2);
        assert_eq!(m.lookup_ns.mean_ns(), 2000.0);
        assert_eq!(m.bus_wait_ns.sum_ns(), 64);
        assert_eq!(m.intr_wait_ns.sum_ns(), 5_000);
        assert_eq!(m.fw_wait_ns.count(), 0);
        assert_eq!(m.total_wait_ns(), 5_064);

        let stats = TranslationStats {
            lookups: 2,
            check_misses: 1,
            ni_misses: 1,
            pins: 8,
            unpins: 1,
            pin_calls: 1,
            unpin_calls: 1,
            entries_fetched: 4,
            interrupts: 1,
            pin_time_ns: 47_000,
            unpin_time_ns: 25_000,
        };
        assert!(m.reconcile(&stats).is_empty());
        let off = TranslationStats {
            lookups: 3,
            ..stats
        };
        let mismatches = m.reconcile(&off);
        assert_eq!(mismatches.len(), 1);
        assert!(mismatches[0].contains("lookups"));
    }

    #[test]
    fn metrics_merge_adds_everything() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.record(Event::Lookup { ns: 10 });
        a.record(Event::Pin { run: 2, ns: 100 });
        b.record(Event::Lookup { ns: 20 });
        b.record(Event::Unpin { ns: 50 });
        a.merge(&b);
        assert_eq!(a.counts.lookups, 2);
        assert_eq!(a.counts.pins, 2);
        assert_eq!(a.counts.unpins, 1);
        assert_eq!(a.lookup_ns.sum_ns(), 30);
        assert_eq!(a.unpin_ns.sum_ns(), 50);
    }

    #[test]
    fn recorder_ring_keeps_the_tail() {
        let mut r = TraceRecorder::new(3);
        for i in 0..5 {
            r.record(pid(1), Event::Lookup { ns: i });
        }
        r.record(pid(2), Event::CheckMiss);
        let one = r.events(pid(1));
        assert_eq!(one.len(), 3);
        assert_eq!(one[0].seq, 2, "oldest two were evicted");
        assert_eq!(one[2].event, Event::Lookup { ns: 4 });
        assert_eq!(r.events(pid(7)), Vec::new());
        let dump = r.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].pid, 1);
        assert_eq!(dump[0].dropped, 2);
        assert_eq!(dump[1].pid, 2);
        assert_eq!(dump[1].dropped, 0);
        assert_eq!(r.total_recorded(), 6);
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn zero_capacity_recorder_panics() {
        TraceRecorder::new(0);
    }

    #[test]
    fn probe_slot_emits_only_when_attached() {
        #[derive(Debug, Default)]
        struct Counting(u64);
        impl Probe for Counting {
            fn on_event(&mut self, _pid: ProcessId, _event: Event) {
                self.0 += 1;
            }
        }
        let mut slot = ProbeSlot::detached();
        assert!(!slot.is_attached());
        slot.emit(pid(1), Event::CheckMiss); // goes nowhere
        slot.attach(Box::new(Counting::default()));
        assert!(slot.is_attached());
        slot.emit(pid(1), Event::CheckMiss);
        slot.emit(pid(1), Event::NiMiss);
        let probe = slot.detach().expect("attached");
        let text = format!("{probe:?}");
        assert!(text.contains("Counting(2)"), "saw both events: {text}");
        assert!(slot.detach().is_none());
    }

    #[test]
    fn shared_collector_snapshot_sees_engine_side_events() {
        let shared = SharedCollector::new(8);
        let mut boxed = shared.boxed();
        boxed.on_event(pid(3), Event::Pin { run: 1, ns: 27_000 });
        boxed.on_event(pid(3), Event::Lookup { ns: 900 });
        let snap = shared.snapshot();
        assert_eq!(snap.metrics.counts.pins, 1);
        assert_eq!(snap.recorder.events(pid(3)).len(), 2);
    }

    #[test]
    fn events_serialize_roundtrip() {
        let events = vec![
            Event::Lookup { ns: 1 },
            Event::DmaFetch {
                entries: 8,
                ns: 2500,
            },
            Event::Evict {
                reason: EvictReason::CacheConflict,
            },
            Event::Wait {
                resource: WaitResource::DmaEngine,
                ns: 1468,
            },
            Event::Wait {
                resource: WaitResource::Firmware,
                ns: 0,
            },
            Event::Wait {
                resource: WaitResource::HostMem,
                ns: 312,
            },
            Event::Connect,
            Event::Close,
            Event::Backpressure { ns: 777 },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(events, back);
    }
}
