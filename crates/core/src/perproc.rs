//! The per-process UTLB engine (paper §3.1) — the baseline UTLB variant.
//!
//! Each process gets a fixed-size translation table statically allocated in
//! NIC SRAM, plus the two-level user-level lookup tree mapping virtual pages
//! to table indices. The NIC resolves a request with a single SRAM read —
//! there are *no* NIC misses — but the table is small (SRAM is 1 MB for
//! everything), so capacity evictions and their unpins appear much earlier
//! than with the Shared UTLB-Cache. §6's study could not compare the two
//! variants for lack of multi-program traces; this engine exists so our
//! reproduction can run that comparison as an extension.

use crate::lookup::UserLookupTree;
use crate::obs::{Event, EvictReason, ProbeSlot};
use crate::pincore::{charge_us, probe_stats_accessors, PinCore};
use crate::policy::Policy;
use crate::table::PerProcessTable;
use crate::{CostModel, OutcomeBuf, PageOutcome, Result, UtlbError};
use std::collections::HashMap;
use utlb_mem::{Host, ProcessId, VirtPage};
use utlb_nic::{Board, Nanos};

/// Configuration of a [`PerProcessEngine`].
#[derive(Debug, Clone)]
pub struct PerProcessConfig {
    /// Translation-table entries statically allocated per process.
    pub table_entries: usize,
    /// Replacement policy for table entries / pinned pages.
    pub policy: Policy,
    /// Cost model charged to the board clock.
    pub cost: CostModel,
    /// Seed for the RANDOM policy.
    pub seed: u64,
}

impl Default for PerProcessConfig {
    /// The 8 K-entry table shown in Figure 1.
    fn default() -> Self {
        PerProcessConfig {
            table_entries: 8192,
            policy: Policy::Lru,
            cost: CostModel::default(),
            seed: 0x9e37,
        }
    }
}

#[derive(Debug)]
struct ProcState {
    table: PerProcessTable,
    tree: UserLookupTree,
    core: PinCore,
}

/// The per-process UTLB engine.
#[derive(Debug)]
pub struct PerProcessEngine {
    cfg: PerProcessConfig,
    procs: HashMap<ProcessId, ProcState>,
    probe: ProbeSlot,
}

impl PerProcessEngine {
    /// Creates an engine.
    pub fn new(cfg: PerProcessConfig) -> Self {
        PerProcessEngine {
            cfg,
            procs: HashMap::new(),
            probe: ProbeSlot::detached(),
        }
    }

    probe_stats_accessors!();

    /// Registers `pid`, statically allocating its table in NIC SRAM —
    /// the allocation that motivates the Shared UTLB-Cache when it fails.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::AlreadyRegistered`] on duplicates and propagates
    /// SRAM exhaustion.
    pub fn register_process(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        if self.procs.contains_key(&pid) {
            return Err(UtlbError::AlreadyRegistered(pid));
        }
        let garbage = host.driver().garbage_addr();
        let table = PerProcessTable::new(pid, self.cfg.table_entries, &mut board.sram, garbage)?;
        self.procs.insert(
            pid,
            ProcState {
                table,
                tree: UserLookupTree::new(),
                core: PinCore::new(self.cfg.policy, self.cfg.seed, pid),
            },
        );
        Ok(())
    }

    /// Removes `pid` and unpins everything it had pinned. The statically
    /// allocated SRAM region is *not* reclaimed — the board allocator is a
    /// bump allocator, which is exactly the §3.1 design cost this variant
    /// exists to demonstrate: static tables occupy SRAM for the life of the
    /// board.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn unregister_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        self.procs
            .remove(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        host.driver_mut().pins_mut().release_process(pid);
        Ok(())
    }

    /// Translates one page: user-level tree lookup, then an SRAM table read.
    ///
    /// # Errors
    ///
    /// Propagates pinning and SRAM errors; [`UtlbError::TableFull`] if no
    /// entry can be evicted.
    pub fn lookup(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<PageOutcome> {
        let cost = self.cfg.cost.clone();
        let t0 = board.clock.now();
        // One `state` borrow spans the whole miss path, so events are
        // buffered and flushed once it ends (the buffer never allocates
        // with the probe detached).
        let probe_on = self.probe.is_attached();
        let mut events: Vec<Event> = Vec::new();
        let mut sink = |ev: Event| {
            if probe_on {
                events.push(ev);
            }
        };
        let state = self
            .procs
            .get_mut(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        state.core.stats.lookups += 1;

        // User-level lookup: two memory references.
        charge_us(board, cost.user_check_us);
        let (index, check_miss) =
            match state.tree.lookup(page) {
                Some(ix) => (ix, false),
                None => {
                    state.core.stats.check_misses += 1;
                    sink(Event::CheckMiss);
                    // Capacity: evict table entries until a slot frees up.
                    let mut slot = state.table.alloc_slot();
                    while slot.is_none() {
                        let victim = state.core.pinned.select_victims(1).pop().ok_or(
                            UtlbError::TableFull {
                                pid,
                                capacity: state.table.capacity(),
                            },
                        )?;
                        let victim_ix = state
                            .tree
                            .invalidate(victim)
                            .expect("pinned pages are in the tree");
                        state.table.evict(victim_ix, &mut board.sram)?;
                        state.core.unpin(
                            host,
                            board,
                            pid,
                            victim,
                            cost.unpin_cost(1),
                            EvictReason::TableFull,
                            &mut sink,
                        )?;
                        slot = state.table.alloc_slot();
                    }
                    let slot = slot.expect("freed above");
                    let pinned =
                        state
                            .core
                            .pin(host, board, pid, page, 1, cost.pin_cost(1), &mut sink)?;
                    state
                        .table
                        .install(slot, pinned[0].phys_addr(), &mut board.sram)?;
                    state.tree.install(page, slot);
                    (slot, true)
                }
            };
        state.core.pinned.touch(page);

        // NIC side: direct table read — never a miss in this variant.
        charge_us(board, cost.ni_check_us);
        let phys = state.table.read(index, &board.sram)?;
        if probe_on {
            for ev in events {
                self.probe.emit(pid, ev);
            }
            let ns = (board.clock.now() - t0).as_nanos();
            self.probe.emit(pid, Event::Lookup { ns });
        }
        Ok(PageOutcome {
            page,
            phys,
            check_miss,
            // The statically allocated table is authoritative on the NIC.
            ni_miss: false,
        })
    }

    /// Batched lookup: translates `npages` pages starting at `start`,
    /// appending outcomes into the caller-owned buffer.
    ///
    /// The user-level tree's leaf slice is resolved once per run
    /// ([`UserLookupTree::leaf`]); consecutive mapped pages inside it take
    /// a coalesced fast path — one SRAM table read each, their identical
    /// clock charges applied in one advance. An unmapped page settles the
    /// pending charges and goes through the scalar
    /// [`lookup`](PerProcessEngine::lookup) unchanged, so outcomes,
    /// statistics, probe events, and the clock are identical to the scalar
    /// walk.
    ///
    /// # Errors
    ///
    /// Propagates pinning and SRAM errors; [`UtlbError::TableFull`] if no
    /// entry can be evicted.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        let user_ns = Nanos::from_micros(self.cfg.cost.user_check_us);
        let ni_ns = Nanos::from_micros(self.cfg.cost.ni_check_us);
        let hit_ns = user_ns + ni_ns;
        let hit_event_ns = hit_ns.as_nanos();

        let mut pending = 0u64; // coalesced hit charges not yet on the clock
        let mut i = 0u64;
        while i < npages {
            let page = start.offset(i);
            let state = self.procs.get_mut(&pid).expect("checked above");
            let ProcState { table, tree, core } = state;
            // One directory reference covers the whole leaf; walk mapped
            // entries until the leaf edge, the record edge, or a miss.
            let (leaf, off) = match tree.leaf(page) {
                Some(found) => found,
                None => (&[][..], 0),
            };
            let span = (leaf.len() - off).min((npages - i) as usize);
            let mut run = 0usize;
            while run < span {
                let Some(index) = leaf[off + run] else { break };
                let page = start.offset(i + run as u64);
                core.fast_hit(page);
                let phys = table.read(index, &board.sram)?;
                self.probe.emit(pid, Event::Lookup { ns: hit_event_ns });
                out.push(PageOutcome {
                    page,
                    phys,
                    check_miss: false,
                    // The statically allocated table is authoritative.
                    ni_miss: false,
                });
                run += 1;
            }
            if run == 0 {
                // Unmapped page: settle the coalesced time first so the
                // miss path sees the same absolute clock as the scalar walk.
                if pending > 0 {
                    board.clock.advance(hit_ns * pending);
                    pending = 0;
                }
                out.push(self.lookup(host, board, pid, page)?);
                i += 1;
            } else {
                pending += run as u64;
                i += run as u64;
            }
        }
        if pending > 0 {
            board.clock.advance(hit_ns * pending);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(entries: usize) -> (Host, Board, PerProcessEngine, ProcessId) {
        let mut host = Host::new(1 << 14);
        let mut board = Board::new();
        let mut engine = PerProcessEngine::new(PerProcessConfig {
            table_entries: entries,
            ..PerProcessConfig::default()
        });
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        (host, board, engine, pid)
    }

    #[test]
    fn lookup_pins_once_and_never_ni_misses() {
        let (mut host, mut board, mut engine, pid) = setup(16);
        for round in 0..3 {
            let o = engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(5))
                .unwrap();
            assert_eq!(o.check_miss, round == 0);
            assert!(!o.ni_miss);
        }
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.check_misses, 1);
        assert_eq!(s.ni_misses, 0, "table is authoritative on the NIC");
        assert_eq!(s.pins, 1);
        assert!(s.pin_time_ns > 0, "pin work is time-accounted");
    }

    #[test]
    fn capacity_eviction_unpins_lru() {
        let (mut host, mut board, mut engine, pid) = setup(2);
        for p in 1..=3 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(p))
                .unwrap();
        }
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.unpins, 1);
        assert!(s.unpin_time_ns > 0, "unpin work is time-accounted");
        assert!(!host.driver().pins().is_pinned(pid, VirtPage::new(1)));
        assert!(host.driver().pins().is_pinned(pid, VirtPage::new(3)));
    }

    #[test]
    fn translation_resolves_to_real_frame() {
        let (mut host, mut board, mut engine, pid) = setup(16);
        let va = utlb_mem::VirtAddr::new(0x40_0000);
        host.process_mut(pid).unwrap().write(va, b"pp").unwrap();
        let o = engine
            .lookup(&mut host, &mut board, pid, va.page())
            .unwrap();
        let mut buf = [0u8; 2];
        host.physical().read(o.phys, &mut buf).unwrap();
        assert_eq!(&buf, b"pp");
    }

    #[test]
    fn static_allocation_exhausts_sram_across_processes() {
        // 1 MB SRAM / 8 KB entries * 8 B = each table is 64 KB; 16 fit.
        let mut host = Host::new(1 << 14);
        let mut board = Board::new();
        let mut engine = PerProcessEngine::new(PerProcessConfig::default());
        let mut failed = false;
        for _ in 0..20 {
            let pid = host.spawn_process();
            if engine.register_process(&mut host, &mut board, pid).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "static tables must exhaust the 1 MB board");
    }

    #[test]
    fn unregister_releases_pins_but_not_sram() {
        let (mut host, mut board, mut engine, pid) = setup(16);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(7))
            .unwrap();
        assert!(host.driver().pins().pinned_pages(pid) > 0);
        let sram_before = board.sram.available();
        engine
            .unregister_process(&mut host, &mut board, pid)
            .unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
        assert_eq!(
            board.sram.available(),
            sram_before,
            "static SRAM tables are never reclaimed (§3.1's cost)"
        );
        assert!(engine
            .unregister_process(&mut host, &mut board, pid)
            .is_err());
    }
}
