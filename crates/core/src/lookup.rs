//! The user-level two-level lookup tree of the per-process UTLB.
//!
//! Paper §3 (third idea): the user library "keeps track of the mapping
//! between the translation table indices and the pinned virtual pages" with
//! "a standard two-level page table architecture ... Only two memory
//! references are required to obtain the UTLB index for a given virtual page
//! address."

use std::collections::HashMap;
use utlb_mem::VirtPage;

/// An index into the per-process UTLB translation table on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UtlbIndex(pub u32);

/// Entries per second-level lookup table (10 bits of the vpn, as in a
/// classic x86-style two-level layout).
const LEAF_ENTRIES: u64 = 1024;

/// The two-level user-level lookup tree: virtual page → UTLB table index.
#[derive(Debug, Default)]
pub struct UserLookupTree {
    directory: HashMap<u64, Box<[Option<UtlbIndex>]>>,
    entries: u64,
}

impl UserLookupTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of valid entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn split(page: VirtPage) -> (u64, usize) {
        let n = page.number();
        (n / LEAF_ENTRIES, (n % LEAF_ENTRIES) as usize)
    }

    /// Looks up the UTLB index of `page`: exactly two logical memory
    /// references (directory, then leaf).
    pub fn lookup(&self, page: VirtPage) -> Option<UtlbIndex> {
        let (dir, leaf) = Self::split(page);
        self.directory.get(&dir).and_then(|l| l[leaf])
    }

    /// Installs the mapping `page → index`, returning any previous index.
    pub fn install(&mut self, page: VirtPage, index: UtlbIndex) -> Option<UtlbIndex> {
        let (dir, leaf) = Self::split(page);
        let table = self
            .directory
            .entry(dir)
            .or_insert_with(|| vec![None; LEAF_ENTRIES as usize].into_boxed_slice());
        let old = table[leaf].replace(index);
        if old.is_none() {
            self.entries += 1;
        }
        old
    }

    /// The leaf slice covering `page` and `page`'s offset inside it, or
    /// `None` if the leaf was never populated.
    ///
    /// One directory reference resolves up to `LEAF_ENTRIES` consecutive
    /// pages: the batched lookup path walks the returned slice directly
    /// instead of re-splitting and re-hashing per page. (The slice holds
    /// `LEAF_ENTRIES - offset` entries from `page` to the leaf edge; runs
    /// crossing the edge re-resolve the next leaf.)
    pub fn leaf(&self, page: VirtPage) -> Option<(&[Option<UtlbIndex>], usize)> {
        let (dir, leaf) = Self::split(page);
        self.directory.get(&dir).map(|l| (&l[..], leaf))
    }

    /// Invalidates the mapping for `page`, returning the removed index.
    pub fn invalidate(&mut self, page: VirtPage) -> Option<UtlbIndex> {
        let (dir, leaf) = Self::split(page);
        let removed = self.directory.get_mut(&dir).and_then(|l| l[leaf].take());
        if removed.is_some() {
            self.entries -= 1;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> VirtPage {
        VirtPage::new(n)
    }

    #[test]
    fn install_lookup_invalidate() {
        let mut t = UserLookupTree::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(page(100)), None);
        assert_eq!(t.install(page(100), UtlbIndex(7)), None);
        assert_eq!(t.lookup(page(100)), Some(UtlbIndex(7)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.install(page(100), UtlbIndex(9)), Some(UtlbIndex(7)));
        assert_eq!(t.len(), 1, "replacement does not grow the tree");
        assert_eq!(t.invalidate(page(100)), Some(UtlbIndex(9)));
        assert_eq!(t.invalidate(page(100)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn pages_in_different_leaves_are_independent() {
        let mut t = UserLookupTree::new();
        t.install(page(5), UtlbIndex(1));
        t.install(page(5 + LEAF_ENTRIES), UtlbIndex(2));
        assert_eq!(t.lookup(page(5)), Some(UtlbIndex(1)));
        assert_eq!(t.lookup(page(5 + LEAF_ENTRIES)), Some(UtlbIndex(2)));
    }

    #[test]
    fn leaf_slice_agrees_with_per_page_lookup() {
        let mut t = UserLookupTree::new();
        t.install(page(100), UtlbIndex(1));
        t.install(page(101), UtlbIndex(2));
        let (slice, off) = t.leaf(page(100)).expect("leaf populated");
        assert_eq!(off, 100);
        assert_eq!(slice[off], Some(UtlbIndex(1)));
        assert_eq!(slice[off + 1], Some(UtlbIndex(2)));
        assert_eq!(slice[off + 2], None);
        assert_eq!(slice.len(), LEAF_ENTRIES as usize);
        assert!(t.leaf(page(LEAF_ENTRIES)).is_none(), "unpopulated leaf");
    }

    #[test]
    fn sparse_high_addresses_work() {
        let mut t = UserLookupTree::new();
        let high = page((1 << 52) / 4096);
        t.install(high, UtlbIndex(3));
        assert_eq!(t.lookup(high), Some(UtlbIndex(3)));
    }
}
