//! Error type for the UTLB mechanism.

use std::error::Error;
use std::fmt;
use utlb_mem::{ProcessId, VirtPage};

/// Errors produced by the UTLB engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UtlbError {
    /// An engine configuration failed validation (see
    /// [`UtlbConfig::validate`](crate::UtlbConfig::validate)).
    InvalidConfig(String),
    /// The process was never registered with the engine.
    UnregisteredProcess(ProcessId),
    /// The process is already registered.
    AlreadyRegistered(ProcessId),
    /// No eviction victim could be found: every pinned page is held by an
    /// outstanding send.
    NoEvictableVictim(ProcessId),
    /// A per-process translation table ran out of free entries and eviction
    /// could not free any.
    TableFull {
        /// The process whose table filled.
        pid: ProcessId,
        /// The table capacity in entries.
        capacity: usize,
    },
    /// A page needed by the NIC fast path is not pinned — the user-level
    /// library violated the protocol (paper §3.1 correctness requirement).
    ProtocolViolation {
        /// The offending process.
        pid: ProcessId,
        /// The unpinned page the NIC was asked to use.
        page: VirtPage,
    },
    /// An underlying host-memory error.
    Mem(utlb_mem::MemError),
    /// An underlying NIC error.
    Nic(utlb_nic::NicError),
}

impl fmt::Display for UtlbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtlbError::InvalidConfig(why) => write!(f, "invalid engine configuration: {why}"),
            UtlbError::UnregisteredProcess(pid) => write!(f, "process {pid} is not registered"),
            UtlbError::AlreadyRegistered(pid) => write!(f, "process {pid} already registered"),
            UtlbError::NoEvictableVictim(pid) => {
                write!(f, "no evictable pinned page for process {pid}")
            }
            UtlbError::TableFull { pid, capacity } => {
                write!(f, "translation table of {pid} is full ({capacity} entries)")
            }
            UtlbError::ProtocolViolation { pid, page } => {
                write!(f, "page {page} of {pid} used by the NIC while unpinned")
            }
            UtlbError::Mem(e) => write!(f, "host memory error: {e}"),
            UtlbError::Nic(e) => write!(f, "nic error: {e}"),
        }
    }
}

impl Error for UtlbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UtlbError::Mem(e) => Some(e),
            UtlbError::Nic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<utlb_mem::MemError> for UtlbError {
    fn from(e: utlb_mem::MemError) -> Self {
        UtlbError::Mem(e)
    }
}

impl From<utlb_nic::NicError> for UtlbError {
    fn from(e: utlb_nic::NicError) -> Self {
        UtlbError::Nic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wiring() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<UtlbError>();
        let e = UtlbError::from(utlb_mem::MemError::OutOfFrames);
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
        let n = UtlbError::from(utlb_nic::NicError::UnknownNode(1));
        assert!(n.to_string().contains("nic"));
    }
}
