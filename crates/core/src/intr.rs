//! The interrupt-based baseline (paper §6.2; UNet-MM style [Basu et al.]).
//!
//! "The network interface interrupts its host CPU on a translation miss, and
//! the CPU handles page pinning, unpinning, and installing new translation
//! entries." The defining difference from UTLB: translations live *only* in
//! the NIC cache, so "the interrupt-based approach always unpins a page that
//! is evicted from the network interface translation cache". There is no
//! user-level check and no host-resident translation table to keep entries
//! alive.
//!
//! The cache structure is identical to UTLB's [`SharedUtlbCache`] — the
//! study assumes "the cache structures are the same for both cases".

use crate::obs::{Event, EvictReason, Probe, ProbeSlot};
use crate::pincore::{aggregate, charge_us, PinCore};
use crate::policy::Policy;
use crate::{
    CacheConfig, CostModel, OutcomeBuf, PageOutcome, Result, SharedUtlbCache, TranslationStats,
    UtlbError,
};
use std::collections::HashMap;
use utlb_mem::{Host, PhysAddr, ProcessId, VirtPage};
use utlb_nic::{Board, Nanos};

/// Configuration of an [`IntrEngine`].
#[derive(Debug, Clone)]
pub struct IntrConfig {
    /// NIC translation cache geometry (kept equal to the UTLB run).
    pub cache: CacheConfig,
    /// Per-process pinned-memory limit in pages.
    pub mem_limit_pages: Option<u64>,
    /// Cost model charged to the board clock.
    pub cost: CostModel,
    /// Seed for policy tie-breaking.
    pub seed: u64,
}

impl Default for IntrConfig {
    fn default() -> Self {
        IntrConfig {
            cache: CacheConfig::default(),
            mem_limit_pages: None,
            cost: CostModel::default(),
            seed: 0x1273,
        }
    }
}

/// Outcome of one interrupt-based lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntrOutcome {
    /// The translated page.
    pub page: VirtPage,
    /// Its physical address.
    pub phys: PhysAddr,
    /// Whether the NIC cache missed (and therefore interrupted the host).
    pub ni_miss: bool,
}

/// The interrupt-based translation engine.
///
/// The entire per-process state is one [`PinCore`]: by the invariant of this
/// design, the pinned pages are exactly the pages with a live line in the
/// NIC cache — there is no per-process translation structure to keep.
#[derive(Debug)]
pub struct IntrEngine {
    cfg: IntrConfig,
    cache: SharedUtlbCache,
    procs: HashMap<ProcessId, PinCore>,
    probe: ProbeSlot,
}

impl IntrEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: IntrConfig) -> Self {
        let cache = SharedUtlbCache::new(cfg.cache);
        IntrEngine {
            cfg,
            cache,
            procs: HashMap::new(),
            probe: ProbeSlot::detached(),
        }
    }

    /// Attaches an observability probe (see [`crate::obs`]), replacing and
    /// returning any previous one.
    pub fn set_probe(&mut self, probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
        self.probe.attach(probe)
    }

    /// Detaches and returns the probe, if one was attached.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.probe.detach()
    }

    /// The NIC translation cache.
    pub fn cache(&self) -> &SharedUtlbCache {
        &self.cache
    }

    /// Registers `pid` with the engine and applies its memory limit.
    ///
    /// This engine keeps no per-process NIC state, so `_board` is unused —
    /// the parameter exists so the signature matches
    /// [`UtlbEngine::register_process`](crate::UtlbEngine::register_process)
    /// and both engines implement
    /// [`TranslationMechanism`](crate::TranslationMechanism) directly.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::AlreadyRegistered`] on a duplicate.
    pub fn register_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        if self.procs.contains_key(&pid) {
            return Err(UtlbError::AlreadyRegistered(pid));
        }
        host.driver_mut()
            .pins_mut()
            .set_limit(pid, self.cfg.mem_limit_pages);
        // LRU over cached translations, matching the cache's own within-set
        // LRU as closely as a global policy can.
        self.procs
            .insert(pid, PinCore::new(Policy::Lru, self.cfg.seed, pid));
        Ok(())
    }

    /// Removes `pid`: unpins everything it had pinned and drops its cache
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn unregister_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        self.procs
            .remove(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        self.cache.invalidate_process(pid);
        host.driver_mut().pins_mut().release_process(pid);
        Ok(())
    }

    /// Per-process statistics.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if unknown.
    pub fn stats(&self, pid: ProcessId) -> Result<TranslationStats> {
        self.procs
            .get(&pid)
            .map(|c| c.stats)
            .ok_or(UtlbError::UnregisteredProcess(pid))
    }

    /// Statistics summed over all processes.
    pub fn aggregate_stats(&self) -> TranslationStats {
        aggregate(self.procs.values())
    }

    /// Translates `npages` pages starting at `start`.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors.
    pub fn lookup(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
    ) -> Result<Vec<IntrOutcome>> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        let mut out = Vec::with_capacity(npages as usize);
        for page in start.range(npages) {
            out.push(self.lookup_page(host, board, pid, page)?);
        }
        Ok(out)
    }

    /// Batched lookup: translates `npages` pages starting at `start`,
    /// appending outcomes into the caller-owned buffer. (This design has no
    /// user-level check, so outcomes always report `check_miss: false`.)
    ///
    /// Consecutive pages a stats-free cache peek finds present take a
    /// coalesced fast path — their identical NIC-check charges applied in
    /// one clock advance. Any missing page settles the pending charges and
    /// goes through the scalar per-page walk unchanged (a miss may unpin a
    /// *different* process's page via a conflict eviction, so the whole
    /// interrupt path stays scalar); outcomes, statistics, probe events,
    /// and the clock are identical to [`lookup`](IntrEngine::lookup).
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        // A hit charges only the NIC check; its Lookup event carries that
        // clock delta, independent of absolute time.
        let hit_ns = Nanos::from_micros(self.cfg.cost.ni_check_us);
        let hit_event_ns = hit_ns.as_nanos();

        let mut pending = 0u64; // coalesced hit charges not yet on the clock
        let mut i = 0u64;
        while i < npages {
            let page = start.offset(i);
            if self.cache.peek(pid, page).is_none() {
                // Miss: settle the coalesced time first so the interrupt
                // path sees the same absolute clock as the scalar walk.
                if pending > 0 {
                    board.clock.advance(hit_ns * pending);
                    pending = 0;
                }
                let o = self.lookup_page(host, board, pid, page)?;
                out.push(PageOutcome {
                    page: o.page,
                    phys: o.phys,
                    check_miss: false,
                    ni_miss: o.ni_miss,
                });
                i += 1;
                continue;
            }
            // Run of cached pages: one state resolution, deferred charges.
            let core = self.procs.get_mut(&pid).expect("checked above");
            let mut run = 0u64;
            while i + run < npages {
                let page = start.offset(i + run);
                let Some(phys) = self.cache.peek(pid, page) else {
                    break;
                };
                let looked_up = self.cache.lookup(pid, page);
                debug_assert_eq!(looked_up, Some(phys), "peek agrees with lookup");
                core.fast_hit(page);
                self.probe.emit(pid, Event::Lookup { ns: hit_event_ns });
                out.push(PageOutcome {
                    page,
                    phys,
                    check_miss: false,
                    ni_miss: false,
                });
                run += 1;
            }
            pending += run;
            i += run;
        }
        if pending > 0 {
            board.clock.advance(hit_ns * pending);
        }
        Ok(())
    }

    fn lookup_page(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<IntrOutcome> {
        let IntrEngine {
            cfg,
            cache,
            procs,
            probe,
        } = self;
        let cost = &cfg.cost;
        let t0 = board.clock.now();
        let core = procs.get_mut(&pid).expect("checked by caller");
        core.stats.lookups += 1;

        // The NIC check happens on every request; there is no user-level
        // structure in this design.
        charge_us(board, cost.ni_check_us);
        if let Some(phys) = cache.lookup(pid, page) {
            core.pinned.touch(page);
            let ns = (board.clock.now() - t0).as_nanos();
            probe.emit(pid, Event::Lookup { ns });
            return Ok(IntrOutcome {
                page,
                phys,
                ni_miss: false,
            });
        }

        // Miss: interrupt the host; the handler pins the page and installs
        // the translation. In-kernel, so no syscall overhead on the pin.
        let intr_cost = board.intr.raise(&mut board.clock);
        core.stats.ni_misses += 1;
        core.stats.interrupts += 1;
        probe.emit(pid, Event::NiMiss);
        probe.emit(
            pid,
            Event::Interrupt {
                ns: intr_cost.as_nanos(),
            },
        );

        // Respect the pinned-memory limit before pinning one more page.
        if let Some(limit) = cfg.mem_limit_pages {
            if core.pinned.len() as u64 >= limit {
                let victim = core
                    .pinned
                    .select_victims(1)
                    .pop()
                    .ok_or(UtlbError::NoEvictableVictim(pid))?;
                let unpin_us = cost.kernel_unpin_cost(1);
                board.intr.account_handler(Nanos::from_micros(unpin_us));
                core.unpin(
                    host,
                    board,
                    pid,
                    victim,
                    unpin_us,
                    EvictReason::MemLimit,
                    &mut |ev| probe.emit(pid, ev),
                )?;
                cache.invalidate(pid, victim);
            }
        }

        let pin_us = cost.kernel_pin_cost(1);
        board.intr.account_handler(Nanos::from_micros(pin_us));
        let pinned = core.pin(host, board, pid, page, 1, pin_us, &mut |ev| {
            probe.emit(pid, ev)
        })?;
        let phys = pinned[0].phys_addr();

        // Install in the cache; the page evicted to make room is unpinned —
        // the defining behaviour of the interrupt-based approach.
        if let Some(evicted) = cache.insert(pid, page, phys) {
            let unpin_us = cost.kernel_unpin_cost(1);
            board.intr.account_handler(Nanos::from_micros(unpin_us));
            let owner = procs
                .get_mut(&evicted.pid)
                .expect("evicted lines belong to registered processes");
            owner.unpin(
                host,
                board,
                evicted.pid,
                evicted.page,
                unpin_us,
                EvictReason::CacheConflict,
                &mut |ev| probe.emit(evicted.pid, ev),
            )?;
        }

        let ns = (board.clock.now() - t0).as_nanos();
        probe.emit(pid, Event::Lookup { ns });
        Ok(IntrOutcome {
            page,
            phys,
            ni_miss: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: IntrConfig) -> (Host, Board, IntrEngine, ProcessId) {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut engine = IntrEngine::new(cfg);
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        (host, board, engine, pid)
    }

    fn small_cfg(entries: usize) -> IntrConfig {
        IntrConfig {
            cache: CacheConfig::direct(entries),
            ..IntrConfig::default()
        }
    }

    #[test]
    fn every_miss_raises_an_interrupt() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg(64));
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 4)
            .unwrap();
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.ni_misses, 4);
        assert_eq!(s.interrupts, 4);
        assert_eq!(board.intr.raised(), 4);
        // Second pass hits, no new interrupts.
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 4)
            .unwrap();
        assert_eq!(engine.stats(pid).unwrap().interrupts, 4);
    }

    #[test]
    fn cache_eviction_unpins_the_victim() {
        // Direct-mapped, no offsetting, 4 entries: pages 0 and 4 collide.
        let cfg = IntrConfig {
            cache: CacheConfig {
                entries: 4,
                associativity: crate::Associativity::Direct,
                offsetting: false,
            },
            ..IntrConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        assert!(host.driver().pins().is_pinned(pid, VirtPage::new(0)));
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(4), 1)
            .unwrap();
        assert!(
            !host.driver().pins().is_pinned(pid, VirtPage::new(0)),
            "evicted line's page must be unpinned"
        );
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.unpins, 1);
        // Re-touching page 0 is a fresh miss + pin: translations do not
        // survive eviction in this design.
        let o = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        assert!(o[0].ni_miss);
    }

    #[test]
    fn handler_occupancy_equals_kernel_pin_and_unpin_time() {
        // Direct-mapped, 4 entries, no offsetting: pages 0 and 4 collide, so
        // the second lookup pins inside the handler *and* unpins the victim.
        let cfg = IntrConfig {
            cache: CacheConfig {
                entries: 4,
                associativity: crate::Associativity::Direct,
                offsetting: false,
            },
            ..IntrConfig::default()
        };
        let cost = cfg.cost.clone();
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(4), 1)
            .unwrap();
        let expect = Nanos::from_micros(cost.kernel_pin_cost(1)) * 2
            + Nanos::from_micros(cost.kernel_unpin_cost(1));
        assert_eq!(board.intr.total_handler(), expect);
        // Hits add nothing: the handler only runs on misses.
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(4), 1)
            .unwrap();
        assert_eq!(board.intr.total_handler(), expect);
    }

    #[test]
    fn pinned_set_equals_cache_contents() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg(16));
        for i in 0..40 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i), 1)
                .unwrap();
        }
        let cached = engine.cache().occupancy() as u64;
        assert_eq!(host.driver().pins().pinned_pages(pid), cached);
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.pins - s.unpins, cached);
    }

    #[test]
    fn memory_limit_below_cache_size_forces_extra_unpins() {
        let cfg = IntrConfig {
            cache: CacheConfig::direct(1024),
            mem_limit_pages: Some(8),
            ..IntrConfig::default()
        };
        let (mut host, mut board, mut engine, pid) = setup(cfg);
        for i in 0..32 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i), 1)
                .unwrap();
        }
        assert!(host.driver().pins().pinned_pages(pid) <= 8);
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.unpins, 24, "each pin beyond the limit evicts one");
    }

    #[test]
    fn translation_is_correct() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg(64));
        let va = utlb_mem::VirtAddr::new(0x12_0000);
        host.process_mut(pid).unwrap().write(va, b"intr").unwrap();
        let o = engine
            .lookup(&mut host, &mut board, pid, va.page(), 1)
            .unwrap();
        let mut buf = [0u8; 4];
        host.physical().read(o[0].phys, &mut buf).unwrap();
        assert_eq!(&buf, b"intr");
    }

    #[test]
    fn unregister_releases_pins_and_cache_lines() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg(64));
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 4)
            .unwrap();
        assert!(host.driver().pins().pinned_pages(pid) > 0);
        engine
            .unregister_process(&mut host, &mut board, pid)
            .unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
        assert_eq!(engine.cache().occupancy(), 0);
        assert!(engine
            .unregister_process(&mut host, &mut board, pid)
            .is_err());
    }

    #[test]
    fn unknown_process_is_rejected() {
        let (mut host, mut board, mut engine, _) = setup(small_cfg(16));
        let ghost = ProcessId::new(99);
        assert!(matches!(
            engine.lookup(&mut host, &mut board, ghost, VirtPage::new(0), 1),
            Err(UtlbError::UnregisteredProcess(_))
        ));
    }

    #[test]
    fn miss_cost_includes_interrupt_dispatch() {
        let (mut host, mut board, mut engine, pid) = setup(small_cfg(64));
        let t0 = board.clock.now();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        let miss_cost = board.clock.now() - t0;
        let t1 = board.clock.now();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0), 1)
            .unwrap();
        let hit_cost = board.clock.now() - t1;
        assert!(
            miss_cost.as_nanos() > hit_cost.as_nanos() + 10_000,
            "a miss pays at least the 10 µs interrupt: miss {miss_cost} hit {hit_cost}"
        );
    }
}
