//! The Shared UTLB-Cache (paper §3.2).
//!
//! One translation cache on the NIC shared by all processes. Each line is
//! tagged with the owning process and (for Hierarchical-UTLB) the virtual
//! page it translates. The cache is parameterized exactly along the axes the
//! paper studies (§6.3, Table 8):
//!
//! * **size** — 1 K to 16 K entries,
//! * **associativity** — direct-mapped, 2-way, 4-way, with LRU within a set,
//! * **index offsetting** — adding a process-dependent constant to the index
//!   so that simultaneous processes hash to different cache regions
//!   ("direct" vs "direct-nohash" rows of Table 8).
//!
//! Because the firmware checks set entries serially (no parallel tag match
//! in software), lookups report how many lines they probed, letting the cost
//! model reproduce why "set-associative caches lose to the direct-map cache"
//! once lookup cost is considered.

use crate::bitvec::DenseBits;
use serde::{Deserialize, Serialize};
use utlb_mem::{PhysAddr, ProcessId, VirtPage};

/// Cache associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Associativity {
    /// Direct-mapped (the paper's choice for the real implementation).
    #[default]
    Direct,
    /// Two-way set-associative.
    TwoWay,
    /// Four-way set-associative.
    FourWay,
}

impl Associativity {
    /// Number of ways.
    pub const fn ways(self) -> usize {
        match self {
            Associativity::Direct => 1,
            Associativity::TwoWay => 2,
            Associativity::FourWay => 4,
        }
    }

    /// All variants, for sweeps.
    pub const ALL: [Associativity; 3] = [
        Associativity::Direct,
        Associativity::TwoWay,
        Associativity::FourWay,
    ];
}

impl std::fmt::Display for Associativity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Associativity::Direct => f.write_str("direct"),
            Associativity::TwoWay => f.write_str("2-way"),
            Associativity::FourWay => f.write_str("4-way"),
        }
    }
}

/// Shared UTLB-Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total line count; must be a multiple of the way count.
    pub entries: usize,
    /// Set associativity.
    pub associativity: Associativity,
    /// Whether to offset indices by a process-dependent constant.
    pub offsetting: bool,
}

impl CacheConfig {
    /// A direct-mapped cache with offsetting — the paper's deployed choice.
    pub fn direct(entries: usize) -> Self {
        CacheConfig {
            entries,
            associativity: Associativity::Direct,
            offsetting: true,
        }
    }
}

impl Default for CacheConfig {
    /// The implementation's 8 K-entry (32 KB) direct-mapped cache (§4.2).
    fn default() -> Self {
        CacheConfig::direct(8192)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    pid: ProcessId,
    vpn: u64,
    phys: PhysAddr,
    last_use: u64,
}

/// Identity of a cache line, reported on eviction so callers (the
/// interrupt-based baseline unpins on eviction) can react.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Process owning the evicted translation.
    pub pid: ProcessId,
    /// The evicted virtual page.
    pub page: VirtPage,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found their translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Total lines probed (serial tag checks by the firmware).
    pub probes: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in [0, 1]; 0 when no lookups happened.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }
}

/// The Shared UTLB-Cache.
///
/// Lines live in one contiguous array indexed `set * ways + way`, with a
/// packed validity bit per line ([`DenseBits`]): the layout the real
/// firmware uses for its SRAM line array. Compared to a vec-of-vecs of
/// `Option<Line>`, a probe is a single indexed load plus a bit test — no
/// pointer chase per set, no discriminant per way — and construction is one
/// allocation regardless of geometry.
#[derive(Debug)]
pub struct SharedUtlbCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    valid: DenseBits,
    num_sets: usize,
    ways: usize,
    /// `num_sets - 1` when the set count is a power of two, letting
    /// `set_index` mask instead of divide (every paper geometry qualifies;
    /// odd set counts fall back to modulo).
    set_mask: Option<u64>,
    tick: u64,
    stats: CacheStats,
}

impl SharedUtlbCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not divisible by the way count.
    pub fn new(cfg: CacheConfig) -> Self {
        let ways = cfg.associativity.ways();
        assert!(cfg.entries > 0, "cache must have at least one entry");
        assert!(
            cfg.entries.is_multiple_of(ways),
            "entries {} not divisible by ways {ways}",
            cfg.entries
        );
        let num_sets = cfg.entries / ways;
        let placeholder = Line {
            pid: ProcessId::new(0),
            vpn: 0,
            phys: PhysAddr::new(0),
            last_use: 0,
        };
        SharedUtlbCache {
            cfg,
            lines: vec![placeholder; cfg.entries],
            valid: DenseBits::zeros(cfg.entries),
            num_sets,
            ways,
            set_mask: num_sets.is_power_of_two().then_some(num_sets as u64 - 1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// SRAM footprint of the line array: 4 bytes per entry in the real
    /// firmware's packed format (Figure 3 line format: 20-bit physical
    /// address + 8-bit tag + 4-bit process tag).
    pub fn sram_bytes(&self) -> u64 {
        self.cfg.entries as u64 * 4
    }

    /// The process-dependent index offset (§3.2: "offset a translation
    /// table index by a process-dependent constant").
    fn offset(&self, pid: ProcessId) -> u64 {
        if self.cfg.offsetting {
            // Fibonacci hashing: the offset is `num_sets · frac(pid · φ)`,
            // computed in 64.64 fixed point. The golden-ratio sequence is
            // low-discrepancy, so the first k processes land near-optimally
            // spread through index space *for every k* — a random hash
            // instead birthday-collides (two of five processes a few sets
            // apart) and recreates exactly the SPMD thrashing the offset
            // exists to break.
            let frac = (pid.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((frac as u128 * self.num_sets as u128) >> 64) as u64
        } else {
            0
        }
    }

    #[inline]
    fn set_index(&self, pid: ProcessId, page: VirtPage) -> usize {
        let hashed = page.number().wrapping_add(self.offset(pid));
        match self.set_mask {
            Some(mask) => (hashed & mask) as usize,
            None => (hashed % self.num_sets as u64) as usize,
        }
    }

    /// First line index of the set holding `(pid, page)`.
    #[inline]
    fn set_base(&self, pid: ProcessId, page: VirtPage) -> usize {
        self.set_index(pid, page) * self.ways
    }

    /// Looks up the translation of `(pid, page)`.
    ///
    /// Returns the physical address on a hit and bumps the line's LRU state.
    pub fn lookup(&mut self, pid: ProcessId, page: VirtPage) -> Option<PhysAddr> {
        self.tick += 1;
        let base = self.set_base(pid, page);
        let tick = self.tick;
        let vpn = page.number();
        // The firmware checks ways serially, so the probe count is the
        // position of the hit (or the full width on a miss) — invalid ways
        // still cost a tag check.
        for way in 0..self.ways {
            let ix = base + way;
            if self.valid.get(ix) {
                let line = &mut self.lines[ix];
                if line.pid == pid && line.vpn == vpn {
                    line.last_use = tick;
                    self.stats.probes += way as u64 + 1;
                    self.stats.hits += 1;
                    return Some(line.phys);
                }
            }
        }
        self.stats.probes += self.ways as u64;
        self.stats.misses += 1;
        None
    }

    /// Checks for `(pid, page)` without touching statistics or LRU state —
    /// used by shadow structures (e.g. the invalidation path).
    pub fn peek(&self, pid: ProcessId, page: VirtPage) -> Option<PhysAddr> {
        let base = self.set_base(pid, page);
        let vpn = page.number();
        (base..base + self.ways)
            .filter(|&ix| self.valid.get(ix))
            .map(|ix| &self.lines[ix])
            .find(|l| l.pid == pid && l.vpn == vpn)
            .map(|l| l.phys)
    }

    /// Inserts (or refreshes) the translation of `(pid, page)`.
    ///
    /// Returns the line evicted to make room, if any. Inserting a line that
    /// is already present refreshes its payload without eviction.
    pub fn insert(&mut self, pid: ProcessId, page: VirtPage, phys: PhysAddr) -> Option<Evicted> {
        self.tick += 1;
        let base = self.set_base(pid, page);
        let tick = self.tick;
        let vpn = page.number();

        // Refresh an existing line.
        for ix in base..base + self.ways {
            if self.valid.get(ix) {
                let line = &mut self.lines[ix];
                if line.pid == pid && line.vpn == vpn {
                    line.phys = phys;
                    line.last_use = tick;
                    return None;
                }
            }
        }
        let new_line = Line {
            pid,
            vpn,
            phys,
            last_use: tick,
        };
        // Fill an invalid way.
        if let Some(ix) = self.valid.first_zero_in(base, base + self.ways) {
            self.lines[ix] = new_line;
            self.valid.set(ix);
            return None;
        }
        // Evict the LRU way.
        let victim_ix = (base..base + self.ways)
            .min_by_key(|&ix| self.lines[ix].last_use)
            .expect("set has at least one way");
        let victim = std::mem::replace(&mut self.lines[victim_ix], new_line);
        self.stats.evictions += 1;
        Some(Evicted {
            pid: victim.pid,
            page: VirtPage::new(victim.vpn),
        })
    }

    /// Removes the translation of `(pid, page)` if cached (consistency on
    /// unpin: the host-side table entry went back to garbage, so the cached
    /// copy must die too). Returns whether a line was removed.
    pub fn invalidate(&mut self, pid: ProcessId, page: VirtPage) -> bool {
        let base = self.set_base(pid, page);
        let vpn = page.number();
        for ix in base..base + self.ways {
            if self.valid.get(ix) && self.lines[ix].pid == pid && self.lines[ix].vpn == vpn {
                self.valid.clear(ix);
                return true;
            }
        }
        false
    }

    /// Removes every line belonging to `pid` (process exit). Returns the
    /// number of lines dropped.
    pub fn invalidate_process(&mut self, pid: ProcessId) -> usize {
        let mut dropped = 0;
        for ix in 0..self.lines.len() {
            if self.valid.get(ix) && self.lines[ix].pid == pid {
                self.valid.clear(ix);
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.count_ones()
    }

    /// Number of valid lines belonging to `pid` — the per-process share of
    /// the shared cache an observability export reports.
    pub fn occupancy_for(&self, pid: ProcessId) -> usize {
        (0..self.lines.len())
            .filter(|&ix| self.valid.get(ix) && self.lines[ix].pid == pid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> ProcessId {
        ProcessId::new(n)
    }

    fn page(n: u64) -> VirtPage {
        VirtPage::new(n)
    }

    fn pa(n: u64) -> PhysAddr {
        PhysAddr::new(n)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = SharedUtlbCache::new(CacheConfig::direct(16));
        assert_eq!(c.lookup(pid(1), page(3)), None);
        c.insert(pid(1), page(3), pa(0x3000));
        assert_eq!(c.lookup(pid(1), page(3)), Some(pa(0x3000)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.miss_rate(), 0.5);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = SharedUtlbCache::new(CacheConfig {
            entries: 4,
            associativity: Associativity::Direct,
            offsetting: false,
        });
        c.insert(pid(1), page(0), pa(0x0));
        let evicted = c.insert(pid(1), page(4), pa(0x4000)); // same set: 4 % 4 == 0
        assert_eq!(
            evicted,
            Some(Evicted {
                pid: pid(1),
                page: page(0)
            })
        );
        assert_eq!(c.lookup(pid(1), page(0)), None);
        assert_eq!(c.lookup(pid(1), page(4)), Some(pa(0x4000)));
    }

    #[test]
    fn two_way_avoids_the_direct_conflict() {
        let mut c = SharedUtlbCache::new(CacheConfig {
            entries: 4,
            associativity: Associativity::TwoWay,
            offsetting: false,
        });
        // 2 sets; pages 0 and 2 share set 0 but occupy different ways.
        assert!(c.insert(pid(1), page(0), pa(0x0)).is_none());
        assert!(c.insert(pid(1), page(2), pa(0x2000)).is_none());
        assert_eq!(c.lookup(pid(1), page(0)), Some(pa(0x0)));
        assert_eq!(c.lookup(pid(1), page(2)), Some(pa(0x2000)));
        // Third conflicting page evicts the LRU (page 0 was used more
        // recently via lookup, so inserting page 4 evicts... page 0 was
        // looked up first, page 2 second; LRU is page 0).
        let evicted = c.insert(pid(1), page(4), pa(0x4000)).unwrap();
        assert_eq!(evicted.page, page(0));
    }

    #[test]
    fn lru_within_set_respects_recency() {
        let mut c = SharedUtlbCache::new(CacheConfig {
            entries: 2,
            associativity: Associativity::TwoWay,
            offsetting: false,
        });
        c.insert(pid(1), page(10), pa(0xA000));
        c.insert(pid(1), page(11), pa(0xB000));
        c.lookup(pid(1), page(10)); // refresh 10; 11 becomes LRU
        let evicted = c.insert(pid(1), page(12), pa(0xC000)).unwrap();
        assert_eq!(evicted.page, page(11));
    }

    #[test]
    fn offsetting_separates_processes_with_identical_footprints() {
        // Two processes touching the same vpns: without offsetting they
        // fight for the same lines; with offsetting they coexist.
        let run = |offsetting: bool| {
            let mut c = SharedUtlbCache::new(CacheConfig {
                entries: 64,
                associativity: Associativity::Direct,
                offsetting,
            });
            // Interleaved accesses, twice over.
            for _ in 0..2 {
                for v in 0..32 {
                    for p in [1u32, 2] {
                        if c.lookup(pid(p), page(v)).is_none() {
                            c.insert(pid(p), page(v), pa(v << 12));
                        }
                    }
                }
            }
            c.stats().miss_rate()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "offsetting should cut conflict misses: with={with} without={without}"
        );
    }

    #[test]
    fn probes_scale_with_associativity() {
        let mut direct = SharedUtlbCache::new(CacheConfig {
            entries: 16,
            associativity: Associativity::Direct,
            offsetting: false,
        });
        let mut four = SharedUtlbCache::new(CacheConfig {
            entries: 16,
            associativity: Associativity::FourWay,
            offsetting: false,
        });
        for v in 0..16 {
            direct.insert(pid(1), page(v), pa(v));
            four.insert(pid(1), page(v), pa(v));
        }
        for v in 0..16 {
            direct.lookup(pid(1), page(v));
            four.lookup(pid(1), page(v));
        }
        assert!(
            four.stats().probes > direct.stats().probes,
            "serial tag checks make wide sets slower"
        );
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SharedUtlbCache::new(CacheConfig::direct(8));
        c.insert(pid(1), page(1), pa(0x1000));
        assert!(c.invalidate(pid(1), page(1)));
        assert!(!c.invalidate(pid(1), page(1)));
        assert_eq!(c.lookup(pid(1), page(1)), None);
    }

    #[test]
    fn invalidate_process_sweeps_all_lines() {
        let mut c = SharedUtlbCache::new(CacheConfig::direct(64));
        for v in 0..10 {
            c.insert(pid(1), page(v), pa(v));
            c.insert(pid(2), page(v), pa(v));
        }
        assert_eq!(c.invalidate_process(pid(1)), 10);
        assert_eq!(c.occupancy(), 10);
        assert_eq!(c.peek(pid(2), page(3)), Some(pa(3)));
        assert_eq!(c.peek(pid(1), page(3)), None);
    }

    #[test]
    fn insert_refresh_does_not_evict() {
        let mut c = SharedUtlbCache::new(CacheConfig::direct(4));
        c.insert(pid(1), page(0), pa(0x1));
        assert!(c.insert(pid(1), page(0), pa(0x2)).is_none());
        assert_eq!(c.peek(pid(1), page(0)), Some(pa(0x2)));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn default_config_matches_paper_implementation() {
        let c = SharedUtlbCache::new(CacheConfig::default());
        assert_eq!(c.config().entries, 8192);
        assert_eq!(c.sram_bytes(), 32 * 1024, "32 KB as in §4.2");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        SharedUtlbCache::new(CacheConfig {
            entries: 6,
            associativity: Associativity::FourWay,
            offsetting: false,
        });
    }

    #[test]
    fn occupancy_for_counts_one_process_share() {
        // No offsetting, so line indices are just `page % 16` and the two
        // processes cannot collide.
        let mut c = SharedUtlbCache::new(CacheConfig {
            entries: 16,
            associativity: Associativity::Direct,
            offsetting: false,
        });
        for v in 0..3 {
            c.insert(pid(1), page(v), pa(v));
        }
        c.insert(pid(2), page(8), pa(8));
        assert_eq!(c.occupancy_for(pid(1)), 3);
        assert_eq!(c.occupancy_for(pid(2)), 1);
        assert_eq!(c.occupancy_for(pid(9)), 0);
        assert_eq!(c.occupancy(), 4);
        c.invalidate_process(pid(1));
        assert_eq!(c.occupancy_for(pid(1)), 0);
    }
}
