//! Translation statistics.
//!
//! The trace-driven study reports everything *per lookup* (Tables 4 and 5):
//! check misses, NIC translation misses, and unpinned pages, averaged over
//! the total number of lookups. [`TranslationStats`] accumulates the raw
//! counters and converts them to the paper's rates.

use crate::cost::LookupRates;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters accumulated by a translation engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationStats {
    /// Page-granular translation lookups performed.
    pub lookups: u64,
    /// User-level check misses (some page of the run was unpinned).
    pub check_misses: u64,
    /// NIC translation-cache misses.
    pub ni_misses: u64,
    /// Pages pinned.
    pub pins: u64,
    /// Pages unpinned.
    pub unpins: u64,
    /// Driver calls that pinned pages.
    pub pin_calls: u64,
    /// Driver calls that unpinned pages.
    pub unpin_calls: u64,
    /// Translation entries DMAed into the NIC cache (≥ `ni_misses` with
    /// prefetching).
    pub entries_fetched: u64,
    /// Host interrupts raised (always 0 for UTLB except table swap-ins).
    pub interrupts: u64,
    /// Simulated host time spent in pin calls, in nanoseconds.
    pub pin_time_ns: u64,
    /// Simulated host time spent in unpin calls, in nanoseconds.
    pub unpin_time_ns: u64,
}

impl TranslationStats {
    /// Check misses per lookup.
    pub fn check_miss_rate(&self) -> f64 {
        ratio(self.check_misses, self.lookups)
    }

    /// NIC misses per lookup.
    pub fn ni_miss_rate(&self) -> f64 {
        ratio(self.ni_misses, self.lookups)
    }

    /// Unpinned pages per lookup.
    pub fn unpin_rate(&self) -> f64 {
        ratio(self.unpins, self.lookups)
    }

    /// Pinned pages per lookup.
    pub fn pin_rate(&self) -> f64 {
        ratio(self.pins, self.lookups)
    }

    /// Average pages pinned per pin call (> 1 under prepinning).
    pub fn pages_per_pin_call(&self) -> f64 {
        if self.pin_calls == 0 {
            1.0
        } else {
            self.pins as f64 / self.pin_calls as f64
        }
    }

    /// Average entries fetched per NIC miss (> 1 under prefetching).
    pub fn entries_per_fetch(&self) -> f64 {
        if self.ni_misses == 0 {
            1.0
        } else {
            self.entries_fetched as f64 / self.ni_misses as f64
        }
    }

    /// Amortized pin cost per lookup, in µs (Table 7 rows).
    pub fn pin_us_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.pin_time_ns as f64 / 1000.0 / self.lookups as f64
        }
    }

    /// Amortized unpin cost per lookup, in µs (Table 7 rows).
    pub fn unpin_us_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.unpin_time_ns as f64 / 1000.0 / self.lookups as f64
        }
    }

    /// The per-lookup rates used by the §6.2 cost formulas.
    pub fn rates(&self) -> LookupRates {
        LookupRates {
            check_miss_rate: self.check_miss_rate(),
            ni_miss_rate: self.ni_miss_rate(),
            unpin_rate: self.unpin_rate(),
            pages_per_pin: self.pages_per_pin_call(),
            entries_per_fetch: self.entries_per_fetch(),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for TranslationStats {
    type Output = TranslationStats;
    fn add(self, rhs: TranslationStats) -> TranslationStats {
        TranslationStats {
            lookups: self.lookups + rhs.lookups,
            check_misses: self.check_misses + rhs.check_misses,
            ni_misses: self.ni_misses + rhs.ni_misses,
            pins: self.pins + rhs.pins,
            unpins: self.unpins + rhs.unpins,
            pin_calls: self.pin_calls + rhs.pin_calls,
            unpin_calls: self.unpin_calls + rhs.unpin_calls,
            entries_fetched: self.entries_fetched + rhs.entries_fetched,
            interrupts: self.interrupts + rhs.interrupts,
            pin_time_ns: self.pin_time_ns + rhs.pin_time_ns,
            unpin_time_ns: self.unpin_time_ns + rhs.unpin_time_ns,
        }
    }
}

impl AddAssign for TranslationStats {
    fn add_assign(&mut self, rhs: TranslationStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_lookups() {
        let s = TranslationStats {
            lookups: 100,
            check_misses: 25,
            ni_misses: 50,
            pins: 25,
            unpins: 10,
            pin_calls: 5,
            unpin_calls: 10,
            entries_fetched: 200,
            interrupts: 0,
            pin_time_ns: 135_000,
            unpin_time_ns: 250_000,
        };
        assert_eq!(s.check_miss_rate(), 0.25);
        assert_eq!(s.ni_miss_rate(), 0.50);
        assert_eq!(s.unpin_rate(), 0.10);
        assert_eq!(s.pages_per_pin_call(), 5.0);
        assert_eq!(s.entries_per_fetch(), 4.0);
        let r = s.rates();
        assert_eq!(r.check_miss_rate, 0.25);
        assert_eq!(r.pages_per_pin, 5.0);
        assert!((s.pin_us_per_lookup() - 1.35).abs() < 1e-9);
        assert!((s.unpin_us_per_lookup() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = TranslationStats::default();
        assert_eq!(s.check_miss_rate(), 0.0);
        assert_eq!(s.pages_per_pin_call(), 1.0);
        assert_eq!(s.entries_per_fetch(), 1.0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = TranslationStats {
            lookups: 1,
            check_misses: 2,
            ni_misses: 3,
            pins: 4,
            unpins: 5,
            pin_calls: 6,
            unpin_calls: 7,
            entries_fetched: 8,
            interrupts: 9,
            pin_time_ns: 10,
            unpin_time_ns: 11,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.lookups, 2);
        assert_eq!(b.interrupts, 18);
        assert_eq!((a + a), b);
    }
}
