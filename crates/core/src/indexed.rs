//! The Shared UTLB-Cache over index-keyed tables — Figure 3's design (§3.2).
//!
//! This is the middle design point between the per-process UTLB (§3.1) and
//! Hierarchical-UTLB (§3.3): each process keeps a *flat, fixed-size*
//! translation table, but in **host memory** rather than NIC SRAM, and the
//! NIC caches entries in the Shared UTLB-Cache keyed by `(process, table
//! index)` — the cache line carries "the process ID and part of the
//! translation table index" (Figure 3's line format). The user process
//! still chooses slots and passes indices with each request, via the
//! two-level [`UserLookupTree`].
//!
//! What Hierarchical-UTLB later fixes is visible here by construction:
//! *fragmentation* — after churn, a contiguous buffer's translations sit at
//! scattered indices, so index-neighbourhood prefetching loses its meaning
//! and the free list must be managed.

use crate::lookup::{UserLookupTree, UtlbIndex};
use crate::obs::{Event, EvictReason, ProbeSlot};
use crate::pincore::{charge_us, probe_stats_accessors, PinCore};
use crate::policy::Policy;
use crate::{CacheConfig, CostModel, OutcomeBuf, PageOutcome, Result, SharedUtlbCache, UtlbError};
use std::collections::HashMap;
use utlb_mem::{FrameId, Host, PhysAddr, ProcessId, VirtPage, PAGE_SIZE};
use utlb_nic::{Board, Nanos};

/// Configuration of an [`IndexedEngine`].
#[derive(Debug, Clone)]
pub struct IndexedConfig {
    /// Shared UTLB-Cache geometry.
    pub cache: CacheConfig,
    /// Translation-table entries per process (Figure 3 draws 8192).
    pub table_entries: usize,
    /// Replacement policy for table slots under capacity pressure.
    pub policy: Policy,
    /// Cost model charged to the board clock.
    pub cost: CostModel,
    /// Seed for the RANDOM policy.
    pub seed: u64,
}

impl Default for IndexedConfig {
    fn default() -> Self {
        IndexedConfig {
            cache: CacheConfig::default(),
            table_entries: 8192,
            policy: Policy::Lru,
            cost: CostModel::default(),
            seed: 0xF163,
        }
    }
}

#[derive(Debug)]
struct ProcState {
    /// Host frames backing the flat translation table.
    table_frames: Vec<FrameId>,
    tree: UserLookupTree,
    /// Which vpn occupies each slot (for eviction bookkeeping).
    slot_owner: HashMap<u32, VirtPage>,
    free: Vec<u32>,
    core: PinCore,
}

/// The §3.2 engine: host-resident index-keyed tables + shared NIC cache.
#[derive(Debug)]
pub struct IndexedEngine {
    cfg: IndexedConfig,
    cache: SharedUtlbCache,
    procs: HashMap<ProcessId, ProcState>,
    probe: ProbeSlot,
}

const ENTRIES_PER_FRAME: usize = (PAGE_SIZE / 8) as usize;

impl IndexedEngine {
    /// Creates an engine.
    pub fn new(cfg: IndexedConfig) -> Self {
        let cache = SharedUtlbCache::new(cfg.cache);
        IndexedEngine {
            cfg,
            cache,
            procs: HashMap::new(),
            probe: ProbeSlot::detached(),
        }
    }

    probe_stats_accessors!();

    /// The shared NIC cache.
    pub fn cache(&self) -> &SharedUtlbCache {
        &self.cache
    }

    /// Registers `pid`, allocating its flat table in host memory and
    /// initializing every slot with the garbage address (§4.2).
    ///
    /// The table lives in host DRAM, so `_board` is unused — the parameter
    /// exists so the signature matches every other engine's and the
    /// [`TranslationMechanism`](crate::TranslationMechanism) impl is direct.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::AlreadyRegistered`] on duplicates; propagates
    /// frame allocation failures.
    pub fn register_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        if self.procs.contains_key(&pid) {
            return Err(UtlbError::AlreadyRegistered(pid));
        }
        let frames_needed = self.cfg.table_entries.div_ceil(ENTRIES_PER_FRAME);
        let garbage = host.driver().garbage_addr();
        let mut table_frames = Vec::with_capacity(frames_needed);
        for _ in 0..frames_needed {
            let f = host.physical_mut().alloc_frame()?;
            for i in 0..ENTRIES_PER_FRAME {
                host.physical_mut()
                    .write_u64(f.base().offset(i as u64 * 8), garbage.raw())?;
            }
            table_frames.push(f);
        }
        self.procs.insert(
            pid,
            ProcState {
                table_frames,
                tree: UserLookupTree::new(),
                slot_owner: HashMap::new(),
                free: (0..self.cfg.table_entries as u32).rev().collect(),
                core: PinCore::new(self.cfg.policy, self.cfg.seed, pid),
            },
        );
        Ok(())
    }

    /// Removes `pid`: unpins everything it had pinned, drops its cache
    /// lines, and returns its table frames to the host allocator.
    ///
    /// # Errors
    ///
    /// Returns [`UtlbError::UnregisteredProcess`] if `pid` is unknown.
    pub fn unregister_process(
        &mut self,
        host: &mut Host,
        _board: &mut Board,
        pid: ProcessId,
    ) -> Result<()> {
        let state = self
            .procs
            .remove(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        self.cache.invalidate_process(pid);
        for f in state.table_frames {
            host.physical_mut().free_frame(f);
        }
        host.driver_mut().pins_mut().release_process(pid);
        Ok(())
    }

    /// Host physical address of table entry `index`.
    fn entry_addr(state: &ProcState, index: UtlbIndex) -> PhysAddr {
        let frame = state.table_frames[index.0 as usize / ENTRIES_PER_FRAME];
        frame
            .base()
            .offset((index.0 as usize % ENTRIES_PER_FRAME) as u64 * 8)
    }

    /// Fraction of the occupied slots whose table index neighbourhood does
    /// not match their virtual-page neighbourhood — the *fragmentation* that
    /// §3.3 cites as a reason to move to Hierarchical-UTLB. 0.0 means every
    /// occupied slot's successor slot holds the next virtual page.
    pub fn fragmentation(&self, pid: ProcessId) -> Result<f64> {
        let state = self
            .procs
            .get(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        let occupied: Vec<(u32, VirtPage)> = {
            let mut v: Vec<_> = state.slot_owner.iter().map(|(s, p)| (*s, *p)).collect();
            v.sort_by_key(|(s, _)| *s);
            v
        };
        if occupied.len() < 2 {
            return Ok(0.0);
        }
        let broken = occupied
            .windows(2)
            .filter(|w| {
                let ((s0, p0), (s1, p1)) = (w[0], w[1]);
                s1 == s0 + 1 && p1.number() != p0.number() + 1
            })
            .count();
        let adjacent = occupied.windows(2).filter(|w| w[1].0 == w[0].0 + 1).count();
        if adjacent == 0 {
            return Ok(0.0);
        }
        Ok(broken as f64 / adjacent as f64)
    }

    /// Translates one page: user-level tree lookup for the index, then a
    /// Shared UTLB-Cache probe keyed by `(pid, index)`, with a host-table
    /// DMA on a miss.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors; [`UtlbError::TableFull`] if no
    /// slot can be reclaimed.
    pub fn lookup(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        page: VirtPage,
    ) -> Result<PageOutcome> {
        // Destructure so the process state, the shared cache, and the probe
        // are disjoint borrows for the whole miss path.
        let IndexedEngine {
            cfg,
            cache,
            procs,
            probe,
        } = self;
        let cost = cfg.cost.clone();
        let t0 = board.clock.now();
        let probe_on = probe.is_attached();
        let mut events: Vec<Event> = Vec::new();
        let mut sink = |ev: Event| {
            if probe_on {
                events.push(ev);
            }
        };
        let state = procs
            .get_mut(&pid)
            .ok_or(UtlbError::UnregisteredProcess(pid))?;
        state.core.stats.lookups += 1;

        // User level: vpn → index (two memory references).
        charge_us(board, cost.user_check_us);
        let (index, check_miss) = match state.tree.lookup(page) {
            Some(ix) => (ix, false),
            None => {
                state.core.stats.check_misses += 1;
                sink(Event::CheckMiss);
                // Claim a slot, evicting under capacity pressure.
                let slot =
                    loop {
                        if let Some(s) = state.free.pop() {
                            break UtlbIndex(s);
                        }
                        let victim = state.core.pinned.select_victims(1).pop().ok_or(
                            UtlbError::TableFull {
                                pid,
                                capacity: cfg.table_entries,
                            },
                        )?;
                        let victim_ix = state
                            .tree
                            .invalidate(victim)
                            .expect("pinned pages are indexed");
                        let addr = Self::entry_addr(state, victim_ix);
                        let garbage = host.driver().garbage_addr().raw();
                        host.physical_mut().write_u64(addr, garbage)?;
                        cache.invalidate(pid, VirtPage::new(victim_ix.0 as u64));
                        state.core.unpin(
                            host,
                            board,
                            pid,
                            victim,
                            cost.unpin_cost(1),
                            EvictReason::TableFull,
                            &mut sink,
                        )?;
                        state.slot_owner.remove(&victim_ix.0);
                        state.free.push(victim_ix.0);
                    };
                // Pin and install at the chosen slot.
                let pinned =
                    state
                        .core
                        .pin(host, board, pid, page, 1, cost.pin_cost(1), &mut sink)?;
                let addr = Self::entry_addr(state, slot);
                host.physical_mut()
                    .write_u64(addr, pinned[0].phys_addr().raw())?;
                state.tree.install(page, slot);
                state.slot_owner.insert(slot.0, page);
                (slot, true)
            }
        };
        state.core.pinned.touch(page);

        // NIC level: the cache is keyed by the *index*, not the vpn
        // (Figure 3's "UTLB index tag" + "process tag" line format).
        charge_us(board, cost.ni_check_us);
        let key = VirtPage::new(index.0 as u64);
        let (phys, ni_miss) = match cache.lookup(pid, key) {
            Some(phys) => (phys, false),
            None => {
                // Miss: DMA the entry from the host-resident table.
                state.core.stats.ni_misses += 1;
                state.core.stats.entries_fetched += 1;
                let addr = Self::entry_addr(state, index);
                let Board { dma, clock, .. } = board;
                let (words, dma_cost) = dma.fetch_words_timed(clock, host.physical(), addr, 1)?;
                let phys = PhysAddr::new(words[0]);
                if cache.insert(pid, key, phys).is_some() {
                    sink(Event::Evict {
                        reason: EvictReason::CacheConflict,
                    });
                }
                sink(Event::NiMiss);
                sink(Event::DmaFetch {
                    entries: 1,
                    ns: dma_cost.as_nanos(),
                });
                (phys, true)
            }
        };
        if probe_on {
            for ev in events {
                probe.emit(pid, ev);
            }
            let ns = (board.clock.now() - t0).as_nanos();
            probe.emit(pid, Event::Lookup { ns });
        }
        Ok(PageOutcome {
            page,
            phys,
            check_miss,
            ni_miss,
        })
    }

    /// Batched lookup: translates `npages` pages starting at `start`,
    /// appending outcomes into the caller-owned buffer.
    ///
    /// The user-level tree's leaf slice is resolved once per run
    /// ([`UserLookupTree::leaf`]); consecutive pages whose index is mapped
    /// *and* whose `(pid, index)` line a stats-free cache peek finds take a
    /// coalesced fast path, their identical clock charges applied in one
    /// advance. Any other page settles the pending charges and goes through
    /// the scalar [`lookup`](IndexedEngine::lookup) unchanged, so outcomes,
    /// statistics, probe events, and the clock are identical to the scalar
    /// walk.
    ///
    /// # Errors
    ///
    /// Propagates pinning and memory errors; [`UtlbError::TableFull`] if no
    /// slot can be reclaimed.
    #[allow(clippy::too_many_arguments)] // host/board/pid threading is the engine calling convention
    pub fn lookup_run_into(
        &mut self,
        host: &mut Host,
        board: &mut Board,
        pid: ProcessId,
        start: VirtPage,
        npages: u64,
        out: &mut OutcomeBuf,
    ) -> Result<()> {
        if !self.procs.contains_key(&pid) {
            return Err(UtlbError::UnregisteredProcess(pid));
        }
        let user_ns = Nanos::from_micros(self.cfg.cost.user_check_us);
        let ni_ns = Nanos::from_micros(self.cfg.cost.ni_check_us);
        let hit_ns = user_ns + ni_ns;
        let hit_event_ns = hit_ns.as_nanos();

        let mut pending = 0u64; // coalesced hit charges not yet on the clock
        let mut i = 0u64;
        while i < npages {
            let page = start.offset(i);
            let state = self.procs.get_mut(&pid).expect("checked above");
            let ProcState { tree, core, .. } = state;
            // One directory reference covers the whole leaf; walk entries
            // whose index is mapped and whose cache line is present.
            let (leaf, off) = match tree.leaf(page) {
                Some(found) => found,
                None => (&[][..], 0),
            };
            let span = (leaf.len() - off).min((npages - i) as usize);
            let mut run = 0usize;
            while run < span {
                let Some(index) = leaf[off + run] else { break };
                let key = VirtPage::new(index.0 as u64);
                if self.cache.peek(pid, key).is_none() {
                    break;
                }
                let page = start.offset(i + run as u64);
                core.fast_hit(page);
                let phys = self.cache.lookup(pid, key).expect("peeked above");
                self.probe.emit(pid, Event::Lookup { ns: hit_event_ns });
                out.push(PageOutcome {
                    page,
                    phys,
                    check_miss: false,
                    ni_miss: false,
                });
                run += 1;
            }
            if run == 0 {
                // Slow page: settle the coalesced time first so the miss
                // path sees the same absolute clock as the scalar walk.
                if pending > 0 {
                    board.clock.advance(hit_ns * pending);
                    pending = 0;
                }
                out.push(self.lookup(host, board, pid, page)?);
                i += 1;
            } else {
                pending += run as u64;
                i += run as u64;
            }
        }
        if pending > 0 {
            board.clock.advance(hit_ns * pending);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        table_entries: usize,
        cache_entries: usize,
    ) -> (Host, Board, IndexedEngine, ProcessId) {
        let mut host = Host::new(1 << 14);
        let mut board = Board::new();
        let mut engine = IndexedEngine::new(IndexedConfig {
            cache: CacheConfig::direct(cache_entries),
            table_entries,
            ..IndexedConfig::default()
        });
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        (host, board, engine, pid)
    }

    #[test]
    fn lookup_translates_and_caches() {
        let (mut host, mut board, mut engine, pid) = setup(64, 32);
        let va = utlb_mem::VirtAddr::new(0x30_0000);
        host.process_mut(pid).unwrap().write(va, b"ix").unwrap();
        let o1 = engine
            .lookup(&mut host, &mut board, pid, va.page())
            .unwrap();
        let o2 = engine
            .lookup(&mut host, &mut board, pid, va.page())
            .unwrap();
        assert_eq!(o1.phys, o2.phys);
        assert!(o1.ni_miss && o1.check_miss);
        assert!(!o2.ni_miss && !o2.check_miss);
        let mut buf = [0u8; 2];
        host.physical().read(o1.phys, &mut buf).unwrap();
        assert_eq!(&buf, b"ix");
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.ni_misses, 1, "second lookup hits the shared cache");
        assert_eq!(s.check_misses, 1);
    }

    #[test]
    fn capacity_eviction_recycles_slots_and_invalidates_cache() {
        let (mut host, mut board, mut engine, pid) = setup(2, 32);
        for i in 0..3 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i))
                .unwrap();
        }
        let s = engine.stats(pid).unwrap();
        assert_eq!(s.unpins, 1, "third page evicts the LRU slot");
        assert!(s.unpin_time_ns > 0, "unpin work is time-accounted");
        assert!(!host.driver().pins().is_pinned(pid, VirtPage::new(0)));
        // Page 0 must translate freshly (slot was recycled for page 2).
        let r = engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(0))
            .unwrap();
        let expect = host
            .process(pid)
            .unwrap()
            .space()
            .translate(VirtPage::new(0))
            .unwrap()
            .base();
        assert_eq!(r.phys, expect, "recycled slot must not alias the old page");
    }

    #[test]
    fn fragmentation_appears_after_churn() {
        let (mut host, mut board, mut engine, pid) = setup(8, 64);
        // Fill sequentially: slots align with pages — no fragmentation.
        for i in 0..8 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i))
                .unwrap();
        }
        assert_eq!(engine.fragmentation(pid).unwrap(), 0.0);
        // Churn: touch a far-away region so old slots are reused out of
        // page order.
        for i in 100..104 {
            engine
                .lookup(&mut host, &mut board, pid, VirtPage::new(i))
                .unwrap();
        }
        assert!(
            engine.fragmentation(pid).unwrap() > 0.0,
            "index/page neighbourhoods must diverge after churn"
        );
    }

    #[test]
    fn two_processes_share_the_cache_by_index_without_aliasing() {
        let mut host = Host::new(1 << 14);
        let mut board = Board::new();
        let mut engine = IndexedEngine::new(IndexedConfig {
            cache: CacheConfig::direct(64),
            table_entries: 16,
            ..IndexedConfig::default()
        });
        let p1 = host.spawn_process();
        let p2 = host.spawn_process();
        engine.register_process(&mut host, &mut board, p1).unwrap();
        engine.register_process(&mut host, &mut board, p2).unwrap();
        // Both processes use index 0 for different pages.
        let va = utlb_mem::VirtAddr::new(0x40_0000);
        host.process_mut(p1).unwrap().write(va, b"p1").unwrap();
        host.process_mut(p2).unwrap().write(va, b"p2").unwrap();
        let a = engine.lookup(&mut host, &mut board, p1, va.page()).unwrap();
        let b = engine.lookup(&mut host, &mut board, p2, va.page()).unwrap();
        assert_ne!(
            a.phys, b.phys,
            "process tag must disambiguate identical indices"
        );
        let mut b1 = [0u8; 2];
        host.physical().read(a.phys, &mut b1).unwrap();
        assert_eq!(&b1, b"p1");
    }

    #[test]
    fn unregister_frees_table_frames_and_pins() {
        let (mut host, mut board, mut engine, pid) = setup(64, 32);
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(3))
            .unwrap();
        assert!(host.driver().pins().pinned_pages(pid) > 0);
        let free_before = host.physical().allocator().free_frames();
        engine
            .unregister_process(&mut host, &mut board, pid)
            .unwrap();
        assert_eq!(host.driver().pins().pinned_pages(pid), 0);
        assert!(
            host.physical().allocator().free_frames() > free_before,
            "host-resident table frames are reclaimed"
        );
        assert!(engine
            .unregister_process(&mut host, &mut board, pid)
            .is_err());
    }

    #[test]
    fn unknown_and_duplicate_process_errors() {
        let (mut host, mut board, mut engine, pid) = setup(8, 32);
        assert!(matches!(
            engine.register_process(&mut host, &mut board, pid),
            Err(UtlbError::AlreadyRegistered(_))
        ));
        assert!(matches!(
            engine.lookup(&mut host, &mut board, ProcessId::new(99), VirtPage::new(0)),
            Err(UtlbError::UnregisteredProcess(_))
        ));
    }
}
