//! The batched, allocation-free lookup path.
//!
//! The replay runners translate one trace record at a time, and a record is
//! a contiguous page run for one process. The scalar
//! [`lookup_run`](crate::TranslationMechanism::lookup_run) entry point
//! allocates a fresh `Vec<PageOutcome>` per record and re-derives per-process
//! state page by page; at millions of records that allocation and re-derivation
//! is the replay hot path. [`LookupBatch`] names the record's page run and
//! [`OutcomeBuf`] is the caller-owned buffer the batched
//! [`lookup_run_into`](crate::TranslationMechanism::lookup_run_into) path
//! emits into — the runner clears and reuses one buffer across the whole
//! trace, so the steady state allocates nothing per record.

use crate::PageOutcome;
use utlb_mem::{ProcessId, VirtAddr, VirtPage};

/// One record's translation request: `npages` consecutive pages for `pid`
/// starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupBatch {
    /// The requesting process.
    pub pid: ProcessId,
    /// First page of the run.
    pub start: VirtPage,
    /// Number of consecutive pages.
    pub npages: u64,
}

impl LookupBatch {
    /// A batch over an explicit page run.
    pub fn new(pid: ProcessId, start: VirtPage, npages: u64) -> Self {
        LookupBatch { pid, start, npages }
    }

    /// The batch covering the buffer `[va, va + nbytes)` — the page span a
    /// trace record describes.
    pub fn for_buffer(pid: ProcessId, va: VirtAddr, nbytes: u64) -> Self {
        LookupBatch {
            pid,
            start: va.page(),
            npages: va.span_pages(nbytes),
        }
    }
}

/// A caller-owned, reusable buffer of per-page outcomes.
///
/// The batched lookup path appends into this instead of returning a fresh
/// `Vec` per record; callers clear and reuse one buffer across a whole
/// trace, so its capacity is paid once.
#[derive(Debug, Default)]
pub struct OutcomeBuf {
    outcomes: Vec<PageOutcome>,
}

impl OutcomeBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        OutcomeBuf::default()
    }

    /// An empty buffer with room for `npages` outcomes.
    pub fn with_capacity(npages: usize) -> Self {
        OutcomeBuf {
            outcomes: Vec::with_capacity(npages),
        }
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.outcomes.clear();
    }

    /// Appends one outcome.
    pub fn push(&mut self, outcome: PageOutcome) {
        self.outcomes.push(outcome);
    }

    /// Appends a slice of outcomes.
    pub fn extend_from_slice(&mut self, outcomes: &[PageOutcome]) {
        self.outcomes.extend_from_slice(outcomes);
    }

    /// Outcomes recorded so far, in page order.
    pub fn as_slice(&self) -> &[PageOutcome] {
        &self.outcomes
    }

    /// Number of outcomes recorded.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcomes are recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Current capacity in outcomes.
    pub fn capacity(&self) -> usize {
        self.outcomes.capacity()
    }

    /// Iterates the recorded outcomes.
    pub fn iter(&self) -> std::slice::Iter<'_, PageOutcome> {
        self.outcomes.iter()
    }
}

impl<'a> IntoIterator for &'a OutcomeBuf {
    type Item = &'a PageOutcome;
    type IntoIter = std::slice::Iter<'a, PageOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utlb_mem::PhysAddr;

    #[test]
    fn buffer_reuse_keeps_capacity() {
        let mut buf = OutcomeBuf::with_capacity(8);
        for i in 0..8 {
            buf.push(PageOutcome {
                page: VirtPage::new(i),
                phys: PhysAddr::new(i << 12),
                check_miss: false,
                ni_miss: false,
            });
        }
        assert_eq!(buf.len(), 8);
        let cap = buf.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "clear keeps the allocation");
        assert_eq!(buf.iter().count(), 0);
    }

    #[test]
    fn batch_for_buffer_matches_the_record_span() {
        let pid = ProcessId::new(1);
        // 16 bytes before a page boundary, 32 bytes long: two pages.
        let va = VirtAddr::new(0x10_0FF0);
        let batch = LookupBatch::for_buffer(pid, va, 32);
        assert_eq!(batch, LookupBatch::new(pid, va.page(), 2));
        assert_eq!(batch.npages, 2);
    }
}
