//! The user-level pin-status bit vector.
//!
//! Under Hierarchical-UTLB "the user-level library only needs a bit array to
//! maintain the memory-pinning status of virtual pages" (§3.3). The check on
//! the send path scans this bitmap: its cost "varies with the first bit's
//! position in the bit map" (Table 1) — a run that is entirely pinned is
//! decided by whole-word probes, while a straggling first unpinned bit costs
//! a partial scan.
//!
//! The vector is chunked so a sparse 32-bit (or larger) virtual page space
//! costs memory proportional to the pages actually touched.

use std::collections::HashMap;
use utlb_mem::VirtPage;

const WORD_BITS: u64 = 64;
/// Pages covered by one chunk of the sparse bitmap.
const CHUNK_PAGES: u64 = 4096;
const CHUNK_WORDS: usize = (CHUNK_PAGES / WORD_BITS) as usize;

/// Result of a pin-status check over a page run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// First page in the run that is *not* pinned, if any.
    pub first_unpinned: Option<VirtPage>,
    /// Bitmap words probed — the unit the check cost scales with.
    pub words_probed: u64,
}

impl CheckOutcome {
    /// Whether the whole run was pinned (a check *hit*).
    pub fn is_hit(&self) -> bool {
        self.first_unpinned.is_none()
    }
}

/// Sparse bit vector recording which virtual pages are pinned.
#[derive(Debug, Default)]
pub struct PinBitVector {
    chunks: HashMap<u64, Box<[u64; CHUNK_WORDS]>>,
    set_bits: u64,
}

impl PinBitVector {
    /// Creates an empty (all-unpinned) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages marked pinned.
    pub fn count(&self) -> u64 {
        self.set_bits
    }

    fn locate(page: VirtPage) -> (u64, usize, u64) {
        let n = page.number();
        let chunk = n / CHUNK_PAGES;
        let within = n % CHUNK_PAGES;
        (chunk, (within / WORD_BITS) as usize, within % WORD_BITS)
    }

    /// Whether `page` is marked pinned.
    pub fn is_set(&self, page: VirtPage) -> bool {
        let (chunk, word, bit) = Self::locate(page);
        self.chunks
            .get(&chunk)
            .is_some_and(|c| c[word] & (1 << bit) != 0)
    }

    /// Marks `page` pinned. Returns `true` if the bit was newly set.
    pub fn set(&mut self, page: VirtPage) -> bool {
        let (chunk, word, bit) = Self::locate(page);
        let c = self
            .chunks
            .entry(chunk)
            .or_insert_with(|| Box::new([0u64; CHUNK_WORDS]));
        let mask = 1u64 << bit;
        if c[word] & mask == 0 {
            c[word] |= mask;
            self.set_bits += 1;
            true
        } else {
            false
        }
    }

    /// Marks `page` unpinned. Returns `true` if the bit was set before.
    pub fn clear(&mut self, page: VirtPage) -> bool {
        let (chunk, word, bit) = Self::locate(page);
        if let Some(c) = self.chunks.get_mut(&chunk) {
            let mask = 1u64 << bit;
            if c[word] & mask != 0 {
                c[word] &= !mask;
                self.set_bits -= 1;
                return true;
            }
        }
        false
    }

    /// Checks whether all of `start .. start+count` are pinned.
    ///
    /// Scans word-at-a-time like the real library and reports how many words
    /// it probed, so callers can charge a position-dependent check cost
    /// (Table 1 reports min and max over bit positions).
    pub fn check_run(&self, start: VirtPage, count: u64) -> CheckOutcome {
        let mut words_probed = 0u64;
        let mut i = 0u64;
        let mut last_word = None;
        while i < count {
            let page = start.offset(i);
            let (chunk, word, _) = Self::locate(page);
            let key = (chunk, word);
            if last_word != Some(key) {
                words_probed += 1;
                last_word = Some(key);
            }
            if !self.is_set(page) {
                return CheckOutcome {
                    first_unpinned: Some(page),
                    words_probed,
                };
            }
            i += 1;
        }
        CheckOutcome {
            first_unpinned: None,
            words_probed,
        }
    }

    /// Length of the pinned run starting at `start`, capped at `max` pages.
    ///
    /// The batched lookup path's word-wise predictor: each probe decides a
    /// whole bitmap word (up to 64 pages) at once, so a long pinned run is
    /// confirmed with one probe per 64 pages instead of one per page.
    pub fn pinned_prefix(&self, start: VirtPage, max: u64) -> u64 {
        let mut n = 0u64;
        while n < max {
            let (chunk, word, bit) = Self::locate(start.offset(n));
            let Some(c) = self.chunks.get(&chunk) else {
                return n;
            };
            // All bits from `bit` to the end of the word (bounded by the
            // pages still wanted), decided in one mask compare.
            let span = (WORD_BITS - bit).min(max - n);
            let mask = if span == WORD_BITS {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit
            };
            let missing = !c[word] & mask;
            if missing == 0 {
                n += span;
            } else {
                return n + (missing.trailing_zeros() as u64 - bit);
            }
        }
        n
    }
}

/// Fixed-capacity dense bit vector.
///
/// Backs the validity bits of [`crate::SharedUtlbCache`]'s flat line array:
/// one bit per cache line, packed 64 to a word, so a probe costs one shift
/// and mask instead of chasing an `Option` discriminant per way, and
/// occupancy is a popcount over the words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBits {
    words: Vec<u64>,
    len: usize,
}

impl DenseBits {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        DenseBits {
            words: vec![0u64; len.div_ceil(WORD_BITS as usize)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `ix` is set.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn get(&self, ix: usize) -> bool {
        assert!(ix < self.len, "bit {ix} out of bounds for {}", self.len);
        self.words[ix / 64] & (1u64 << (ix % 64)) != 0
    }

    /// Sets bit `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn set(&mut self, ix: usize) {
        assert!(ix < self.len, "bit {ix} out of bounds for {}", self.len);
        self.words[ix / 64] |= 1u64 << (ix % 64);
    }

    /// Clears bit `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn clear(&mut self, ix: usize) {
        assert!(ix < self.len, "bit {ix} out of bounds for {}", self.len);
        self.words[ix / 64] &= !(1u64 << (ix % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// First clear bit in `start..end`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector.
    pub fn first_zero_in(&self, start: usize, end: usize) -> Option<usize> {
        assert!(start <= end && end <= self.len, "range out of bounds");
        (start..end).find(|&ix| !self.get(ix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> VirtPage {
        VirtPage::new(n)
    }

    #[test]
    fn dense_bits_set_get_clear() {
        let mut b = DenseBits::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn dense_bits_first_zero_in() {
        let mut b = DenseBits::zeros(8);
        assert_eq!(b.first_zero_in(0, 8), Some(0));
        for i in 0..4 {
            b.set(i);
        }
        assert_eq!(b.first_zero_in(0, 8), Some(4));
        assert_eq!(b.first_zero_in(0, 4), None);
        assert_eq!(b.first_zero_in(4, 4), None, "empty range has no zero");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dense_bits_get_out_of_bounds_panics() {
        DenseBits::zeros(4).get(4);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut v = PinBitVector::new();
        assert!(!v.is_set(page(5)));
        assert!(v.set(page(5)));
        assert!(!v.set(page(5)), "second set is not new");
        assert!(v.is_set(page(5)));
        assert_eq!(v.count(), 1);
        assert!(v.clear(page(5)));
        assert!(!v.clear(page(5)));
        assert_eq!(v.count(), 0);
    }

    #[test]
    fn check_run_finds_first_unpinned() {
        let mut v = PinBitVector::new();
        for i in 0..10 {
            v.set(page(i));
        }
        v.clear(page(7));
        let out = v.check_run(page(0), 10);
        assert_eq!(out.first_unpinned, Some(page(7)));
        let hit = v.check_run(page(0), 7);
        assert!(hit.is_hit());
    }

    #[test]
    fn check_run_probes_fewer_words_when_failing_early() {
        let v = PinBitVector::new();
        // Nothing pinned: first probe decides.
        let out = v.check_run(page(0), 1000);
        assert_eq!(out.words_probed, 1);
        assert_eq!(out.first_unpinned, Some(page(0)));
    }

    #[test]
    fn full_scan_probes_proportional_words() {
        let mut v = PinBitVector::new();
        for i in 0..256 {
            v.set(page(i));
        }
        let out = v.check_run(page(0), 256);
        assert!(out.is_hit());
        assert_eq!(out.words_probed, 4, "256 pages / 64 bits per word");
    }

    #[test]
    fn sparse_far_apart_pages() {
        let mut v = PinBitVector::new();
        v.set(page(0));
        v.set(page(1 << 30));
        assert!(v.is_set(page(1 << 30)));
        assert!(!v.is_set(page(1 << 29)));
        assert_eq!(v.count(), 2);
    }

    #[test]
    fn pinned_prefix_agrees_with_check_run() {
        let mut v = PinBitVector::new();
        for i in 0..200 {
            v.set(page(i));
        }
        v.clear(page(130));
        assert_eq!(v.pinned_prefix(page(0), 256), 130);
        assert_eq!(v.pinned_prefix(page(0), 64), 64, "capped by max");
        assert_eq!(v.pinned_prefix(page(131), 69), 69);
        assert_eq!(v.pinned_prefix(page(130), 10), 0);
        assert_eq!(v.pinned_prefix(page(500), 10), 0, "untouched chunk");
        // Exhaustive cross-check against the scalar predicate.
        for start in 0..210 {
            for len in [1u64, 3, 63, 64, 65, 128] {
                let expect = (0..len).take_while(|i| v.is_set(page(start + i))).count() as u64;
                assert_eq!(
                    v.pinned_prefix(page(start), len),
                    expect,
                    "start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn pinned_prefix_crosses_chunk_boundaries() {
        let mut v = PinBitVector::new();
        let base = CHUNK_PAGES - 3;
        for i in 0..6 {
            v.set(page(base + i));
        }
        assert_eq!(v.pinned_prefix(page(base), 10), 6);
    }

    #[test]
    fn check_run_across_chunk_boundary() {
        let mut v = PinBitVector::new();
        let base = CHUNK_PAGES - 2;
        for i in 0..4 {
            v.set(page(base + i));
        }
        let out = v.check_run(page(base), 4);
        assert!(out.is_hit());
        assert_eq!(out.words_probed, 2);
    }
}
