//! # User-managed TLB (UTLB)
//!
//! A faithful reimplementation of the address-translation mechanism of
//! *Chen, Bilas, Damianakis, Dubnicki, Li — "UTLB: A Mechanism for Address
//! Translation on Network Interfaces" (ASPLOS 1998)*, on top of the
//! simulated host ([`utlb_mem`]) and NIC ([`utlb_nic`]) substrates.
//!
//! User-level direct-path communication needs the NIC to translate virtual
//! buffer addresses to physical ones, and needs those buffers pinned while
//! DMA is in flight. UTLB does both without system calls or interrupts on
//! the common path:
//!
//! * **demand-driven page pinning** — a buffer is pinned through a driver
//!   `ioctl` the first time it is used and stays pinned, amortizing the
//!   ~27 µs/page pin cost over later transfers;
//! * **a protected translation table** per process that the NIC reads
//!   directly; entries are initialized with a pinned *garbage page* so the
//!   NIC never validates indices;
//! * **a fast user-level lookup structure** so the send path can tell with
//!   a couple of memory references whether pinning is needed at all.
//!
//! Four mechanisms are provided — the three UTLB variants of §3 plus the
//! interrupt-driven design of §6.2 — and all of them implement
//! [`TranslationMechanism`], so every runner, experiment, and contention
//! model drives any of them through one surface:
//!
//! | Mechanism | Engine | `kernel_pins` | Translation state |
//! |---|---|---|---|
//! | Per-process UTLB (§3.1) | [`PerProcessEngine`] | no | fixed table in NIC SRAM + user-level two-level [`UserLookupTree`]; never NI-misses |
//! | Shared UTLB-Cache (§3.2) | [`IndexedEngine`] | no | flat index-keyed tables in host DRAM, shared `(pid, index)`-tagged cache on the NIC |
//! | Hierarchical-UTLB (§3.3) | [`UtlbEngine`] | no | two-level [`HierTable`] keyed by virtual address + [`PinBitVector`] + shared cache |
//! | Interrupt baseline (§6.2) | [`IntrEngine`] | yes | NIC cache only; every miss interrupts the host, every cache eviction unpins |
//!
//! Each engine composes the shared [`PinCore`] — the per-process
//! [`PinnedSet`] + counters block and the demand-pin/unpin path — and adds
//! only its own translation structure on top. The measured cost constants
//! live in [`CostModel`]; replacement policies (§3.4) in
//! [`Policy`]/[`PinnedSet`].
//!
//! # Example
//!
//! ```
//! use utlb_core::{UtlbConfig, UtlbEngine};
//! use utlb_mem::{Host, VirtAddr};
//! use utlb_nic::Board;
//!
//! # fn main() -> Result<(), utlb_core::UtlbError> {
//! let mut host = Host::new(1 << 16);
//! let mut board = Board::new();
//! let mut utlb = UtlbEngine::new(UtlbConfig::default());
//!
//! let pid = host.spawn_process();
//! utlb.register_process(&mut host, &mut board, pid)?;
//!
//! // First use of a buffer: pinned on demand, translations installed.
//! let report = utlb.lookup_buffer(&mut host, &mut board, pid, VirtAddr::new(0x10_0000), 8192)?;
//! assert!(report.pages.iter().all(|p| p.check_miss));
//!
//! // Second use: pure fast path — no syscalls, no interrupts.
//! let report = utlb.lookup_buffer(&mut host, &mut board, pid, VirtAddr::new(0x10_0000), 8192)?;
//! assert!(report.pages.iter().all(|p| !p.check_miss && !p.ni_miss));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod batch;
mod bitvec;
mod cache;
mod cost;
mod demand;
mod engine;
mod error;
mod hier;
mod indexed;
mod intr;
mod lookup;
mod mechanism;
pub mod obs;
mod perproc;
mod pincore;
mod policy;
mod stats;
mod table;

pub use batch::{LookupBatch, OutcomeBuf};
pub use bitvec::{CheckOutcome, DenseBits, PinBitVector};
pub use cache::{Associativity, CacheConfig, CacheStats, Evicted, SharedUtlbCache};
pub use cost::{CostModel, LookupRates};
pub use demand::{page_demands, page_demands_into, PageDemand};
pub use engine::{LookupReport, PageOutcome, UtlbConfig, UtlbConfigBuilder, UtlbEngine};
pub use error::UtlbError;
pub use hier::{DirEntry, HierTable, DIR_ENTRIES, LEAF_ENTRIES};
pub use indexed::{IndexedConfig, IndexedEngine};
pub use intr::{IntrConfig, IntrEngine, IntrOutcome};
pub use lookup::{UserLookupTree, UtlbIndex};
pub use mechanism::TranslationMechanism;
pub use perproc::{PerProcessConfig, PerProcessEngine};
pub use pincore::PinCore;
pub use policy::{PinnedSet, Policy};
pub use stats::TranslationStats;
pub use table::PerProcessTable;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, UtlbError>;
