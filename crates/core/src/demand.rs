//! Per-page resource-demand decomposition.
//!
//! The engines charge every cost to one serial clock and narrate what they
//! did through [`obs::Event`](crate::obs::Event)s. A contention simulator
//! needs the opposite view: *which resource* each nanosecond of a lookup
//! wanted — host kernel pin/unpin work, host interrupt dispatch, DMA over
//! the I/O bus, or NIC firmware time. [`page_demands`] recovers that split
//! from the event stream of one `lookup_run`, page by page, without the
//! engines having to know a queueing model exists.
//!
//! Both engines end every page with an [`Event::Lookup`] carrying the total
//! serial cost of that page, and emit their component events (`Pin`,
//! `Unpin`, `Interrupt`, `DmaFetch`) before it. Whatever the components do
//! not explain is NIC-firmware time ([`PageDemand::firmware_ns`]): check
//! probes, cache management, table walks.

use crate::obs::Event;
use serde::{Deserialize, Serialize};

/// Resource demand of one translated page, recovered from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageDemand {
    /// Total serial cost of the page (the `Lookup` event's charge).
    pub total_ns: u64,
    /// Host kernel pin + unpin work (driver `ioctl` bodies, victim
    /// unpinning). Runs in interrupt context iff the mechanism's
    /// `kernel_pins()` says so.
    pub pin_ns: u64,
    /// Host interrupt dispatch cost.
    pub intr_ns: u64,
    /// Translation-entry DMA time (engine programming + bus transfer).
    pub dma_ns: u64,
    /// Translation entries fetched by that DMA.
    pub dma_entries: u64,
}

impl PageDemand {
    /// NIC-firmware time: the slice of [`PageDemand::total_ns`] the
    /// component events do not explain (checks, cache probes, walks).
    /// Saturating, so a page can never demand negative firmware time.
    pub fn firmware_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.pin_ns + self.intr_ns + self.dma_ns)
    }

    /// Whether this page needed no host or bus work at all — the pure
    /// fast path.
    pub fn is_fast_path(&self) -> bool {
        self.pin_ns == 0 && self.intr_ns == 0 && self.dma_ns == 0
    }

    fn fold(&mut self, event: &Event) {
        match *event {
            Event::Pin { ns, .. } | Event::Unpin { ns } => self.pin_ns += ns,
            Event::Interrupt { ns } => self.intr_ns += ns,
            Event::DmaFetch { entries, ns } => {
                self.dma_ns += ns;
                self.dma_entries += entries;
            }
            // Structural markers carry no cost; Wait/Backpressure events are
            // produced by the contention and request-plane runners
            // themselves, never consumed here.
            Event::Lookup { .. }
            | Event::CheckMiss
            | Event::NiMiss
            | Event::Evict { .. }
            | Event::SwapIn
            | Event::Wait { .. }
            | Event::Connect
            | Event::Close
            | Event::Backpressure { .. } => {}
        }
    }
}

/// Decomposes the event stream of one `lookup_run` into per-page demands.
///
/// Each [`Event::Lookup`] closes a page; component events since the previous
/// `Lookup` belong to it. Events after the final `Lookup` (which the engines
/// never produce) are conservatively returned as one extra demand whose
/// total is the sum of its parts, so no charged time is dropped.
pub fn page_demands(events: &[Event]) -> Vec<PageDemand> {
    let mut pages = Vec::new();
    page_demands_into(events, &mut pages);
    pages
}

/// [`page_demands`] into a caller-owned buffer: clears `out` and appends the
/// demands, keeping its allocation. The contention runner decomposes every
/// record this way, reusing one buffer across the whole trace.
pub fn page_demands_into(events: &[Event], out: &mut Vec<PageDemand>) {
    out.clear();
    let mut current = PageDemand::default();
    let mut open = false;
    for event in events {
        current.fold(event);
        if let Event::Lookup { ns } = *event {
            current.total_ns = ns;
            out.push(current);
            current = PageDemand::default();
            open = false;
        } else {
            open = true;
        }
    }
    if open {
        current.total_ns = current.pin_ns + current.intr_ns + current.dma_ns;
        out.push(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::EvictReason;

    #[test]
    fn utlb_miss_page_splits_into_pin_dma_and_firmware() {
        // The UTLB engine's emission order on a pinning miss with a
        // conflict eviction after the cache fill.
        let events = vec![
            Event::CheckMiss,
            Event::Pin { run: 2, ns: 54_000 },
            Event::DmaFetch {
                entries: 2,
                ns: 1_532,
            },
            Event::Evict {
                reason: EvictReason::CacheConflict,
            },
            Event::NiMiss,
            Event::Lookup { ns: 56_000 },
        ];
        let pages = page_demands(&events);
        assert_eq!(pages.len(), 1);
        let p = pages[0];
        assert_eq!(p.total_ns, 56_000);
        assert_eq!(p.pin_ns, 54_000);
        assert_eq!(p.intr_ns, 0);
        assert_eq!(p.dma_ns, 1_532);
        assert_eq!(p.dma_entries, 2);
        assert_eq!(p.firmware_ns(), 56_000 - 54_000 - 1_532);
        assert!(!p.is_fast_path());
    }

    #[test]
    fn intr_miss_page_routes_everything_to_interrupt_and_pin() {
        // The baseline: interrupt dispatch, victim unpin, pin — no DMA.
        let events = vec![
            Event::NiMiss,
            Event::Interrupt { ns: 10_000 },
            Event::Evict {
                reason: EvictReason::MemLimit,
            },
            Event::Unpin { ns: 25_000 },
            Event::Pin { run: 1, ns: 27_000 },
            Event::Lookup { ns: 62_000 },
        ];
        let pages = page_demands(&events);
        assert_eq!(pages.len(), 1);
        let p = pages[0];
        assert_eq!(p.pin_ns, 52_000, "pin and unpin both count as pin work");
        assert_eq!(p.intr_ns, 10_000);
        assert_eq!(p.dma_ns, 0, "the baseline never DMAs entries");
        assert_eq!(p.firmware_ns(), 0, "62 - 52 - 10 leaves nothing");
    }

    #[test]
    fn hit_pages_are_pure_firmware() {
        let events = vec![
            Event::Lookup { ns: 80 },
            Event::Lookup { ns: 80 },
            Event::CheckMiss,
            Event::Lookup { ns: 400 },
        ];
        let pages = page_demands(&events);
        assert_eq!(pages.len(), 3);
        assert!(pages.iter().all(|p| p.is_fast_path()));
        assert_eq!(pages[0].firmware_ns(), 80);
        assert_eq!(pages[2].firmware_ns(), 400);
    }

    #[test]
    fn firmware_residual_saturates() {
        // A lookup cheaper than its components (cannot happen with the real
        // engines, but the decomposition must not panic or wrap).
        let events = vec![Event::Pin { run: 1, ns: 500 }, Event::Lookup { ns: 100 }];
        let pages = page_demands(&events);
        assert_eq!(pages[0].firmware_ns(), 0);
    }

    #[test]
    fn trailing_events_become_a_conservative_extra_page() {
        let events = vec![Event::Lookup { ns: 90 }, Event::Pin { run: 1, ns: 1_000 }];
        let pages = page_demands(&events);
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[1].total_ns, 1_000);
        assert_eq!(pages[1].firmware_ns(), 0);
    }

    #[test]
    fn empty_stream_yields_no_pages() {
        assert_eq!(page_demands(&[]), Vec::new());
    }

    #[test]
    fn into_variant_clears_and_reuses_the_buffer() {
        let first = vec![Event::Lookup { ns: 10 }, Event::Lookup { ns: 20 }];
        let second = vec![Event::Lookup { ns: 30 }];
        let mut out = Vec::new();
        page_demands_into(&first, &mut out);
        assert_eq!(out, page_demands(&first));
        let cap = out.capacity();
        page_demands_into(&second, &mut out);
        assert_eq!(out, page_demands(&second));
        assert_eq!(out.capacity(), cap, "reuse keeps the allocation");
    }
}
