//! The UTLB cost model.
//!
//! All constants come from the paper's microbenchmarks on a 300 MHz
//! Pentium-II running Windows NT 4.0 with a LANai 4.2 Myrinet NIC:
//!
//! * Table 1 — host-side costs: bitmap check (0.2 µs min, up to 0.7 µs),
//!   page pinning (27 µs for 1 page up to 115 µs for 32), unpinning
//!   (25–139 µs),
//! * Table 2 — NIC-side costs: cache hit 0.8 µs, DMA of 1–32 translation
//!   entries 1.5–2.5 µs, total miss handling 1.8–3.2 µs,
//! * §6.2 — user-level check 0.5 µs per lookup, interrupt dispatch 10 µs.
//!
//! The average-lookup-cost formulas of §6.2 (reproduced by Table 6) are
//! implemented by [`CostModel::utlb_lookup_cost`] and
//! [`CostModel::intr_lookup_cost`].

use serde::{Deserialize, Serialize};
use utlb_nic::Nanos;

/// Calibration points `(pages, cost)` with linear interpolation between
/// them and linear extrapolation past the last point.
fn interpolate(points: &[(u64, f64)], n: u64) -> f64 {
    assert!(!points.is_empty());
    if n <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if n <= x1 {
            let t = (n - x0) as f64 / (x1 - x0) as f64;
            return y0 + t * (y1 - y0);
        }
    }
    // Extrapolate with the slope of the last segment.
    let (x0, y0) = points[points.len() - 2];
    let (x1, y1) = points[points.len() - 1];
    let slope = (y1 - y0) / (x1 - x0) as f64;
    y1 + slope * (n - x1) as f64
}

/// Per-lookup rates measured by a simulation run, fed to the cost formulas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LookupRates {
    /// User-level check misses per lookup (UTLB only).
    pub check_miss_rate: f64,
    /// NIC translation-cache misses per lookup.
    pub ni_miss_rate: f64,
    /// Pages unpinned per lookup.
    pub unpin_rate: f64,
    /// Average pages pinned per pinning call (1 without prepinning).
    pub pages_per_pin: f64,
    /// Average translation entries fetched per NIC miss (1 without
    /// prefetching).
    pub entries_per_fetch: f64,
}

impl LookupRates {
    /// Rates with the given miss/unpin ratios and unit batch sizes.
    pub fn new(check_miss_rate: f64, ni_miss_rate: f64, unpin_rate: f64) -> Self {
        LookupRates {
            check_miss_rate,
            ni_miss_rate,
            unpin_rate,
            pages_per_pin: 1.0,
            entries_per_fetch: 1.0,
        }
    }
}

/// The paper-calibrated cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// User-level lookup (bitmap check) cost per lookup, §6.2: 0.5 µs.
    pub user_check_us: f64,
    /// NIC cache-hit lookup cost, §6.2: 0.8 µs per lookup.
    pub ni_check_us: f64,
    /// Extra SRAM reference to read the page directory on a miss (§3.3).
    pub directory_ref_us: f64,
    /// Host interrupt dispatch, §6.2: 10 µs.
    pub interrupt_us: f64,
    /// Syscall/context-switch overhead included in the user-level pin cost
    /// but factored out for the in-kernel (interrupt-handler) pin path.
    pub syscall_overhead_us: f64,
    /// DMA cost calibration points from Table 2 (`(entries, µs)`).
    pub dma_points: Vec<(u64, f64)>,
    /// Pin cost calibration points from Table 1 (`(pages, µs)`).
    pub pin_points: Vec<(u64, f64)>,
    /// Unpin cost calibration points from Table 1 (`(pages, µs)`).
    pub unpin_points: Vec<(u64, f64)>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            user_check_us: 0.5,
            ni_check_us: 0.8,
            directory_ref_us: 0.3,
            interrupt_us: 10.0,
            syscall_overhead_us: 5.0,
            dma_points: vec![(1, 1.5), (2, 1.6), (4, 1.6), (8, 1.9), (16, 2.1), (32, 2.5)],
            pin_points: vec![
                (1, 27.0),
                (2, 30.0),
                (4, 36.0),
                (8, 47.0),
                (16, 70.0),
                (32, 115.0),
            ],
            unpin_points: vec![
                (1, 25.0),
                (2, 30.0),
                (4, 36.0),
                (8, 50.0),
                (16, 80.0),
                (32, 139.0),
            ],
        }
    }
}

impl CostModel {
    /// Host bitmap-check cost for `npages`, best case (first probe decides).
    pub fn check_cost_min(&self, _npages: u64) -> f64 {
        0.2
    }

    /// Host bitmap-check cost for `npages`, worst case (scan to the end).
    ///
    /// Fitted to Table 1: 0.4 µs for 1 page growing to ~0.7 µs for 32.
    pub fn check_cost_max(&self, npages: u64) -> f64 {
        0.4 + 0.01 * npages as f64
    }

    /// DMA cost to fetch `entries` translation entries (Table 2 row 1).
    pub fn dma_cost(&self, entries: u64) -> f64 {
        interpolate(&self.dma_points, entries.max(1))
    }

    /// Total NIC miss-handling cost when `entries` are fetched: directory
    /// reference plus the DMA (Table 2 row 2).
    pub fn miss_cost(&self, entries: u64) -> f64 {
        self.directory_ref_us + self.dma_cost(entries)
    }

    /// User-level (ioctl) cost of pinning `npages` in one call (Table 1).
    pub fn pin_cost(&self, npages: u64) -> f64 {
        if npages == 0 {
            return 0.0;
        }
        interpolate(&self.pin_points, npages)
    }

    /// User-level cost of unpinning `npages` in one call (Table 1).
    pub fn unpin_cost(&self, npages: u64) -> f64 {
        if npages == 0 {
            return 0.0;
        }
        interpolate(&self.unpin_points, npages)
    }

    /// In-kernel pin cost (interrupt path): no protection-domain crossing,
    /// so the syscall overhead is factored out (§6.2).
    pub fn kernel_pin_cost(&self, npages: u64) -> f64 {
        (self.pin_cost(npages) - self.syscall_overhead_us).max(1.0)
    }

    /// In-kernel unpin cost (interrupt path).
    pub fn kernel_unpin_cost(&self, npages: u64) -> f64 {
        (self.unpin_cost(npages) - self.syscall_overhead_us).max(1.0)
    }

    /// Average UTLB translation-lookup cost in µs (§6.2):
    ///
    /// ```text
    /// lookup_utlb = user_check_hit
    ///             + user_pin_cost   · check_miss_rate
    ///             + ni_check_hit
    ///             + ni_miss_cost    · ni_miss_rate
    ///             + user_unpin_cost · unpin_rate
    /// ```
    pub fn utlb_lookup_cost(&self, r: &LookupRates) -> f64 {
        let pages = r.pages_per_pin.max(1.0).round() as u64;
        let entries = r.entries_per_fetch.max(1.0).round() as u64;
        // A batched pin of `pages` pages serves `pages` check misses, so the
        // per-miss cost is amortized over the batch.
        let pin_per_miss = self.pin_cost(pages) / pages as f64;
        self.user_check_us
            + pin_per_miss * r.check_miss_rate
            + self.ni_check_us
            + self.miss_cost(entries) * r.ni_miss_rate
            + self.unpin_cost(1) * r.unpin_rate
    }

    /// Average interrupt-based translation-lookup cost in µs (§6.2):
    ///
    /// ```text
    /// lookup_intr = ni_check
    ///             + (intr_cost + kernel_pin_cost) · ni_miss_rate
    ///             + kernel_unpin_cost             · unpin_rate
    /// ```
    pub fn intr_lookup_cost(&self, r: &LookupRates) -> f64 {
        self.ni_check_us
            + (self.interrupt_us + self.kernel_pin_cost(1)) * r.ni_miss_rate
            + self.kernel_unpin_cost(1) * r.unpin_rate
    }

    /// Average UTLB lookup cost when the firmware probes `probes_per_lookup`
    /// cache lines per lookup (§6.3): the Shared UTLB-Cache is software, so
    /// a k-way set costs up to k serial tag checks. This is why "the
    /// set-associative caches lose to the direct-map cache" once actual
    /// lookup cost is considered, even with comparable miss rates.
    pub fn utlb_lookup_cost_with_probes(&self, r: &LookupRates, probes_per_lookup: f64) -> f64 {
        let base = self.utlb_lookup_cost(r);
        // The first probe is part of ni_check; extras cost an SRAM tag
        // check each (~directory_ref_us worth of firmware work).
        let extra_probes = (probes_per_lookup - 1.0).max(0.0);
        base + extra_probes * self.directory_ref_us
    }

    /// The fast-path total from §5: user check hit plus NIC cache hit.
    pub fn fast_path(&self) -> Nanos {
        Nanos::from_micros(self.user_check_us + self.ni_check_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_hits_calibration_points() {
        let m = CostModel::default();
        assert_eq!(m.pin_cost(1), 27.0);
        assert_eq!(m.pin_cost(16), 70.0);
        assert_eq!(m.unpin_cost(32), 139.0);
        assert_eq!(m.dma_cost(4), 1.6);
    }

    #[test]
    fn interpolation_between_and_beyond_points() {
        let m = CostModel::default();
        let mid = m.pin_cost(3);
        assert!(mid > 30.0 && mid < 36.0, "pin(3) = {mid}");
        // Extrapolation continues the last slope.
        let beyond = m.pin_cost(64);
        assert!(beyond > 115.0, "pin(64) = {beyond}");
        // Below the first point clamps.
        assert_eq!(m.dma_cost(0), 1.5);
    }

    #[test]
    fn pin_is_cheaper_per_page_in_batches() {
        // The property motivating sequential pre-pinning (§6.5).
        let m = CostModel::default();
        assert!(m.pin_cost(16) / 16.0 < m.pin_cost(1));
    }

    #[test]
    fn miss_cost_matches_table2() {
        let m = CostModel::default();
        // Table 2: total miss cost 1.8 µs at 1 entry, 3.2 µs at 32 entries.
        assert!((m.miss_cost(1) - 1.8).abs() < 0.01);
        assert!((m.miss_cost(32) - 2.8).abs() < 0.45);
    }

    #[test]
    fn utlb_beats_intr_at_moderate_miss_rates() {
        // FFT-like rates from Table 4 at 1K entries.
        let m = CostModel::default();
        let utlb = m.utlb_lookup_cost(&LookupRates::new(0.25, 0.50, 0.0));
        let intr = m.intr_lookup_cost(&LookupRates::new(0.0, 0.50, 0.49));
        assert!(utlb < intr, "utlb {utlb} vs intr {intr}");
    }

    #[test]
    fn intr_wins_when_misses_vanish() {
        // Barnes at 16K entries: both NI miss rates 0.04, no unpins; the
        // interrupt approach skips the user-level check so it is cheaper —
        // the paper's Table 6 shows exactly this crossover (2.5 vs 1.9 µs).
        let m = CostModel::default();
        let utlb = m.utlb_lookup_cost(&LookupRates::new(0.04, 0.04, 0.0));
        let intr = m.intr_lookup_cost(&LookupRates::new(0.0, 0.04, 0.004));
        assert!(intr < utlb, "utlb {utlb} vs intr {intr}");
    }

    #[test]
    fn serial_probes_penalize_wide_sets() {
        let m = CostModel::default();
        let r = LookupRates::new(0.1, 0.1, 0.0);
        let direct = m.utlb_lookup_cost_with_probes(&r, 1.0);
        let four_way = m.utlb_lookup_cost_with_probes(&r, 3.0);
        assert_eq!(direct, m.utlb_lookup_cost(&r));
        assert!(four_way > direct + 0.5, "{four_way} vs {direct}");
    }

    #[test]
    fn fast_path_is_sub_two_microseconds() {
        let m = CostModel::default();
        let us = m.fast_path().as_micros();
        assert!(us <= 1.5, "fast path {us} µs");
    }

    #[test]
    fn prefetch_amortizes_miss_cost() {
        let m = CostModel::default();
        // Fetching 8 entries costs far less than 8 single fetches.
        assert!(m.miss_cost(8) < 4.0 * m.miss_cost(1));
    }

    #[test]
    fn batched_rates_lower_utlb_cost() {
        let m = CostModel::default();
        let mut r = LookupRates::new(0.5, 0.5, 0.0);
        let single = m.utlb_lookup_cost(&r);
        r.pages_per_pin = 16.0;
        r.entries_per_fetch = 16.0;
        let batched = m.utlb_lookup_cost(&r);
        assert!(batched < single);
    }
}
