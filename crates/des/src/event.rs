//! The pending-event set.
//!
//! A discrete-event simulation is only as reproducible as its event order.
//! Entries here are totally ordered by `(at, key, seq)`: simulated time
//! first, then a caller-chosen tie-break key (the trace replayer uses the
//! process id, matching `utlb-trace`'s merge order), then the insertion
//! sequence number — so two events scheduled for the same instant with the
//! same key pop in the order they were pushed, on every run, under any
//! thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use utlb_nic::Nanos;

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: Nanos,
    /// Caller-chosen tie-break key (see [`EventQueue::push_keyed`]).
    pub key: u64,
    /// Insertion sequence number — the final tie-break.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

/// Heap entry; ordering ignores the payload entirely so `T` needs no `Ord`.
#[derive(Debug)]
struct Entry<T>(Scheduled<T>);

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.key, self.0.seq) == (other.0.at, other.0.key, other.0.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.0.at, other.0.key, other.0.seq).cmp(&(self.0.at, self.0.key, self.0.seq))
    }
}

/// A deterministic pending-event set keyed by simulated time.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `at` with tie-break key 0.
    pub fn push(&mut self, at: Nanos, payload: T) -> u64 {
        self.push_keyed(at, 0, payload)
    }

    /// Schedules `payload` at `at` with an explicit tie-break `key`.
    ///
    /// Among events at the same instant, smaller keys pop first; among
    /// equal keys, earlier pushes pop first. Returns the sequence number
    /// assigned.
    pub fn push_keyed(&mut self, at: Nanos, key: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled {
            at,
            key,
            seq,
            payload,
        }));
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events pushed over the queue's lifetime (the next sequence number).
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Nanos {
        Nanos::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ns(30), "c");
        q.push(ns(10), "a");
        q.push(ns(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_ties_break_by_key_then_seq() {
        let mut q = EventQueue::new();
        q.push_keyed(ns(5), 2, "pid2-first");
        q.push_keyed(ns(5), 1, "pid1");
        q.push_keyed(ns(5), 2, "pid2-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["pid1", "pid2-first", "pid2-second"]);
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(ns(7), ());
        q.push(ns(3), ());
        assert_eq!(q.peek_time(), Some(ns(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(ns(7)));
        assert_eq!(q.total_scheduled(), 2, "popping does not unschedule");
    }

    #[test]
    fn sequence_numbers_are_stable_across_identical_runs() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                // Adversarial: many same-time, same-key events.
                q.push_keyed(ns(i % 3), i % 2, i);
            }
            std::iter::from_fn(move || q.pop().map(|e| (e.at, e.key, e.seq, e.payload)))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
