//! Deterministic discrete-event contention core.
//!
//! The paper's §6 cost model charges every translation a *fixed* cost and
//! sums serially, so the Shared UTLB-Cache's DMA fills, the interrupt-based
//! baseline's handler dispatches, and multiprogrammed processes never
//! contend — yet the whole argument is about traffic crossing a shared I/O
//! bus. This crate supplies the timing substrate under which load actually
//! interferes:
//!
//! * [`EventQueue`] — a [`Nanos`]-keyed pending-event set, tie-broken by an
//!   explicit key and then by insertion sequence, so replays are
//!   reproducible byte for byte regardless of how the caller is threaded.
//! * [`Resource`] — a named multi-server station with FIFO or priority
//!   queueing and occupancy tracking; grants split each acquisition into
//!   *wait* (queueing delay) and *service* (the device's own cost), which
//!   is exactly the split the paper's Table 2 numbers cannot show.
//! * [`models`] — concrete stations for the I/O bus (per-transfer setup +
//!   per-word bandwidth, fitted to Table 2), the NIC DMA engine, and host
//!   interrupt service (dispatch latency + handler occupancy), plus the
//!   [`DesConfig`] knob set — [`DesConfig::zero_contention`] reproduces the
//!   serial cost model exactly, which `utlb-sim`'s equivalence tests pin.
//!
//! The crate is deliberately free of simulation policy: it knows nothing
//! about caches, pins, or traces. `utlb-sim::run_des` drives the real
//! translation engines and routes their bus/DMA/interrupt demands through
//! these stations.
//!
//! [`Nanos`]: utlb_nic::Nanos
//! [`DesConfig`]: models::DesConfig
//! [`DesConfig::zero_contention`]: models::DesConfig::zero_contention

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod admission;
mod event;
pub mod models;
mod resource;

pub use admission::{Admission, AdmissionOutcome, AdmissionStats, CreditWindow};
pub use event::{EventQueue, Scheduled};
pub use models::{DesConfig, DmaEngineModel, IntrServiceModel, IoBusModel};
pub use resource::{Capacity, Discipline, Grant, Resource, ResourceReport, ResourceStats};
