//! Credit-based admission control for request planes.
//!
//! A [`CreditWindow`] models one connection's flow-control state: the peer
//! holds `window` credits, each outstanding request consumes one until it
//! completes, and a bounded stall queue of depth `queue` absorbs bursts
//! beyond the window. A request arriving with no credit available is
//! *stalled* to the instant a credit returns (charged as deterministic
//! wait time, the request plane's analogue of a [`Resource`] grant's
//! `wait`), and a request arriving with the stall queue also full is
//! *rejected* outright — the typed outcome a sender sees as backpressure.
//!
//! Everything is a pure function of the admission sequence: same arrivals
//! and completions in, same grants out, regardless of wall-clock threading.
//! `utlb-sim::frontend` keeps one window per connection and reconciles the
//! per-window counters exactly against the observability stream.
//!
//! [`Resource`]: crate::Resource

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use utlb_nic::Nanos;

/// One admitted request's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// When the request was admitted (≥ its arrival).
    pub at: Nanos,
    /// Credit-wait: `at - arrival` (zero when a credit was free).
    pub stall: Nanos,
}

/// The outcome of offering one request to a [`CreditWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// The request was admitted (possibly after a stall).
    Admitted(Admission),
    /// The window and the stall queue were both full; the request is
    /// dropped and the sender must retry later.
    Rejected,
}

/// Accumulated flow-control counters of one [`CreditWindow`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests admitted (stalled or not).
    pub admitted: u64,
    /// Admitted requests that had to wait for a credit.
    pub stalled: u64,
    /// Requests rejected because window and stall queue were both full.
    pub rejected: u64,
    /// Total credit-wait across all stalled admissions, in nanoseconds.
    pub stall_ns: u64,
    /// Largest number of requests simultaneously in flight.
    pub max_in_flight: u64,
}

/// Per-connection credit window with a bounded stall queue.
///
/// The caller offers requests in nondecreasing arrival order via
/// [`offer`](CreditWindow::offer) and reports each admitted request's
/// completion via [`complete`](CreditWindow::complete); completions return
/// the credit at their timestamp. With `window = W` and `queue = Q`, at
/// most `W` requests are in service and at most `Q` more are stalled
/// waiting for credits at any instant; the `W + Q + 1`-th concurrent
/// request is rejected.
#[derive(Debug, Clone)]
pub struct CreditWindow {
    window: usize,
    queue: usize,
    /// Scheduled completion times of admitted, not-yet-completed requests,
    /// kept sorted ascending so the next credit return is the front.
    in_flight: VecDeque<Nanos>,
    last_arrival: Nanos,
    stats: AdmissionStats,
}

impl CreditWindow {
    /// A window of `window` credits with a stall queue of depth `queue`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a credit-less connection can never
    /// admit anything and would silently reject its whole load.
    pub fn new(window: usize, queue: usize) -> Self {
        assert!(window > 0, "credit window needs at least one credit");
        CreditWindow {
            window,
            queue,
            in_flight: VecDeque::new(),
            last_arrival: Nanos::ZERO,
            stats: AdmissionStats::default(),
        }
    }

    /// Credits in the window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stall-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue
    }

    /// Requests admitted and not yet completed, as of the last
    /// [`offer`](CreditWindow::offer)'s arrival time.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Offers one request arriving at `arrival`.
    ///
    /// Completions scheduled at or before `arrival` return their credits
    /// first; then the request is admitted immediately (free credit),
    /// stalled to the instant the `queue`-bounded backlog drains a credit,
    /// or rejected. The caller must later [`complete`](CreditWindow::complete)
    /// every admitted request.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` runs backwards relative to the previous offer —
    /// the window's grants are only FIFO-exact for an in-order arrival
    /// stream, and silently accepting reordered arrivals would corrupt
    /// the wait accounting.
    pub fn offer(&mut self, arrival: Nanos) -> AdmissionOutcome {
        assert!(
            arrival >= self.last_arrival,
            "offers must arrive in nondecreasing time order"
        );
        self.last_arrival = arrival;
        // Credits whose requests completed by `arrival` are back.
        while self.in_flight.front().is_some_and(|end| *end <= arrival) {
            self.in_flight.pop_front();
        }
        let outstanding = self.in_flight.len();
        if outstanding >= self.window + self.queue {
            self.stats.rejected += 1;
            return AdmissionOutcome::Rejected;
        }
        let at = if outstanding < self.window {
            arrival
        } else {
            // Stalled: admitted the instant enough earlier requests finish
            // to free a credit — the (outstanding - window + 1)-th next
            // completion, which is an index into the sorted in-flight set.
            self.in_flight[outstanding - self.window]
        };
        let stall = at.saturating_sub(arrival);
        self.stats.admitted += 1;
        if stall > Nanos::ZERO {
            self.stats.stalled += 1;
            self.stats.stall_ns += stall.as_nanos();
        }
        AdmissionOutcome::Admitted(Admission { at, stall })
    }

    /// Records that an admitted request will complete (and return its
    /// credit) at `end`.
    pub fn complete(&mut self, end: Nanos) {
        // Completion times are usually monotone (FIFO service), so probe
        // the back first and fall back to a binary-search insert when a
        // short request overtakes a long one.
        let pos = if self.in_flight.back().is_none_or(|b| *b <= end) {
            self.in_flight.len()
        } else {
            self.in_flight.partition_point(|e| *e <= end)
        };
        self.in_flight.insert(pos, end);
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Nanos {
        Nanos::from_nanos(n)
    }

    fn admit(w: &mut CreditWindow, arrival: u64) -> Admission {
        match w.offer(ns(arrival)) {
            AdmissionOutcome::Admitted(a) => a,
            AdmissionOutcome::Rejected => panic!("unexpected rejection at {arrival}"),
        }
    }

    #[test]
    fn free_credits_admit_at_arrival() {
        let mut w = CreditWindow::new(2, 4);
        let a = admit(&mut w, 10);
        assert_eq!((a.at, a.stall), (ns(10), ns(0)));
        w.complete(ns(100));
        let b = admit(&mut w, 20);
        assert_eq!(b.stall, ns(0), "second credit still free");
        w.complete(ns(200));
        assert_eq!(w.stats().stalled, 0);
    }

    #[test]
    fn exhausted_window_stalls_to_the_next_credit_return() {
        let mut w = CreditWindow::new(1, 4);
        admit(&mut w, 0);
        w.complete(ns(100));
        let b = admit(&mut w, 30);
        assert_eq!((b.at, b.stall), (ns(100), ns(70)));
        w.complete(ns(150));
        // A third request at t=40 must wait for BOTH earlier completions:
        // its credit frees when the stalled request (ending 150) finishes.
        let c = admit(&mut w, 40);
        assert_eq!((c.at, c.stall), (ns(150), ns(110)));
        let s = w.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.stalled, 2);
        assert_eq!(s.stall_ns, 180);
    }

    #[test]
    fn completions_return_credits_at_their_timestamp() {
        let mut w = CreditWindow::new(1, 4);
        admit(&mut w, 0);
        w.complete(ns(50));
        // Arrival after the completion sees a free credit again.
        let b = admit(&mut w, 60);
        assert_eq!(b.stall, ns(0));
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn full_stall_queue_rejects() {
        let mut w = CreditWindow::new(1, 2);
        // One in service ending late, two stalled behind it: queue full.
        admit(&mut w, 0);
        w.complete(ns(1000));
        for t in [1, 2] {
            let a = admit(&mut w, t);
            w.complete(a.at + ns(10));
        }
        assert_eq!(w.offer(ns(3)), AdmissionOutcome::Rejected);
        assert_eq!(w.stats().rejected, 1);
        // Once everything drains, admission resumes.
        let late = admit(&mut w, 2000);
        assert_eq!(late.stall, ns(0));
    }

    #[test]
    fn out_of_order_completions_keep_the_credit_order_sorted() {
        let mut w = CreditWindow::new(2, 2);
        admit(&mut w, 0);
        w.complete(ns(500)); // long request
        admit(&mut w, 10);
        w.complete(ns(60)); // short request overtakes it
                            // The next credit frees at 60, not 500.
        let c = admit(&mut w, 20);
        assert_eq!(c.at, ns(60));
        assert_eq!(w.stats().max_in_flight, 2);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut w = CreditWindow::new(3, 5);
            let mut grants = Vec::new();
            for i in 0..200u64 {
                match w.offer(ns(i * 7)) {
                    AdmissionOutcome::Admitted(a) => {
                        w.complete(a.at + ns(40 + (i % 9) * 13));
                        grants.push((a.at, a.stall));
                    }
                    AdmissionOutcome::Rejected => grants.push((Nanos::ZERO, Nanos::ZERO)),
                }
            }
            (grants, w.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn zero_window_panics() {
        CreditWindow::new(0, 4);
    }
}
