//! Contended stations with FIFO/priority queueing and occupancy tracking.
//!
//! A [`Resource`] models one shared device — the I/O bus, the DMA engine,
//! the host CPU servicing interrupts — as a bank of identical servers.
//! Every acquisition yields a [`Grant`] splitting the request's life into
//! *wait* (queueing delay behind earlier occupants) and *service* (the
//! device's own cost); the accumulated [`ResourceStats`] are the occupancy
//! picture a run exports.
//!
//! Two usage modes:
//!
//! * [`Resource::acquire`] admits one request immediately, first-come
//!   first-served in admission order — the right shape for a replayer that
//!   walks requests in nondecreasing time.
//! * [`Resource::submit`] + [`Resource::drain`] batch requests first and
//!   schedule them together under the configured [`Discipline`], which is
//!   how a priority station lets a late high-priority request overtake a
//!   waiting low-priority one.

use serde::{Deserialize, Serialize};
use utlb_nic::Nanos;

/// How many servers a station has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// A bank of `n` identical servers (n ≥ 1).
    Finite(usize),
    /// No queueing ever — every request starts at its arrival time.
    Infinite,
}

/// Queueing discipline for batched ([`Resource::submit`]) requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-come first-served by arrival time.
    Fifo,
    /// Lower priority value first; FIFO within a priority class.
    Priority,
}

/// The outcome of one acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (≥ the request's arrival).
    pub start: Nanos,
    /// When service finished.
    pub end: Nanos,
    /// Queueing delay: `start - arrival`.
    pub wait: Nanos,
}

/// Accumulated occupancy counters of one [`Resource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Requests admitted.
    pub arrivals: u64,
    /// Requests fully scheduled (equals `arrivals` once drained).
    pub served: u64,
    /// Total service time, in nanoseconds (occupancy).
    pub busy_ns: u64,
    /// Total queueing delay, in nanoseconds.
    pub wait_ns: u64,
    /// Largest pending-queue depth observed (batched mode only).
    pub max_queue: u64,
}

impl ResourceStats {
    /// Mean queueing delay per served request, in nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.wait_ns as f64 / self.served as f64
        }
    }

    /// Fraction of `horizon` one server spent busy (can exceed 1.0 for a
    /// multi-server bank; divide by the server count for per-server load).
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            0.0
        } else {
            self.busy_ns as f64 / horizon.as_nanos() as f64
        }
    }
}

/// A named occupancy snapshot, the JSON-exportable form of a station.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Station name ("io_bus", "intr_service", …).
    pub name: String,
    /// Its counters.
    pub stats: ResourceStats,
}

/// One batched request awaiting [`Resource::drain`].
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    arrival: Nanos,
    service: Nanos,
    priority: u8,
}

/// A contended station: named, with a server bank and a queueing discipline.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Free-at time per server; empty for [`Capacity::Infinite`].
    servers: Vec<Nanos>,
    infinite: bool,
    discipline: Discipline,
    pending: Vec<Pending>,
    next_id: u64,
    stats: ResourceStats,
}

impl Resource {
    /// A station with the given capacity and discipline.
    ///
    /// # Panics
    ///
    /// Panics on `Capacity::Finite(0)` — a zero-server station can never
    /// serve and would deadlock silently.
    pub fn new(name: impl Into<String>, capacity: Capacity, discipline: Discipline) -> Self {
        let (servers, infinite) = match capacity {
            Capacity::Finite(n) => {
                assert!(n > 0, "a station needs at least one server");
                (vec![Nanos::ZERO; n], false)
            }
            Capacity::Infinite => (Vec::new(), true),
        };
        Resource {
            name: name.into(),
            servers,
            infinite,
            discipline,
            pending: Vec::new(),
            next_id: 0,
            stats: ResourceStats::default(),
        }
    }

    /// A FIFO station with `servers` servers.
    pub fn fifo(name: impl Into<String>, servers: usize) -> Self {
        Resource::new(name, Capacity::Finite(servers), Discipline::Fifo)
    }

    /// A priority station with `servers` servers.
    pub fn priority(name: impl Into<String>, servers: usize) -> Self {
        Resource::new(name, Capacity::Finite(servers), Discipline::Priority)
    }

    /// An uncontended station: infinite capacity, zero wait always.
    pub fn unlimited(name: impl Into<String>) -> Self {
        Resource::new(name, Capacity::Infinite, Discipline::Fifo)
    }

    /// Station name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Named snapshot for export.
    pub fn report(&self) -> ResourceReport {
        ResourceReport {
            name: self.name.clone(),
            stats: self.stats,
        }
    }

    /// Index of the server that frees up earliest (lowest index on ties,
    /// for determinism).
    fn earliest_server(&self) -> usize {
        self.servers
            .iter()
            .enumerate()
            .min_by_key(|(i, free)| (**free, *i))
            .map(|(i, _)| i)
            .expect("finite station has servers")
    }

    /// Admits one request *now* and serves it as soon as a server frees up,
    /// first-come first-served in admission order.
    ///
    /// The grant's `wait` is exact FIFO queueing delay when admissions
    /// happen in nondecreasing `now` order (the replayer's case); admissions
    /// that run backwards in time still get a well-defined, deterministic
    /// grant (`start = max(now, earliest free server)`) but model a station
    /// that cannot reorder already-granted work.
    pub fn acquire(&mut self, now: Nanos, service: Nanos) -> Grant {
        self.acquire_with(now, |start| start + service)
    }

    /// Like [`acquire`](Resource::acquire), but the occupancy is computed
    /// *from the grant's start time* by `occupy`, which returns the end
    /// time. This lets a caller hold one station while it queues at others
    /// (the NIC firmware holds its processor across a fill's bus waits).
    ///
    /// # Panics
    ///
    /// Panics if `occupy` returns an end before its start.
    pub fn acquire_with(&mut self, now: Nanos, occupy: impl FnOnce(Nanos) -> Nanos) -> Grant {
        self.stats.arrivals += 1;
        let (start, server) = if self.infinite {
            (now, None)
        } else {
            let s = self.earliest_server();
            (now.max(self.servers[s]), Some(s))
        };
        let end = occupy(start);
        assert!(end >= start, "occupancy cannot end before it starts");
        if let Some(s) = server {
            self.servers[s] = end;
        }
        let wait = start.saturating_sub(now);
        self.stats.served += 1;
        self.stats.busy_ns += (end - start).as_nanos();
        self.stats.wait_ns += wait.as_nanos();
        Grant { start, end, wait }
    }

    /// Enqueues a request for batched scheduling; returns its id.
    ///
    /// `priority` is ignored under [`Discipline::Fifo`]. Lower values are
    /// more urgent under [`Discipline::Priority`].
    pub fn submit(&mut self, arrival: Nanos, service: Nanos, priority: u8) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Pending {
            id,
            arrival,
            service,
            priority,
        });
        self.stats.arrivals += 1;
        self.stats.max_queue = self.stats.max_queue.max(self.pending.len() as u64);
        id
    }

    /// Schedules every pending request under the station's discipline and
    /// returns `(id, grant)` pairs in service-start order.
    ///
    /// Under [`Discipline::Priority`], whenever a server frees up the
    /// highest-priority request *already arrived by that time* is taken —
    /// so a late urgent request overtakes earlier-arrived bulk work, but
    /// never preempts service in progress.
    pub fn drain(&mut self) -> Vec<(u64, Grant)> {
        let mut pending = std::mem::take(&mut self.pending);
        let mut out = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            let (free, server) = if self.infinite {
                (Nanos::ZERO, None)
            } else {
                let s = self.earliest_server();
                (self.servers[s], Some(s))
            };
            // The next service starts no earlier than the server frees and
            // no earlier than the first arrival still waiting.
            let first_arrival = pending.iter().map(|p| p.arrival).min().expect("non-empty");
            let decision_time = free.max(first_arrival);
            let chosen = pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.arrival <= decision_time)
                .min_by_key(|(_, p)| match self.discipline {
                    Discipline::Fifo => (0u8, p.arrival, p.id),
                    Discipline::Priority => (p.priority, p.arrival, p.id),
                })
                .map(|(i, _)| i)
                .expect("first_arrival guarantees an eligible request");
            let p = pending.swap_remove(chosen);
            let start = p.arrival.max(free);
            let end = start + p.service;
            if let Some(s) = server {
                self.servers[s] = end;
            }
            self.stats.served += 1;
            self.stats.busy_ns += p.service.as_nanos();
            self.stats.wait_ns += (start - p.arrival).as_nanos();
            out.push((
                p.id,
                Grant {
                    start,
                    end,
                    wait: start - p.arrival,
                },
            ));
        }
        out.sort_by_key(|(id, g)| (g.start, *id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Nanos {
        Nanos::from_nanos(n)
    }

    #[test]
    fn fifo_acquire_serializes_overlapping_work() {
        let mut bus = Resource::fifo("io_bus", 1);
        let a = bus.acquire(ns(0), ns(100));
        let b = bus.acquire(ns(40), ns(100));
        let c = bus.acquire(ns(400), ns(10));
        assert_eq!((a.start, a.end, a.wait), (ns(0), ns(100), ns(0)));
        assert_eq!((b.start, b.end, b.wait), (ns(100), ns(200), ns(60)));
        assert_eq!(
            (c.start, c.end, c.wait),
            (ns(400), ns(410), ns(0)),
            "idle gap"
        );
        let s = bus.stats();
        assert_eq!(s.served, 3);
        assert_eq!(s.busy_ns, 210);
        assert_eq!(s.wait_ns, 60);
        assert!((s.mean_wait_ns() - 20.0).abs() < 1e-9);
        assert!((s.utilization(ns(410)) - 210.0 / 410.0).abs() < 1e-12);
    }

    #[test]
    fn two_servers_halve_the_queueing() {
        let mut r = Resource::fifo("dual", 2);
        let a = r.acquire(ns(0), ns(100));
        let b = r.acquire(ns(0), ns(100));
        let c = r.acquire(ns(10), ns(100));
        assert_eq!(a.wait, ns(0));
        assert_eq!(b.wait, ns(0), "second server picks it up");
        assert_eq!(c.start, ns(100), "third waits for the earliest server");
    }

    #[test]
    fn unlimited_station_never_queues() {
        let mut r = Resource::unlimited("host_cpu");
        for i in 0..10u64 {
            let g = r.acquire(ns(i), ns(1_000_000));
            assert_eq!(g.wait, Nanos::ZERO);
            assert_eq!(g.start, ns(i));
        }
        assert_eq!(r.stats().wait_ns, 0);
        assert_eq!(r.stats().busy_ns, 10_000_000);
    }

    #[test]
    fn acquire_with_holds_the_station_across_nested_waits() {
        let mut fw = Resource::fifo("firmware", 1);
        // The closure gets the admission time and stretches occupancy to an
        // externally computed end — modeling the firmware busy across a
        // fill that itself queued at the bus.
        let g = fw.acquire_with(ns(50), |start| start + ns(300));
        assert_eq!((g.start, g.end), (ns(50), ns(350)));
        let g2 = fw.acquire_with(ns(60), |start| {
            assert_eq!(start, ns(350), "admitted when the firmware frees");
            start + ns(10)
        });
        assert_eq!(g2.wait, ns(290));
        assert_eq!(fw.stats().busy_ns, 310);
    }

    #[test]
    fn priority_drain_lets_urgent_work_overtake() {
        let mut r = Resource::priority("intr_service", 1);
        let bulk0 = r.submit(ns(0), ns(100), 5);
        let bulk1 = r.submit(ns(10), ns(100), 5);
        let urgent = r.submit(ns(20), ns(10), 0);
        let grants = r.drain();
        let by_id = |id: u64| grants.iter().find(|(i, _)| *i == id).unwrap().1;
        // bulk0 is in service when urgent arrives; urgent then overtakes
        // bulk1, which arrived earlier but is less urgent.
        assert_eq!(by_id(bulk0).start, ns(0));
        assert_eq!(by_id(urgent).start, ns(100));
        assert_eq!(by_id(bulk1).start, ns(110));
        assert_eq!(r.stats().max_queue, 3);
        assert_eq!(r.stats().served, 3);
    }

    #[test]
    fn fifo_drain_ignores_priority_and_matches_acquire_order() {
        let mut batched = Resource::fifo("bus", 1);
        batched.submit(ns(0), ns(100), 9);
        batched.submit(ns(40), ns(100), 0);
        let grants = batched.drain();
        let mut inline = Resource::fifo("bus", 1);
        let a = inline.acquire(ns(0), ns(100));
        let b = inline.acquire(ns(40), ns(100));
        assert_eq!(grants[0].1, a);
        assert_eq!(grants[1].1, b);
        assert_eq!(inline.stats().wait_ns, batched.stats().wait_ns);
    }

    #[test]
    fn drain_is_deterministic_under_heavy_ties() {
        let run = || {
            let mut r = Resource::priority("tied", 2);
            for i in 0..50u64 {
                r.submit(ns((i % 4) * 10), ns(25), (i % 3) as u8);
            }
            r.drain()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_carries_name_and_serializes() {
        let mut r = Resource::fifo("io_bus", 1);
        r.acquire(ns(0), ns(10));
        let rep = r.report();
        assert_eq!(rep.name, "io_bus");
        let json = serde_json::to_string(&rep).unwrap();
        let back: ResourceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_panics() {
        Resource::new("broken", Capacity::Finite(0), Discipline::Fifo);
    }
}
