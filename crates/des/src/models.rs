//! Concrete stations for the devices the paper's argument runs through,
//! parameterized by the same Table 1/2 cost model the serial simulator
//! charges.
//!
//! A translation-table fill is *setup-dominated* (Table 2: 1 entry ≈ 1.5 µs,
//! 32 entries ≈ 2.5 µs), so the fill is modeled as two sequential phases on
//! two stations: programming the DMA engine (the per-transfer `setup` cost)
//! and moving the words across the I/O bus (the `per_word` bandwidth cost).
//! The two service times sum exactly to `IoBus::dma_words`, which is what
//! the serial cost model charges — with nothing else in flight the split is
//! invisible, which is the zero-contention equivalence the `utlb-sim`
//! test-suite pins. Host interrupt service is one station whose occupancy is
//! the measured 10 µs dispatch plus however long the handler runs.

use crate::resource::{Grant, Resource, ResourceReport};
use utlb_nic::{IoBus, Nanos};

/// The I/O bus as a station: serializes the *data phases* of translation
/// fills and payload transfers at `per_word` bandwidth.
#[derive(Debug, Clone)]
pub struct IoBusModel {
    bus: IoBus,
    station: Resource,
}

impl IoBusModel {
    /// A single shared bus with `bus`'s timing.
    pub fn new(bus: IoBus) -> Self {
        IoBusModel {
            bus,
            station: Resource::fifo("io_bus", 1),
        }
    }

    /// The underlying timing model.
    pub fn bus(&self) -> &IoBus {
        &self.bus
    }

    /// Service time of a `words`-word data phase (no setup — that lives on
    /// the [`DmaEngineModel`]).
    pub fn data_service(&self, words: u64) -> Nanos {
        self.bus.per_word() * words
    }

    /// Occupies the bus for a data phase of the given precomputed service
    /// time, queueing behind whatever is already on the wire.
    pub fn transfer(&mut self, now: Nanos, service: Nanos) -> Grant {
        self.station.acquire(now, service)
    }

    /// Occupancy snapshot.
    pub fn report(&self) -> ResourceReport {
        self.station.report()
    }
}

/// The NIC DMA engine as a station: each transfer holds the engine for the
/// per-transfer programming (`setup`) cost before its data phase can start.
#[derive(Debug, Clone)]
pub struct DmaEngineModel {
    setup: Nanos,
    station: Resource,
}

impl DmaEngineModel {
    /// One DMA engine whose programming cost comes from `bus`.
    pub fn new(bus: &IoBus) -> Self {
        DmaEngineModel {
            setup: bus.setup(),
            station: Resource::fifo("dma_engine", 1),
        }
    }

    /// The per-transfer programming cost.
    pub fn setup(&self) -> Nanos {
        self.setup
    }

    /// Programs one transfer, queueing behind earlier descriptors.
    pub fn program(&mut self, now: Nanos) -> Grant {
        self.station.acquire(now, self.setup)
    }

    /// Programs one transfer with an explicit (already-charged) setup
    /// service time — used when the serial cost model's charge must be
    /// reproduced exactly.
    pub fn program_for(&mut self, now: Nanos, service: Nanos) -> Grant {
        self.station.acquire(now, service)
    }

    /// Occupancy snapshot.
    pub fn report(&self) -> ResourceReport {
        self.station.report()
    }
}

/// Host interrupt service as a station: one CPU's worth of handler context.
///
/// Occupancy per interrupt is the dispatch latency plus the handler body;
/// while a handler runs, further interrupts (the baseline's per-miss storm,
/// payload-completion notifications) queue behind it — the "order of
/// magnitude more expensive than memory references" effect the paper
/// leans on, now load-dependent.
#[derive(Debug, Clone)]
pub struct IntrServiceModel {
    dispatch: Nanos,
    station: Resource,
}

impl IntrServiceModel {
    /// One interrupt-service context with the given dispatch latency.
    pub fn new(dispatch: Nanos) -> Self {
        IntrServiceModel {
            dispatch,
            station: Resource::fifo("intr_service", 1),
        }
    }

    /// The dispatch latency.
    pub fn dispatch_cost(&self) -> Nanos {
        self.dispatch
    }

    /// Services one interrupt whose handler body runs for `handler`:
    /// occupancy is `dispatch + handler`.
    pub fn handle(&mut self, now: Nanos, handler: Nanos) -> Grant {
        self.station.acquire(now, self.dispatch + handler)
    }

    /// Services one interrupt with an explicit total occupancy (dispatch
    /// already included by the caller's accounting).
    pub fn handle_for(&mut self, now: Nanos, occupancy: Nanos) -> Grant {
        self.station.acquire(now, occupancy)
    }

    /// Occupancy snapshot.
    pub fn report(&self) -> ResourceReport {
        self.station.report()
    }
}

/// Knobs of a DES-backed replay.
///
/// The *offered load* knob scales each trace record's payload bytes into
/// background DMA traffic on the shared bus (the paper's traces carry the
/// request sizes; the serial simulator ignores where those bytes flow).
/// `1.0` replays the trace's own payload traffic; `0.0` disables it; larger
/// factors model co-located senders sharing the same bus.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Timing of the shared I/O bus (defaults fitted to Table 2). Must
    /// match the board's bus for the serial charge to split exactly.
    pub bus: IoBus,
    /// Host interrupt dispatch latency (Table 1's measured 10 µs).
    pub intr_dispatch: Nanos,
    /// Multiplier on each record's payload bytes injected as background
    /// bus traffic. Zero turns payload traffic off.
    pub payload_load: f64,
    /// Whether each payload transfer's completion raises a host
    /// notification interrupt (occupying interrupt service for one
    /// dispatch).
    pub notify_interrupts: bool,
}

impl DesConfig {
    /// The executable-spec configuration: no payload traffic, no
    /// notification interrupts — every station sees at most one request in
    /// flight, all waits are zero, and the DES completion time equals the
    /// serial runner's `sim_time_ns` bit for bit.
    pub fn zero_contention() -> Self {
        DesConfig {
            bus: IoBus::default(),
            intr_dispatch: Nanos::from_micros(10.0),
            payload_load: 0.0,
            notify_interrupts: false,
        }
    }

    /// A contended configuration at the given offered load, with payload
    /// completion notifications on.
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative or not finite.
    pub fn contended(load: f64) -> Self {
        assert!(
            load.is_finite() && load >= 0.0,
            "offered load must be a finite non-negative factor"
        );
        DesConfig {
            payload_load: load,
            notify_interrupts: true,
            ..DesConfig::zero_contention()
        }
    }

    /// Background-traffic words for a record of `nbytes` payload under this
    /// offered load (bytes scaled, then rounded up to 8-byte words).
    /// Monotone in both `nbytes` and `payload_load`.
    pub fn payload_words(&self, nbytes: u64) -> u64 {
        let scaled = (nbytes as f64 * self.payload_load).ceil() as u64;
        scaled.div_ceil(8)
    }
}

impl Default for DesConfig {
    /// Defaults to [`DesConfig::zero_contention`].
    fn default() -> Self {
        DesConfig::zero_contention()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Nanos {
        Nanos::from_nanos(n)
    }

    #[test]
    fn fill_split_sums_to_the_serial_charge() {
        let bus = IoBus::default();
        let io = IoBusModel::new(bus);
        let dma = DmaEngineModel::new(&bus);
        for entries in [0u64, 1, 8, 32, 1000] {
            assert_eq!(
                dma.setup() + io.data_service(entries),
                bus.dma_words(entries),
                "{entries} entries"
            );
        }
    }

    #[test]
    fn uncontended_stations_grant_zero_wait() {
        let bus = IoBus::default();
        let mut io = IoBusModel::new(bus);
        let mut dma = DmaEngineModel::new(&bus);
        let mut intr = IntrServiceModel::new(Nanos::from_micros(10.0));
        let p = dma.program(ns(1000));
        assert_eq!(p.wait, Nanos::ZERO);
        let d = io.transfer(p.end, io.data_service(32));
        assert_eq!(d.wait, Nanos::ZERO);
        assert_eq!(d.end - p.start, bus.dma_words(32));
        let h = intr.handle(d.end, ns(500));
        assert_eq!(h.wait, Nanos::ZERO);
        assert_eq!(h.end - h.start, Nanos::from_micros(10.0) + ns(500));
    }

    #[test]
    fn back_to_back_interrupts_queue() {
        let mut intr = IntrServiceModel::new(Nanos::from_micros(10.0));
        let a = intr.handle(ns(0), Nanos::ZERO);
        let b = intr.handle(ns(1), Nanos::ZERO);
        assert_eq!(b.start, a.end, "second dispatch waits out the first");
        assert_eq!(b.wait, a.end - ns(1));
        assert_eq!(intr.report().name, "intr_service");
        assert_eq!(intr.report().stats.wait_ns, b.wait.as_nanos());
    }

    #[test]
    fn payload_words_scale_monotonically_with_load() {
        let mut last = 0;
        for load in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let cfg = DesConfig::contended(load);
            let words = cfg.payload_words(4096);
            assert!(words >= last, "load {load}: {words} < {last}");
            last = words;
        }
        assert_eq!(DesConfig::zero_contention().payload_words(u64::MAX), 0);
        assert_eq!(DesConfig::contended(1.0).payload_words(4096), 512);
        assert_eq!(DesConfig::contended(1.0).payload_words(4), 1, "rounds up");
    }

    #[test]
    fn zero_contention_turns_payload_traffic_off() {
        let cfg = DesConfig::zero_contention();
        assert_eq!(cfg.payload_load, 0.0);
        assert_eq!(cfg.payload_words(1 << 20), 0);
        assert_eq!(cfg.bus.setup(), IoBus::default().setup());
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn negative_load_panics() {
        DesConfig::contended(-1.0);
    }
}
