//! Randomized stress tests of the VMMC layer against a reference model.

use proptest::prelude::*;
use utlb_mem::{VirtAddr, PAGE_SIZE};
use utlb_vmmc::{Cluster, ExportId, ImportId};

/// Operations the stress driver can issue.
#[derive(Debug, Clone)]
enum Op {
    Store {
        src_node: usize,
        offset: u64,
        len: u64,
        fill: u8,
    },
    Fetch {
        dst_node: usize,
        offset: u64,
        len: u64,
    },
    Drain,
}

fn op_strategy(nodes: usize, export_pages: u64) -> impl Strategy<Value = Op> {
    let bytes = export_pages * PAGE_SIZE;
    prop_oneof![
        (0..nodes, 0..bytes - 1, any::<u8>()).prop_flat_map(move |(n, off, fill)| {
            (1..=(bytes - off).min(3 * PAGE_SIZE)).prop_map(move |len| Op::Store {
                src_node: n,
                offset: off,
                len,
                fill,
            })
        }),
        (0..nodes, 0..bytes - 1).prop_flat_map(move |(n, off)| {
            (1..=(bytes - off).min(2 * PAGE_SIZE)).prop_map(move |len| Op::Fetch {
                dst_node: n,
                offset: off,
                len,
            })
        }),
        Just(Op::Drain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A shared exported buffer behaves like a byte array under any
    /// interleaving of remote stores and fetches from multiple nodes
    /// (drained between conflicting writers, since VMMC itself orders only
    /// per-channel).
    #[test]
    fn shared_buffer_matches_model(
        ops in proptest::collection::vec(op_strategy(3, 4), 1..40),
    ) {
        const EXPORT_PAGES: u64 = 4;
        let mut c = Cluster::new(4).unwrap();
        // Node 3 owns the shared buffer; nodes 0-2 import it.
        let pids: Vec<_> = (0..4).map(|i| c.spawn_process(i).unwrap()).collect();
        let base = VirtAddr::new(0x4000_0000);
        let export: ExportId = c.export(3, pids[3], base, EXPORT_PAGES * PAGE_SIZE).unwrap();
        let imports: Vec<ImportId> = (0..3)
            .map(|i| c.import(i, pids[i], 3, export).unwrap())
            .collect();

        // Reference model of the exported bytes.
        let mut model = vec![0u8; (EXPORT_PAGES * PAGE_SIZE) as usize];
        let src_va = VirtAddr::new(0x1000_0000);
        let fetch_va = VirtAddr::new(0x2000_0000);

        for op in ops {
            match op {
                Op::Store { src_node, offset, len, fill } => {
                    let data = vec![fill; len as usize];
                    c.write_local(src_node, pids[src_node], src_va, &data).unwrap();
                    c.remote_store(src_node, pids[src_node], imports[src_node], src_va, offset, len)
                        .unwrap();
                    // Drain immediately so writes apply in program order and
                    // the model stays exact.
                    c.run_until_quiet().unwrap();
                    model[offset as usize..(offset + len) as usize].fill(fill);
                }
                Op::Fetch { dst_node, offset, len } => {
                    c.remote_fetch(dst_node, pids[dst_node], imports[dst_node], fetch_va, offset, len)
                        .unwrap();
                    c.run_until_quiet().unwrap();
                    let mut got = vec![0u8; len as usize];
                    c.read_local(dst_node, pids[dst_node], fetch_va, &mut got).unwrap();
                    prop_assert_eq!(
                        &got[..],
                        &model[offset as usize..(offset + len) as usize],
                        "fetch at {}+{}", offset, len
                    );
                }
                Op::Drain => c.run_until_quiet().unwrap(),
            }
        }

        // Final state: the owner's local view equals the model.
        let mut final_view = vec![0u8; model.len()];
        c.read_local(3, pids[3], base, &mut final_view).unwrap();
        prop_assert_eq!(final_view, model);
        // Nobody ever took an interrupt.
        for i in 0..4 {
            prop_assert_eq!(c.node(i).unwrap().board().intr.raised(), 0);
        }
    }

    /// Store/fetch roundtrips survive arbitrary single-drop loss patterns.
    #[test]
    fn lossy_roundtrips_recover(
        drops in proptest::collection::hash_set(0u64..64, 0..6),
        len in 1u64..(3 * PAGE_SIZE),
    ) {
        let mut c = Cluster::new(2).unwrap();
        let tx = c.spawn_process(0).unwrap();
        let rx = c.spawn_process(1).unwrap();
        let export = c.export(1, rx, VirtAddr::new(0x4000_0000), 3 * PAGE_SIZE).unwrap();
        let import = c.import(0, tx, 1, export).unwrap();
        // Drop the k-th data packet once, for each k in `drops`.
        let mut k = 0u64;
        let mut dropped = std::collections::HashSet::new();
        c.inject_fault(Some(Box::new(move |p: &utlb_nic::packet::Packet| {
            if p.kind != utlb_nic::packet::PacketKind::Data {
                return false;
            }
            k += 1;
            drops.contains(&(k - 1)) && dropped.insert(k)
        })));
        let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        c.write_local(0, tx, VirtAddr::new(0x1000_0000), &data).unwrap();
        c.remote_store(0, tx, import, VirtAddr::new(0x1000_0000), 0, len).unwrap();
        c.run_until_quiet().unwrap();
        let mut got = vec![0u8; len as usize];
        c.read_local(1, rx, VirtAddr::new(0x4000_0000), &mut got).unwrap();
        prop_assert_eq!(got, data);
    }
}
