//! The cluster: nodes wired through a crossbar switch.
//!
//! `Cluster` exposes the VMMC user API (export / import / remote store /
//! remote fetch / redirect) and runs the firmware event loop: the MCP of
//! each node polls its command queues, translates buffers through the UTLB,
//! fragments transfers at page boundaries, moves packets through the
//! reliable data-link channels, and delivers arriving data straight into
//! exported (or redirected) user buffers.

use crate::buffer::{Export, ExportId, Import, ImportId, PUBLIC_KEY};
use crate::node::{Node, PendingFetch};
use crate::{Result, VmmcError};
use utlb_core::UtlbConfig;
use utlb_mem::{ProcessId, VirtAddr, PAGE_SIZE};
use utlb_nic::packet::{DeliveryInfo, Packet, PacketKind};
use utlb_nic::reliable::{RemapTable, DEFAULT_RTO};
use utlb_nic::{Command, CommandKind, Link, NodeId, Switch};

/// Safety valve for the event loop.
const MAX_ROUNDS: usize = 100_000;

/// A simulated VMMC cluster.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    switch: Switch,
    remap: RemapTable,
    /// Communication trace, when instrumentation is enabled — the same
    /// record stream the paper's instrumented VMMC software produced
    /// ("each send and remote read request along with a
    /// globally-synchronized clock", §6).
    trace_log: Option<Vec<utlb_trace::TraceRecord>>,
}

impl Cluster {
    /// Creates a cluster of `n` nodes with the default UTLB configuration.
    ///
    /// # Errors
    ///
    /// Propagates substrate initialization failures.
    pub fn new(n: usize) -> Result<Self> {
        Self::with_config(n, UtlbConfig::default())
    }

    /// Creates a cluster of `n` nodes with a custom UTLB configuration.
    ///
    /// # Errors
    ///
    /// Propagates substrate initialization failures.
    pub fn with_config(n: usize, cfg: UtlbConfig) -> Result<Self> {
        let nodes = (0..n)
            .map(|i| Node::new(NodeId::new(i as u32), cfg.clone()))
            .collect();
        Ok(Cluster {
            nodes,
            switch: Switch::new(n, Link::default()),
            remap: RemapTable::new(),
            trace_log: None,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read-only access to a node (statistics, clocks).
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::UnknownNode`] for an out-of-range index.
    pub fn node(&self, idx: usize) -> Result<&Node> {
        self.nodes
            .get(idx)
            .ok_or(VmmcError::UnknownNode(idx as u32))
    }

    /// Mutable access to a node — for simulation-harness experiments (e.g.
    /// OS paging pressure via [`Node::host_mut`]).
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::UnknownNode`] for an out-of-range index.
    pub fn node_mut(&mut self, idx: usize) -> Result<&mut Node> {
        self.nodes
            .get_mut(idx)
            .ok_or(VmmcError::UnknownNode(idx as u32))
    }

    /// Starts recording every posted send and fetch, timestamped with the
    /// issuing node's clock — the instrumentation the paper added to VMMC
    /// to produce its simulator traces (§6).
    pub fn enable_tracing(&mut self) {
        self.trace_log = Some(Vec::new());
    }

    /// Stops tracing and returns the recorded trace, sorted by the global
    /// clock, ready to feed the trace-driven simulator.
    ///
    /// Returns an empty trace if tracing was never enabled.
    pub fn take_trace(&mut self, workload: impl Into<String>) -> utlb_trace::Trace {
        let mut records = self.trace_log.take().unwrap_or_default();
        records.sort_by_key(|r| (r.ts_ns, r.pid.raw()));
        utlb_trace::Trace::new(workload, 0, records)
    }

    fn log_request(
        &mut self,
        idx: usize,
        pid: ProcessId,
        op: utlb_trace::Op,
        va: VirtAddr,
        nbytes: u64,
    ) {
        if let Some(log) = &mut self.trace_log {
            let ts_ns = self.nodes[idx].board.clock.now().as_nanos();
            log.push(utlb_trace::TraceRecord {
                ts_ns,
                pid,
                op,
                va,
                nbytes,
            });
        }
    }

    /// Installs a packet-drop fault hook on the switch (tests, demos).
    pub fn inject_fault(&mut self, hook: Option<utlb_nic::FaultHook>) {
        self.switch.set_fault_hook(hook);
    }

    /// Dynamically remaps a logical node onto another physical port
    /// (paper §4.1: reaction to link/port failure).
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::UnknownNode`] for out-of-range indices.
    pub fn remap_node(&mut self, logical: usize, physical: usize) -> Result<()> {
        if logical >= self.nodes.len() || physical >= self.nodes.len() {
            return Err(VmmcError::UnknownNode(logical.max(physical) as u32));
        }
        self.remap
            .remap(NodeId::new(logical as u32), NodeId::new(physical as u32));
        Ok(())
    }

    /// Spawns a process on node `idx` and registers it with the UTLB.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn spawn_process(&mut self, idx: usize) -> Result<ProcessId> {
        let node = self.node_mut(idx)?;
        let pid = node.host.spawn_process();
        node.utlb
            .register_process(&mut node.host, &mut node.board, pid)?;
        Ok(pid)
    }

    /// Writes into a process' virtual memory (test/demo data setup).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn write_local(
        &mut self,
        idx: usize,
        pid: ProcessId,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<()> {
        let node = self.node_mut(idx)?;
        node.host.process_mut(pid)?.write(va, data)?;
        Ok(())
    }

    /// Reads from a process' virtual memory.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn read_local(
        &mut self,
        idx: usize,
        pid: ProcessId,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<()> {
        let node = self.node_mut(idx)?;
        node.host.process_mut(pid)?.read(va, buf)?;
        Ok(())
    }

    /// Exports a receive buffer: pins it through the UTLB and returns the
    /// handle remote processes import.
    ///
    /// # Errors
    ///
    /// Propagates pinning failures.
    pub fn export(
        &mut self,
        idx: usize,
        pid: ProcessId,
        va: VirtAddr,
        len: u64,
    ) -> Result<ExportId> {
        let node = self.node_mut(idx)?;
        node.utlb
            .lookup_buffer(&mut node.host, &mut node.board, pid, va, len)?;
        Ok(node.alloc_export(Export {
            pid,
            va,
            len,
            redirect: None,
            key: PUBLIC_KEY,
        }))
    }

    /// Exports a receive buffer protected by a permission key: only imports
    /// presenting `key` succeed (§2's protection model for virtualized
    /// network interfaces).
    ///
    /// # Errors
    ///
    /// Propagates pinning failures.
    pub fn export_protected(
        &mut self,
        idx: usize,
        pid: ProcessId,
        va: VirtAddr,
        len: u64,
        key: u32,
    ) -> Result<ExportId> {
        let node = self.node_mut(idx)?;
        node.utlb
            .lookup_buffer(&mut node.host, &mut node.board, pid, va, len)?;
        Ok(node.alloc_export(Export {
            pid,
            va,
            len,
            redirect: None,
            key,
        }))
    }

    /// Imports `export` of node `exporter` into node `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::UnknownExport`] if the handle does not exist.
    pub fn import(
        &mut self,
        idx: usize,
        pid: ProcessId,
        exporter: usize,
        export: ExportId,
    ) -> Result<ImportId> {
        self.import_with_key(idx, pid, exporter, export, PUBLIC_KEY)
    }

    /// Imports a protected export, presenting `key`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::PermissionDenied`] on a key mismatch and
    /// [`VmmcError::UnknownExport`] for a bad handle.
    pub fn import_with_key(
        &mut self,
        idx: usize,
        _pid: ProcessId,
        exporter: usize,
        export: ExportId,
        key: u32,
    ) -> Result<ImportId> {
        let remote = self.node(exporter)?;
        let e = remote.export(export)?;
        if e.key != key {
            return Err(VmmcError::PermissionDenied(export));
        }
        let len = e.len;
        let remote_id = remote.id();
        let node = self.node_mut(idx)?;
        Ok(node.alloc_import(Import {
            remote: remote_id,
            export,
            len,
        }))
    }

    /// Installs a transfer redirection: future data for `export` lands at
    /// `new_va` of the exporting process (§4.1). The new buffer is pinned
    /// through the UTLB immediately so delivery stays interrupt-free.
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::UnknownExport`] for a bad handle.
    pub fn redirect(
        &mut self,
        idx: usize,
        pid: ProcessId,
        export: ExportId,
        new_va: VirtAddr,
    ) -> Result<()> {
        let node = self.node_mut(idx)?;
        let len = node.export(export)?.len;
        node.utlb
            .lookup_buffer(&mut node.host, &mut node.board, pid, new_va, len)?;
        let e = node
            .exports
            .get_mut(&export.0)
            .ok_or(VmmcError::UnknownExport(export))?;
        e.redirect = Some(new_va);
        Ok(())
    }

    fn check_bounds(import: &Import, offset: u64, nbytes: u64) -> Result<()> {
        if offset + nbytes > import.len {
            return Err(VmmcError::OutOfBounds {
                offset,
                nbytes,
                export_len: import.len,
            });
        }
        Ok(())
    }

    /// Posts a remote store: `nbytes` from `local_va` into the imported
    /// buffer at `remote_offset`. Data moves when the firmware runs
    /// ([`Cluster::run_until_quiet`]).
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::OutOfBounds`] for transfers past the buffer end.
    pub fn remote_store(
        &mut self,
        idx: usize,
        pid: ProcessId,
        import: ImportId,
        local_va: VirtAddr,
        remote_offset: u64,
        nbytes: u64,
    ) -> Result<()> {
        let node = self.node_mut(idx)?;
        let imp = *node.import(import)?;
        Self::check_bounds(&imp, remote_offset, nbytes)?;
        node.board.cmdq.post(Command {
            pid,
            kind: CommandKind::Send {
                import_id: import.0,
                remote_offset,
            },
            local_va,
            nbytes,
        })?;
        self.log_request(idx, pid, utlb_trace::Op::Send, local_va, nbytes);
        Ok(())
    }

    /// Posts a remote fetch: `nbytes` from the imported buffer at
    /// `remote_offset` into `local_va`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::OutOfBounds`] for fetches past the buffer end.
    pub fn remote_fetch(
        &mut self,
        idx: usize,
        pid: ProcessId,
        import: ImportId,
        local_va: VirtAddr,
        remote_offset: u64,
        nbytes: u64,
    ) -> Result<()> {
        let node = self.node_mut(idx)?;
        let imp = *node.import(import)?;
        Self::check_bounds(&imp, remote_offset, nbytes)?;
        node.board.cmdq.post(Command {
            pid,
            kind: CommandKind::Fetch {
                import_id: import.0,
                remote_offset,
            },
            local_va,
            nbytes,
        })?;
        self.log_request(idx, pid, utlb_trace::Op::Fetch, local_va, nbytes);
        Ok(())
    }

    /// Translates `va` and copies `data` into the process' physical memory
    /// page by page — the receive-side zero-copy DMA path.
    fn write_via_utlb(node: &mut Node, pid: ProcessId, va: VirtAddr, data: &[u8]) -> Result<()> {
        let mut done = 0usize;
        let mut cursor = va;
        while done < data.len() {
            let chunk = ((PAGE_SIZE - cursor.page_offset()) as usize).min(data.len() - done);
            let report = node.utlb.lookup_buffer(
                &mut node.host,
                &mut node.board,
                pid,
                cursor,
                chunk as u64,
            )?;
            let pa = report.pages[0].phys.offset(cursor.page_offset());
            node.host
                .physical_mut()
                .write(pa, &data[done..done + chunk])?;
            // The payload crosses the I/O bus into host memory.
            let cost = node.board.dma.bus().dma_bytes(chunk as u64);
            node.board.clock.advance(cost);
            done += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Translates `va` and reads `buf.len()` bytes — the send-side path.
    fn read_via_utlb(node: &mut Node, pid: ProcessId, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        let mut done = 0usize;
        let mut cursor = va;
        while done < buf.len() {
            let chunk = ((PAGE_SIZE - cursor.page_offset()) as usize).min(buf.len() - done);
            let report = node.utlb.lookup_buffer(
                &mut node.host,
                &mut node.board,
                pid,
                cursor,
                chunk as u64,
            )?;
            let pa = report.pages[0].phys.offset(cursor.page_offset());
            node.host
                .physical()
                .read(pa, &mut buf[done..done + chunk])?;
            let cost = node.board.dma.bus().dma_bytes(chunk as u64);
            node.board.clock.advance(cost);
            done += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Processes one posted command at node `idx`. Returns whether work was
    /// done.
    fn pump_commands(&mut self, idx: usize) -> Result<bool> {
        let Some(cmd) = self.nodes[idx].board.cmdq.poll() else {
            return Ok(false);
        };
        match cmd.kind {
            CommandKind::Send {
                import_id,
                remote_offset,
            } => {
                let imp = *self.nodes[idx].import(ImportId(import_id))?;
                let npages = cmd.local_va.span_pages(cmd.nbytes);
                self.nodes[idx].hold(cmd.pid, cmd.local_va.page(), npages)?;
                // Fragment at sender page boundaries; each fragment is read
                // through the UTLB fast path and shipped reliably.
                let mut done = 0u64;
                while done < cmd.nbytes {
                    let cursor = cmd.local_va.offset(done);
                    let chunk = (PAGE_SIZE - cursor.page_offset()).min(cmd.nbytes - done);
                    let mut payload = vec![0u8; chunk as usize];
                    Self::read_via_utlb(&mut self.nodes[idx], cmd.pid, cursor, &mut payload)?;
                    let delivery = DeliveryInfo {
                        export_id: imp.export.0,
                        offset: remote_offset + done,
                        nbytes: chunk,
                    };
                    let me = self.nodes[idx].id();
                    let now = self.nodes[idx].board.clock.now();
                    let packet = Packet::data(me, imp.remote, 0, delivery, payload);
                    self.nodes[idx].sender_to(imp.remote).send(
                        packet,
                        &mut self.switch,
                        &self.remap,
                        now,
                    )?;
                    done += chunk;
                }
            }
            CommandKind::Fetch {
                import_id,
                remote_offset,
            } => {
                let imp = *self.nodes[idx].import(ImportId(import_id))?;
                // Pin and hold the local landing buffer up front so reply
                // delivery is a pure fast path.
                let npages = cmd.local_va.span_pages(cmd.nbytes);
                {
                    let node = &mut self.nodes[idx];
                    node.utlb.lookup_buffer(
                        &mut node.host,
                        &mut node.board,
                        cmd.pid,
                        cmd.local_va,
                        cmd.nbytes,
                    )?;
                }
                self.nodes[idx].hold(cmd.pid, cmd.local_va.page(), npages)?;
                let ticket = self.nodes[idx].alloc_ticket(PendingFetch {
                    pid: cmd.pid,
                    local_va: cmd.local_va,
                    remaining: cmd.nbytes,
                });
                let delivery = DeliveryInfo {
                    export_id: imp.export.0,
                    offset: remote_offset,
                    nbytes: cmd.nbytes,
                };
                let me = self.nodes[idx].id();
                let now = self.nodes[idx].board.clock.now();
                let packet = Packet::fetch_request(me, imp.remote, delivery, ticket);
                self.nodes[idx].sender_to(imp.remote).send(
                    packet,
                    &mut self.switch,
                    &self.remap,
                    now,
                )?;
            }
            CommandKind::Redirect { export_id } => {
                // Redirections are installed synchronously by the API; a
                // posted one (exercised for completeness) re-installs.
                let node = &mut self.nodes[idx];
                let len = node.export(ExportId(export_id))?.len;
                node.utlb.lookup_buffer(
                    &mut node.host,
                    &mut node.board,
                    cmd.pid,
                    cmd.local_va,
                    len,
                )?;
                let e = node
                    .exports
                    .get_mut(&export_id)
                    .ok_or(VmmcError::UnknownExport(ExportId(export_id)))?;
                e.redirect = Some(cmd.local_va);
            }
        }
        Ok(true)
    }

    /// Delivers one arrived packet at node `idx`, if any. Returns whether
    /// work was done.
    fn pump_network(&mut self, idx: usize) -> Result<bool> {
        let me = self.nodes[idx].id();
        let now = self.nodes[idx].board.clock.now();
        // If the node is idle, let its clock catch up with the next arrival.
        let packet = match self.switch.recv(me, now)? {
            Some(p) => p,
            None => match self.switch.next_arrival(me) {
                Some(arrive) => {
                    self.nodes[idx].board.clock.advance_to(arrive);
                    match self.switch.recv(me, arrive)? {
                        Some(p) => p,
                        None => return Ok(false),
                    }
                }
                None => return Ok(false),
            },
        };

        if packet.kind == PacketKind::Ack {
            let ack_seq = packet.ack_seq;
            let from = packet.src;
            let now = self.nodes[idx].board.clock.now();
            // Find the channel whose (possibly remapped) destination sent
            // this ack.
            let remap = self.remap.clone();
            for (dst_raw, sender) in self.nodes[idx].senders.iter_mut() {
                let logical = NodeId::new(*dst_raw);
                if logical == from || remap.resolve(logical) == from {
                    sender.on_ack(ack_seq, &mut self.switch, &remap, now)?;
                }
            }
            return Ok(true);
        }

        let (deliver, ack) = self.nodes[idx].receiver.accept(packet.clone());
        // Acknowledge (cumulative) whatever the receiver state says.
        if ack > 0 {
            let now = self.nodes[idx].board.clock.now();
            self.switch.send(Packet::ack(me, packet.src, ack), now)?;
        }
        let Some(packet) = deliver else {
            return Ok(true);
        };

        match packet.kind {
            PacketKind::Data => {
                let delivery = packet.delivery.expect("data packets carry delivery info");
                self.deliver_data(idx, delivery, &packet.payload)?;
            }
            PacketKind::FetchRequest => {
                let delivery = packet.delivery.expect("fetch requests carry delivery info");
                self.serve_fetch(idx, packet.src, delivery, packet.ticket)?;
            }
            PacketKind::FetchReply => {
                let delivery = packet.delivery.expect("fetch replies carry delivery info");
                self.absorb_fetch_reply(idx, delivery, packet.ticket, &packet.payload)?;
            }
            PacketKind::Ack => unreachable!("acks handled above"),
        }
        Ok(true)
    }

    fn deliver_data(&mut self, idx: usize, delivery: DeliveryInfo, payload: &[u8]) -> Result<()> {
        let export = *self.nodes[idx].export(ExportId(delivery.export_id))?;
        if delivery.offset + payload.len() as u64 > export.len {
            return Err(VmmcError::OutOfBounds {
                offset: delivery.offset,
                nbytes: payload.len() as u64,
                export_len: export.len,
            });
        }
        let target = export.delivery_va().offset(delivery.offset);
        Self::write_via_utlb(&mut self.nodes[idx], export.pid, target, payload)
    }

    fn serve_fetch(
        &mut self,
        idx: usize,
        requester: NodeId,
        delivery: DeliveryInfo,
        ticket: u32,
    ) -> Result<()> {
        let export = *self.nodes[idx].export(ExportId(delivery.export_id))?;
        if delivery.offset + delivery.nbytes > export.len {
            return Err(VmmcError::OutOfBounds {
                offset: delivery.offset,
                nbytes: delivery.nbytes,
                export_len: export.len,
            });
        }
        // Fetch always reads the *exported* buffer (redirection affects
        // where incoming stores land, not what a fetch observes).
        let mut done = 0u64;
        while done < delivery.nbytes {
            let cursor = export.va.offset(delivery.offset + done);
            let chunk = (PAGE_SIZE - cursor.page_offset()).min(delivery.nbytes - done);
            let mut payload = vec![0u8; chunk as usize];
            Self::read_via_utlb(&mut self.nodes[idx], export.pid, cursor, &mut payload)?;
            let reply_delivery = DeliveryInfo {
                export_id: 0,
                offset: done,
                nbytes: chunk,
            };
            let me = self.nodes[idx].id();
            let now = self.nodes[idx].board.clock.now();
            let reply = Packet::fetch_reply(me, requester, reply_delivery, ticket, payload);
            self.nodes[idx]
                .sender_to(requester)
                .send(reply, &mut self.switch, &self.remap, now)?;
            done += chunk;
        }
        Ok(())
    }

    fn absorb_fetch_reply(
        &mut self,
        idx: usize,
        delivery: DeliveryInfo,
        ticket: u32,
        payload: &[u8],
    ) -> Result<()> {
        let pending = match self.nodes[idx].pending_fetches.get(&ticket) {
            Some(p) => *p,
            // Duplicate reply after completion: drop silently.
            None => return Ok(()),
        };
        let target = pending.local_va.offset(delivery.offset);
        Self::write_via_utlb(&mut self.nodes[idx], pending.pid, target, payload)?;
        let entry = self.nodes[idx]
            .pending_fetches
            .get_mut(&ticket)
            .expect("checked above");
        entry.remaining = entry.remaining.saturating_sub(payload.len() as u64);
        if entry.remaining == 0 {
            self.nodes[idx].pending_fetches.remove(&ticket);
        }
        Ok(())
    }

    fn quiet(&self) -> bool {
        self.switch.in_flight() == 0
            && self
                .nodes
                .iter()
                .all(|n| n.board.cmdq.pending() == 0 && n.drained() && n.pending_fetches.is_empty())
    }

    /// Runs the firmware event loop until every posted operation has been
    /// delivered and acknowledged, then releases all transfer holds.
    ///
    /// # Errors
    ///
    /// Returns [`VmmcError::Stalled`] if traffic cannot drain (e.g. a dead
    /// link without remapping) and propagates reliable-delivery failures.
    pub fn run_until_quiet(&mut self) -> Result<()> {
        for _ in 0..MAX_ROUNDS {
            let mut progress = false;
            for i in 0..self.nodes.len() {
                progress |= self.pump_commands(i)?;
                progress |= self.pump_network(i)?;
            }
            if self.quiet() {
                for node in &mut self.nodes {
                    node.release_all_holds()?;
                }
                return Ok(());
            }
            if !progress {
                // Nothing moved: idle until retransmission timers can fire.
                for i in 0..self.nodes.len() {
                    let now = self.nodes[i].board.clock.now() + DEFAULT_RTO;
                    self.nodes[i].board.clock.advance_to(now);
                    let node_now = self.nodes[i].board.clock.now();
                    let remap = self.remap.clone();
                    for sender in self.nodes[i].senders.values_mut() {
                        sender.tick(&mut self.switch, &remap, node_now)?;
                    }
                }
            }
        }
        let stuck = self
            .nodes
            .iter()
            .find(|n| n.board.cmdq.pending() > 0 || !n.drained())
            .map(|n| n.id())
            .unwrap_or(NodeId::new(0));
        Err(VmmcError::Stalled { node: stuck })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_setup() -> (Cluster, ProcessId, ProcessId, ExportId, ImportId) {
        let mut c = Cluster::new(2).unwrap();
        let sender = c.spawn_process(0).unwrap();
        let receiver = c.spawn_process(1).unwrap();
        let export = c
            .export(1, receiver, VirtAddr::new(0x4000_0000), 4 * PAGE_SIZE)
            .unwrap();
        let import = c.import(0, sender, 1, export).unwrap();
        (c, sender, receiver, export, import)
    }

    #[test]
    fn remote_store_moves_bytes_end_to_end() {
        let (mut c, sender, receiver, _e, import) = two_node_setup();
        let src = VirtAddr::new(0x1000_0000);
        c.write_local(0, sender, src, b"across the wire").unwrap();
        c.remote_store(0, sender, import, src, 100, 15).unwrap();
        c.run_until_quiet().unwrap();
        let mut buf = [0u8; 15];
        c.read_local(1, receiver, VirtAddr::new(0x4000_0000 + 100), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"across the wire");
    }

    #[test]
    fn multi_page_store_spanning_boundaries() {
        let (mut c, sender, receiver, _e, import) = two_node_setup();
        let src = VirtAddr::new(0x1000_0F00); // near a page boundary
        let data: Vec<u8> = (0..10000u32).map(|i| (i % 251) as u8).collect();
        c.write_local(0, sender, src, &data).unwrap();
        c.remote_store(0, sender, import, src, 8, data.len() as u64)
            .unwrap();
        c.run_until_quiet().unwrap();
        let mut buf = vec![0u8; data.len()];
        c.read_local(1, receiver, VirtAddr::new(0x4000_0008), &mut buf)
            .unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn remote_fetch_pulls_data() {
        let (mut c, sender, receiver, _e, import) = two_node_setup();
        c.write_local(1, receiver, VirtAddr::new(0x4000_0000), b"fetch me")
            .unwrap();
        let dst = VirtAddr::new(0x2000_0000);
        c.remote_fetch(0, sender, import, dst, 0, 8).unwrap();
        c.run_until_quiet().unwrap();
        let mut buf = [0u8; 8];
        c.read_local(0, sender, dst, &mut buf).unwrap();
        assert_eq!(&buf, b"fetch me");
    }

    #[test]
    fn redirection_changes_landing_buffer() {
        let (mut c, sender, receiver, export, import) = two_node_setup();
        let redirected = VirtAddr::new(0x5000_0000);
        c.redirect(1, receiver, export, redirected).unwrap();
        let src = VirtAddr::new(0x1000_0000);
        c.write_local(0, sender, src, b"rerouted").unwrap();
        c.remote_store(0, sender, import, src, 0, 8).unwrap();
        c.run_until_quiet().unwrap();
        let mut buf = [0u8; 8];
        c.read_local(1, receiver, redirected, &mut buf).unwrap();
        assert_eq!(&buf, b"rerouted");
        // Default location untouched.
        let mut orig = [0u8; 8];
        c.read_local(1, receiver, VirtAddr::new(0x4000_0000), &mut orig)
            .unwrap();
        assert_eq!(orig, [0u8; 8]);
    }

    #[test]
    fn out_of_bounds_is_rejected_at_post_time() {
        let (mut c, sender, _r, _e, import) = two_node_setup();
        let err = c
            .remote_store(
                0,
                sender,
                import,
                VirtAddr::new(0x1000_0000),
                4 * PAGE_SIZE - 4,
                8,
            )
            .unwrap_err();
        assert!(matches!(err, VmmcError::OutOfBounds { .. }));
        let err = c
            .remote_fetch(
                0,
                sender,
                import,
                VirtAddr::new(0x1000_0000),
                0,
                5 * PAGE_SIZE,
            )
            .unwrap_err();
        assert!(matches!(err, VmmcError::OutOfBounds { .. }));
    }

    #[test]
    fn second_store_is_a_pure_fast_path() {
        let (mut c, sender, _r, _e, import) = two_node_setup();
        let src = VirtAddr::new(0x1000_0000);
        c.write_local(0, sender, src, &[7u8; 64]).unwrap();
        c.remote_store(0, sender, import, src, 0, 64).unwrap();
        c.run_until_quiet().unwrap();
        let stats1 = c.node(0).unwrap().utlb().aggregate_stats();
        c.remote_store(0, sender, import, src, 64, 64).unwrap();
        c.run_until_quiet().unwrap();
        let stats2 = c.node(0).unwrap().utlb().aggregate_stats();
        assert_eq!(stats2.pins, stats1.pins, "no new pinning");
        assert_eq!(
            stats2.check_misses, stats1.check_misses,
            "no new check misses"
        );
        assert_eq!(stats2.interrupts, 0, "never an interrupt");
    }

    #[test]
    fn lossy_link_recovers_through_retransmission() {
        let (mut c, sender, receiver, _e, import) = two_node_setup();
        // Drop every third data packet, once each.
        let mut seen = std::collections::HashSet::new();
        c.inject_fault(Some(Box::new(move |p: &Packet| {
            if p.kind == PacketKind::Data && p.seq.is_multiple_of(3) && seen.insert(p.seq) {
                return true;
            }
            false
        })));
        let src = VirtAddr::new(0x1000_0000);
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 199) as u8).collect();
        c.write_local(0, sender, src, &data).unwrap();
        c.remote_store(0, sender, import, src, 0, data.len() as u64)
            .unwrap();
        c.run_until_quiet().unwrap();
        let mut buf = vec![0u8; data.len()];
        c.read_local(1, receiver, VirtAddr::new(0x4000_0000), &mut buf)
            .unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn holds_are_released_when_quiet() {
        let (mut c, sender, _r, _e, import) = two_node_setup();
        let src = VirtAddr::new(0x1000_0000);
        c.write_local(0, sender, src, &[1u8; 128]).unwrap();
        c.remote_store(0, sender, import, src, 0, 128).unwrap();
        c.run_until_quiet().unwrap();
        assert!(c.node(0).unwrap().held.is_empty());
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let mut c = Cluster::new(2).unwrap();
        let pid = c.spawn_process(0).unwrap();
        assert!(matches!(
            c.import(0, pid, 1, ExportId(5)),
            Err(VmmcError::UnknownExport(_))
        ));
        assert!(matches!(
            c.remote_store(0, pid, ImportId(9), VirtAddr::new(0), 0, 8),
            Err(VmmcError::UnknownImport(_))
        ));
        assert!(matches!(c.node(7), Err(VmmcError::UnknownNode(7))));
        assert!(matches!(c.spawn_process(7), Err(VmmcError::UnknownNode(7))));
    }

    #[test]
    fn permission_keys_gate_imports() {
        let mut c = Cluster::new(2).unwrap();
        let tx = c.spawn_process(0).unwrap();
        let rx = c.spawn_process(1).unwrap();
        let secret = c
            .export_protected(1, rx, VirtAddr::new(0x4000_0000), PAGE_SIZE, 0xBEEF)
            .unwrap();
        // Wrong key (including the public key) is rejected.
        assert!(matches!(
            c.import(0, tx, 1, secret),
            Err(VmmcError::PermissionDenied(_))
        ));
        assert!(matches!(
            c.import_with_key(0, tx, 1, secret, 0xDEAD),
            Err(VmmcError::PermissionDenied(_))
        ));
        // The right key works end to end.
        let import = c.import_with_key(0, tx, 1, secret, 0xBEEF).unwrap();
        c.write_local(0, tx, VirtAddr::new(0x1000_0000), b"secret")
            .unwrap();
        c.remote_store(0, tx, import, VirtAddr::new(0x1000_0000), 0, 6)
            .unwrap();
        c.run_until_quiet().unwrap();
        let mut got = [0u8; 6];
        c.read_local(1, rx, VirtAddr::new(0x4000_0000), &mut got)
            .unwrap();
        assert_eq!(&got, b"secret");
    }

    #[test]
    fn tracing_records_what_the_simulator_needs() {
        let (mut c, sender, _r, _e, import) = two_node_setup();
        c.enable_tracing();
        let src = VirtAddr::new(0x1000_0000);
        c.write_local(0, sender, src, &[1u8; 8192]).unwrap();
        for i in 0..4u64 {
            c.remote_store(0, sender, import, src, 0, 4096 + i).unwrap();
            c.run_until_quiet().unwrap();
        }
        c.remote_fetch(0, sender, import, VirtAddr::new(0x2000_0000), 0, 64)
            .unwrap();
        c.run_until_quiet().unwrap();
        let trace = c.take_trace("live");
        assert_eq!(trace.records.len(), 5);
        assert_eq!(trace.workload, "live");
        assert!(trace.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(
            trace
                .records
                .iter()
                .filter(|r| r.op == utlb_trace::Op::Fetch)
                .count(),
            1
        );
        // Lookups: store of 4096 = 1 page; 4097/4098/4099 straddle = 2 each;
        // the 64-byte fetch = 1.
        assert_eq!(trace.total_lookups(), 1 + 2 + 2 + 2 + 1);
        // Tracing disabled after take_trace.
        c.remote_store(0, sender, import, src, 0, 64).unwrap();
        c.run_until_quiet().unwrap();
        assert!(c.take_trace("empty").records.is_empty());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // src/dst index several arrays at once
    fn four_node_all_to_all() {
        let mut c = Cluster::new(4).unwrap();
        let pids: Vec<ProcessId> = (0..4).map(|i| c.spawn_process(i).unwrap()).collect();
        // Every node exports one page; everyone stores its node index into
        // everyone else's buffer at an offset keyed by the sender.
        let exports: Vec<ExportId> = (0..4)
            .map(|i| {
                c.export(i, pids[i], VirtAddr::new(0x4000_0000), PAGE_SIZE)
                    .unwrap()
            })
            .collect();
        let mut imports = vec![vec![None; 4]; 4];
        for src in 0..4 {
            for dst in 0..4 {
                if src != dst {
                    imports[src][dst] = Some(c.import(src, pids[src], dst, exports[dst]).unwrap());
                }
            }
        }
        for src in 0..4 {
            let va = VirtAddr::new(0x1000_0000);
            c.write_local(src, pids[src], va, &[src as u8 + 1; 8])
                .unwrap();
            for dst in 0..4 {
                if src != dst {
                    c.remote_store(
                        src,
                        pids[src],
                        imports[src][dst].unwrap(),
                        va,
                        src as u64 * 8,
                        8,
                    )
                    .unwrap();
                }
            }
        }
        c.run_until_quiet().unwrap();
        for dst in 0..4 {
            for src in 0..4 {
                if src != dst {
                    let mut buf = [0u8; 8];
                    c.read_local(
                        dst,
                        pids[dst],
                        VirtAddr::new(0x4000_0000 + src as u64 * 8),
                        &mut buf,
                    )
                    .unwrap();
                    assert_eq!(buf, [src as u8 + 1; 8], "src {src} → dst {dst}");
                }
            }
        }
    }
}
