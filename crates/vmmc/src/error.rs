//! Error type for the VMMC layer.

use crate::{ExportId, ImportId};
use std::error::Error;
use std::fmt;
use utlb_nic::NodeId;

/// Errors produced by VMMC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmmcError {
    /// A node index was out of range for the cluster.
    UnknownNode(u32),
    /// The export handle does not exist on the addressed node.
    UnknownExport(ExportId),
    /// The import handle does not exist on the requesting node.
    UnknownImport(ImportId),
    /// An import presented the wrong permission key.
    PermissionDenied(ExportId),
    /// A transfer would run past the end of the exported buffer.
    OutOfBounds {
        /// Offset requested.
        offset: u64,
        /// Length requested.
        nbytes: u64,
        /// Exported buffer size.
        export_len: u64,
    },
    /// Underlying UTLB failure.
    Utlb(utlb_core::UtlbError),
    /// Underlying host-memory failure.
    Mem(utlb_mem::MemError),
    /// Underlying NIC failure (including reliable-delivery give-up).
    Nic(utlb_nic::NicError),
    /// The cluster failed to drain in-flight traffic (a dead link without
    /// remapping, for example).
    Stalled {
        /// Node that still had work pending.
        node: NodeId,
    },
}

impl fmt::Display for VmmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmcError::UnknownNode(n) => write!(f, "unknown node {n}"),
            VmmcError::UnknownExport(e) => write!(f, "unknown export {e}"),
            VmmcError::UnknownImport(i) => write!(f, "unknown import {i}"),
            VmmcError::PermissionDenied(e) => {
                write!(f, "permission denied importing {e}: wrong key")
            }
            VmmcError::OutOfBounds {
                offset,
                nbytes,
                export_len,
            } => write!(
                f,
                "transfer [{offset}, {offset}+{nbytes}) exceeds exported buffer of {export_len} bytes"
            ),
            VmmcError::Utlb(e) => write!(f, "utlb error: {e}"),
            VmmcError::Mem(e) => write!(f, "memory error: {e}"),
            VmmcError::Nic(e) => write!(f, "nic error: {e}"),
            VmmcError::Stalled { node } => write!(f, "cluster stalled with work pending at {node}"),
        }
    }
}

impl Error for VmmcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmmcError::Utlb(e) => Some(e),
            VmmcError::Mem(e) => Some(e),
            VmmcError::Nic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<utlb_core::UtlbError> for VmmcError {
    fn from(e: utlb_core::UtlbError) -> Self {
        VmmcError::Utlb(e)
    }
}

impl From<utlb_mem::MemError> for VmmcError {
    fn from(e: utlb_mem::MemError) -> Self {
        VmmcError::Mem(e)
    }
}

impl From<utlb_nic::NicError> for VmmcError {
    fn from(e: utlb_nic::NicError) -> Self {
        VmmcError::Nic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wiring() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<VmmcError>();
        let e = VmmcError::from(utlb_mem::MemError::OutOfFrames);
        assert!(e.source().is_some());
        assert!(VmmcError::UnknownNode(3).to_string().contains("3"));
    }
}
