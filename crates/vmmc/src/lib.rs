//! Virtual Memory-Mapped Communication (VMMC) on the simulated cluster.
//!
//! VMMC (paper §4.1) is the protected user-level communication model the
//! UTLB was built for: an application **exports** a receive buffer in its
//! virtual address space; a remote application **imports** it and can then
//! perform a **remote store** — data moves from the sender's virtual memory
//! directly into the receiver's virtual memory with no copies through
//! system buffers and no OS on the data path. The VMMC-2 extensions are
//! implemented too:
//!
//! * **remote fetch** — pull data from an imported buffer into local memory,
//! * **transfer redirection** — the receiver points incoming data for an
//!   export at a different local buffer, enabling zero-copy high-level APIs,
//! * **reliable communication** — a data-link retransmission protocol
//!   between the NICs, with dynamic node remapping.
//!
//! Address translation on every data path goes through the UTLB engine
//! (crate `utlb-core`): the first use of a buffer pins it and installs
//! translations; every later use is a pure user-level + NIC-cache fast
//! path. This crate is the integration proof that the mechanism moves real
//! bytes end to end.
//!
//! # Example
//!
//! ```
//! use utlb_vmmc::Cluster;
//! use utlb_mem::VirtAddr;
//!
//! # fn main() -> Result<(), utlb_vmmc::VmmcError> {
//! let mut cluster = Cluster::new(2)?;
//! let sender = cluster.spawn_process(0)?;
//! let receiver = cluster.spawn_process(1)?;
//!
//! // Receiver exports a 2-page buffer; sender imports it.
//! let export = cluster.export(1, receiver, VirtAddr::new(0x4000_0000), 8192)?;
//! let import = cluster.import(0, sender, 1, export)?;
//!
//! // Remote store straight from the sender's virtual memory.
//! cluster.write_local(0, sender, VirtAddr::new(0x1000_0000), b"hello vmmc")?;
//! cluster.remote_store(0, sender, import, VirtAddr::new(0x1000_0000), 0, 10)?;
//! cluster.run_until_quiet()?;
//!
//! let mut buf = [0u8; 10];
//! cluster.read_local(1, receiver, VirtAddr::new(0x4000_0000), &mut buf)?;
//! assert_eq!(&buf, b"hello vmmc");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod buffer;
mod cluster;
mod error;
mod node;

pub use buffer::{Export, ExportId, Import, ImportId, PUBLIC_KEY};
pub use cluster::Cluster;
pub use error::VmmcError;
pub use node::Node;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, VmmcError>;
