//! Export and import handles.

use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_mem::{ProcessId, VirtAddr};
use utlb_nic::NodeId;

/// Handle to an exported receive buffer, scoped to its owning node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExportId(pub u32);

impl fmt::Display for ExportId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "export:{}", self.0)
    }
}

/// Handle to an imported remote buffer, scoped to the importing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImportId(pub u32);

impl fmt::Display for ImportId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "import:{}", self.0)
    }
}

/// An exported receive buffer (paper Figure 5).
///
/// The buffer lives in the exporting process' virtual address space; export
/// pins it through the UTLB so arriving data can be delivered by DMA with a
/// table lookup and no host involvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Export {
    /// Owning process on the exporting node.
    pub pid: ProcessId,
    /// Buffer start in the owner's virtual address space.
    pub va: VirtAddr,
    /// Buffer length in bytes.
    pub len: u64,
    /// Redirection target, if the application installed one (§4.1):
    /// incoming data is delivered at this address instead of `va`.
    pub redirect: Option<VirtAddr>,
    /// Permission key importers must present (§2: virtualized interfaces
    /// "typically deal with protection by using a permission key").
    /// [`PUBLIC_KEY`] means anyone may import.
    pub key: u32,
}

/// The permission key of unrestricted exports.
pub const PUBLIC_KEY: u32 = 0;

impl Export {
    /// The delivery base address, honouring any redirection.
    pub fn delivery_va(&self) -> VirtAddr {
        self.redirect.unwrap_or(self.va)
    }
}

/// An imported remote buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Import {
    /// The node the buffer lives on.
    pub remote: NodeId,
    /// The export handle on that node.
    pub export: ExportId,
    /// Length in bytes, learned at import time for local bounds checks.
    pub len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_changes_delivery_address() {
        let mut e = Export {
            pid: ProcessId::new(1),
            va: VirtAddr::new(0x1000),
            len: 4096,
            redirect: None,
            key: PUBLIC_KEY,
        };
        assert_eq!(e.delivery_va(), VirtAddr::new(0x1000));
        e.redirect = Some(VirtAddr::new(0x9000));
        assert_eq!(e.delivery_va(), VirtAddr::new(0x9000));
    }

    #[test]
    fn handles_display() {
        assert_eq!(ExportId(4).to_string(), "export:4");
        assert_eq!(ImportId(2).to_string(), "import:2");
    }
}
