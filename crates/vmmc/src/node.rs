//! One cluster node: host + NIC + UTLB engine + VMMC firmware state.

use crate::buffer::{Export, ExportId, Import, ImportId};
use crate::{Result, VmmcError};
use std::collections::HashMap;
use utlb_core::{UtlbConfig, UtlbEngine};
use utlb_mem::{Host, ProcessId, VirtAddr, VirtPage};
use utlb_nic::reliable::{ReliableReceiver, ReliableSender};
use utlb_nic::{Board, NodeId};

/// A pending remote fetch awaiting its reply fragments.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingFetch {
    /// Process that issued the fetch.
    pub pid: ProcessId,
    /// Local buffer the reply lands in.
    pub local_va: VirtAddr,
    /// Bytes still outstanding.
    pub remaining: u64,
}

/// One node of the cluster.
///
/// Owns the simulated host machine, the NIC board, the UTLB engine that
/// performs all address translation, and the firmware-level VMMC state:
/// export/import tables, reliable channels to peer nodes, and pending
/// fetches.
#[derive(Debug)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) host: Host,
    pub(crate) board: Board,
    pub(crate) utlb: UtlbEngine,
    pub(crate) exports: HashMap<u32, Export>,
    pub(crate) imports: HashMap<u32, Import>,
    pub(crate) senders: HashMap<u32, ReliableSender>,
    pub(crate) receiver: ReliableReceiver,
    pub(crate) pending_fetches: HashMap<u32, PendingFetch>,
    pub(crate) held: Vec<(ProcessId, VirtPage, u64)>,
    next_export: u32,
    next_import: u32,
    next_ticket: u32,
}

/// Host DRAM frames per node.
const NODE_FRAMES: u64 = 1 << 18;

impl Node {
    /// Creates a node with a fresh host, board, and UTLB engine.
    pub fn new(id: NodeId, utlb_cfg: UtlbConfig) -> Self {
        Node {
            id,
            host: Host::new(NODE_FRAMES),
            board: Board::new(),
            utlb: UtlbEngine::new(utlb_cfg),
            exports: HashMap::new(),
            imports: HashMap::new(),
            senders: HashMap::new(),
            receiver: ReliableReceiver::new(),
            pending_fetches: HashMap::new(),
            held: Vec::new(),
            next_export: 1,
            next_import: 1,
            next_ticket: 1,
        }
    }

    /// The node's network identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The simulated host machine.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable host access — for simulation-harness experiments such as
    /// injecting OS paging pressure ([`Host::reclaim_page`]) underneath
    /// live communication.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// The NIC board (clock, DMA and interrupt counters).
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The UTLB engine (translation statistics).
    pub fn utlb(&self) -> &UtlbEngine {
        &self.utlb
    }

    pub(crate) fn alloc_export(&mut self, export: Export) -> ExportId {
        let id = ExportId(self.next_export);
        self.next_export += 1;
        self.exports.insert(id.0, export);
        id
    }

    pub(crate) fn alloc_import(&mut self, import: Import) -> ImportId {
        let id = ImportId(self.next_import);
        self.next_import += 1;
        self.imports.insert(id.0, import);
        id
    }

    pub(crate) fn alloc_ticket(&mut self, pending: PendingFetch) -> u32 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        self.pending_fetches.insert(t, pending);
        t
    }

    pub(crate) fn export(&self, id: ExportId) -> Result<&Export> {
        self.exports.get(&id.0).ok_or(VmmcError::UnknownExport(id))
    }

    pub(crate) fn import(&self, id: ImportId) -> Result<&Import> {
        self.imports.get(&id.0).ok_or(VmmcError::UnknownImport(id))
    }

    pub(crate) fn sender_to(&mut self, dst: NodeId) -> &mut ReliableSender {
        let src = self.id;
        self.senders
            .entry(dst.raw())
            .or_insert_with(|| ReliableSender::new(src, dst, 16))
    }

    /// Whether all reliable channels are drained.
    pub(crate) fn drained(&self) -> bool {
        self.senders.values().all(ReliableSender::is_drained)
    }

    /// Holds a page run against eviction for the duration of a transfer.
    pub(crate) fn hold(&mut self, pid: ProcessId, start: VirtPage, npages: u64) -> Result<()> {
        self.utlb.hold_pages(pid, start, npages)?;
        self.held.push((pid, start, npages));
        Ok(())
    }

    /// Releases every outstanding-transfer hold (called once the cluster is
    /// quiet — all sends delivered and acknowledged).
    pub(crate) fn release_all_holds(&mut self) -> Result<()> {
        for (pid, start, npages) in std::mem::take(&mut self.held) {
            self.utlb.release_pages(pid, start, npages)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_sequential_and_resolvable() {
        let mut n = Node::new(NodeId::new(0), UtlbConfig::default());
        let pid = n.host.spawn_process();
        let e = n.alloc_export(Export {
            pid,
            va: VirtAddr::new(0x1000),
            len: 4096,
            redirect: None,
            key: 0,
        });
        assert_eq!(e, ExportId(1));
        assert!(n.export(e).is_ok());
        assert!(n.export(ExportId(9)).is_err());
        let i = n.alloc_import(Import {
            remote: NodeId::new(1),
            export: e,
            len: 4096,
        });
        assert_eq!(i, ImportId(1));
        assert!(n.import(i).is_ok());
        assert!(n.import(ImportId(9)).is_err());
    }

    #[test]
    fn sender_per_destination_and_drained() {
        let mut n = Node::new(NodeId::new(0), UtlbConfig::default());
        assert!(n.drained());
        let s1 = n.sender_to(NodeId::new(1)) as *const _;
        let s1b = n.sender_to(NodeId::new(1)) as *const _;
        assert_eq!(s1, s1b, "one channel per destination");
        n.sender_to(NodeId::new(2));
        assert_eq!(n.senders.len(), 2);
    }
}
