//! The sweep executor and the cache hot path it feeds.
//!
//! Three angles: raw cache probe latency (the per-lookup cost the flat line
//! array + validity bitmap rework targets), sweep executor overhead on
//! trivial cells, and a real experiment grid (Figure 7-shaped) sequential
//! vs parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use utlb_core::obs::NoopProbe;
use utlb_core::{CacheConfig, SharedUtlbCache, UtlbEngine};
use utlb_mem::{PhysAddr, ProcessId, VirtPage};
use utlb_sim::sweep::THREADS_ENV;
use utlb_sim::{run, run_utlb, sweep, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

/// Per-probe latency of the shared cache: a resident working set looked up
/// round-robin, so every lookup is a hit probing exactly one line.
fn bench_cache_probe(c: &mut Criterion) {
    let entries = 8192usize;
    let mut cache = SharedUtlbCache::new(CacheConfig::direct(entries));
    let pid = ProcessId::new(1);
    for v in 0..entries as u64 {
        cache.insert(pid, VirtPage::new(v), PhysAddr::new(v << 12));
    }
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_function("cache_probe_hit", |b| {
        b.iter(|| {
            for v in 0..entries as u64 {
                black_box(cache.lookup(pid, VirtPage::new(v)));
            }
        })
    });
    group.finish();
}

/// Executor overhead: fanning out cells that do almost nothing, so the
/// scheduling cost itself dominates.
fn bench_sweep_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for cells in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("overhead", cells), &cells, |b, &cells| {
            b.iter(|| black_box(sweep(cells, |ix| ix.wrapping_mul(2654435761))))
        });
    }
    group.finish();
}

/// A real grid — one app × four cache sizes, Figure 7-shaped — swept
/// sequentially (`UTLB_SIM_THREADS=1`) and at the machine's parallelism.
fn bench_grid(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let sizes = [1024usize, 4096, 8192, 16384];
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sizes.len() as u64));
    for (label, threads) in [("grid_sequential", Some("1")), ("grid_parallel", None)] {
        group.bench_function(label, |b| {
            match threads {
                Some(n) => std::env::set_var(THREADS_ENV, n),
                None => std::env::remove_var(THREADS_ENV),
            }
            b.iter(|| {
                black_box(sweep(sizes.len(), |ix| {
                    run_utlb(&trace, &SimConfig::study(sizes[ix]))
                        .stats
                        .ni_miss_rate()
                }))
            })
        });
    }
    std::env::remove_var(THREADS_ENV);
    group.finish();
}

/// The zero-overhead claim of the observability layer: a full trace
/// replay with a `NoopProbe` attached must track the probe-free replay
/// within noise (<10%, enforced strictly by the `obs_guard` binary).
fn bench_noop_probe(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let cfg = SimConfig::study(1024);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("replay_no_probe", |b| {
        b.iter(|| {
            let mut engine = UtlbEngine::new(cfg.utlb_config());
            black_box(run(&mut engine, &trace, &cfg).stats.lookups)
        })
    });
    group.bench_function("replay_noop_probe", |b| {
        b.iter(|| {
            let mut engine = UtlbEngine::new(cfg.utlb_config());
            engine.set_probe(Box::new(NoopProbe));
            black_box(run(&mut engine, &trace, &cfg).stats.lookups)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_probe,
    bench_sweep_overhead,
    bench_grid,
    bench_noop_probe
);
criterion_main!(benches);
