//! The sweep executor and the cache hot path it feeds.
//!
//! Three angles: raw cache probe latency (the per-lookup cost the flat line
//! array + validity bitmap rework targets), sweep executor overhead on
//! trivial cells, and a real experiment grid (Figure 7-shaped) sequential
//! vs parallel.

use criterion::{
    criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use std::hint::black_box;
use utlb_bench::scalar_run_mechanism;
use utlb_core::obs::NoopProbe;
use utlb_core::{
    CacheConfig, IndexedEngine, IntrEngine, LookupBatch, OutcomeBuf, PerProcessEngine,
    SharedUtlbCache, TranslationMechanism, UtlbEngine,
};
use utlb_mem::{Host, PhysAddr, ProcessId, VirtPage, PAGE_SIZE};
use utlb_nic::Board;
use utlb_sim::sweep::{SweepGrid, THREADS_ENV};
use utlb_sim::RunOutputExt;
use utlb_sim::{sweep, sweep_over, sweep_over_with, Mechanism, Run, SimConfig, SweepScratch};
use utlb_trace::{gen, GenConfig, SplashApp, Trace};

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

/// Per-probe latency of the shared cache: a resident working set looked up
/// round-robin, so every lookup is a hit probing exactly one line.
fn bench_cache_probe(c: &mut Criterion) {
    let entries = 8192usize;
    let mut cache = SharedUtlbCache::new(CacheConfig::direct(entries));
    let pid = ProcessId::new(1);
    for v in 0..entries as u64 {
        cache.insert(pid, VirtPage::new(v), PhysAddr::new(v << 12));
    }
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_function("cache_probe_hit", |b| {
        b.iter(|| {
            for v in 0..entries as u64 {
                black_box(cache.lookup(pid, VirtPage::new(v)));
            }
        })
    });
    group.finish();
}

/// Executor overhead: fanning out cells that do almost nothing, so the
/// scheduling cost itself dominates.
fn bench_sweep_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for cells in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("overhead", cells), &cells, |b, &cells| {
            b.iter(|| black_box(sweep(cells, |ix| ix.wrapping_mul(2654435761))))
        });
    }
    group.finish();
}

/// A real grid — one app × four cache sizes, Figure 7-shaped — swept
/// sequentially (`UTLB_SIM_THREADS=1`) and at the machine's parallelism.
fn bench_grid(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let sizes = [1024usize, 4096, 8192, 16384];
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sizes.len() as u64));
    for (label, threads) in [("grid_sequential", Some("1")), ("grid_parallel", None)] {
        group.bench_function(label, |b| {
            match threads {
                Some(n) => std::env::set_var(THREADS_ENV, n),
                None => std::env::remove_var(THREADS_ENV),
            }
            b.iter(|| {
                black_box(sweep(sizes.len(), |ix| {
                    Run::new(Mechanism::Utlb)
                        .config(&SimConfig::study(sizes[ix]))
                        .execute(&trace)
                        .into_sim()
                        .unwrap()
                        .stats
                        .ni_miss_rate()
                }))
            })
        });
    }
    std::env::remove_var(THREADS_ENV);
    group.finish();
}

/// The scratch-arena claim: the same Figure 7-shaped grid with a fresh set
/// of replay buffers per cell (`execute`) vs per-worker reusable scratch
/// (`sweep_over_with` + `execute_in`). Pinned to one worker so the delta is
/// pure allocation traffic, not scheduling.
fn bench_scratch_reuse(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let sizes = [1024usize, 4096, 8192, 16384];
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sizes.len() as u64));
    std::env::set_var(THREADS_ENV, "1");
    group.bench_function("grid_fresh_buffers", |b| {
        b.iter(|| {
            black_box(sweep_over(&sizes, |&entries| {
                Run::new(Mechanism::Utlb)
                    .config(&SimConfig::study(entries))
                    .execute(&trace)
                    .into_sim()
                    .unwrap()
                    .stats
                    .ni_miss_rate()
            }))
        })
    });
    group.bench_function("grid_scratch_reuse", |b| {
        b.iter(|| {
            black_box(sweep_over_with(
                &sizes,
                SweepScratch::new,
                |&entries, scratch| {
                    Run::new(Mechanism::Utlb)
                        .config(&SimConfig::study(entries))
                        .execute_in(scratch, &trace)
                        .into_sim()
                        .unwrap()
                        .stats
                        .ni_miss_rate()
                },
            ))
        })
    });
    std::env::remove_var(THREADS_ENV);
    group.finish();
}

/// Cost-ordered dispatch overhead: the trivial-cell fan-out again, but
/// through the grid builder with a cost function, so the delta against
/// `overhead` is the LPT sort plus the order indirection.
fn bench_cost_ordered_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for cells in [16usize, 256] {
        let grid: Vec<usize> = (0..cells).collect();
        group.bench_with_input(
            BenchmarkId::new("overhead_cost_ordered", cells),
            &grid,
            |b, grid| {
                b.iter(|| {
                    black_box(
                        SweepGrid::over(grid)
                            .cost(|&ix| (ix % 7) as u64)
                            .run(|&ix| ix.wrapping_mul(2654435761)),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The zero-overhead claim of the observability layer: a full trace
/// replay with a `NoopProbe` attached must track the probe-free replay
/// within noise (<10%, enforced strictly by the `obs_guard` binary).
fn bench_noop_probe(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let cfg = SimConfig::study(1024);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("replay_no_probe", |b| {
        b.iter(|| {
            let mut engine = UtlbEngine::new(cfg.utlb_config());
            black_box(
                Run::with_config(&cfg)
                    .execute_with(&mut engine, &trace)
                    .into_sim()
                    .unwrap()
                    .stats
                    .lookups,
            )
        })
    });
    group.bench_function("replay_noop_probe", |b| {
        b.iter(|| {
            let mut engine = UtlbEngine::new(cfg.utlb_config());
            engine.set_probe(Box::new(NoopProbe));
            black_box(
                Run::with_config(&cfg)
                    .execute_with(&mut engine, &trace)
                    .into_sim()
                    .unwrap()
                    .stats
                    .lookups,
            )
        })
    });
    group.finish();
}

/// Batched vs scalar replay throughput on a Table 4 workload, all four
/// mechanisms. `replay_scalar_*` is the pre-batching loop (one outcome
/// `Vec` per record, per-page classification); `replay_batched_*` is the
/// library runner on the allocation-free `lookup_run_into` path.
fn bench_replay_paths(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let cfg = SimConfig::study(1024);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.records.len() as u64));
    for mech in Mechanism::ALL {
        group.bench_function(format!("replay_scalar_{mech}"), |b| {
            b.iter(|| black_box(scalar_run_mechanism(mech, &trace, &cfg).stats.lookups))
        });
        group.bench_function(format!("replay_batched_{mech}"), |b| {
            b.iter(|| {
                black_box(
                    Run::new(mech)
                        .config(&cfg)
                        .execute(&trace)
                        .into_sim()
                        .unwrap()
                        .stats
                        .lookups,
                )
            })
        });
    }
    group.finish();
}

/// Registers one warmed engine's scalar/batched steady-state pair: spawn,
/// register, replay the trace once to absorb compulsory misses, then bench
/// each lookup path over the whole trace per iteration.
fn hot_pair<M: TranslationMechanism>(
    group: &mut BenchmarkGroup<'_>,
    prefix: &str,
    mech: Mechanism,
    mut engine: M,
    trace: &Trace,
) {
    let mut host = Host::new(1 << 20);
    let mut board = Board::new();
    for expected in &trace.process_ids() {
        let got = host.spawn_process();
        assert_eq!(got, *expected, "trace pids must be dense from 1");
        engine
            .register_process(&mut host, &mut board, got)
            .expect("registration succeeds on a fresh host");
    }
    let mut out = OutcomeBuf::new();
    for rec in &trace.records {
        out.clear();
        engine
            .lookup_run_into(
                &mut host,
                &mut board,
                LookupBatch::for_buffer(rec.pid, rec.va, rec.nbytes),
                &mut out,
            )
            .expect("warmup lookups succeed");
    }
    group.bench_function(format!("{prefix}_scalar_{mech}"), |b| {
        b.iter(|| {
            let mut pages = 0usize;
            for rec in &trace.records {
                let npages = rec.va.span_pages(rec.nbytes);
                pages += engine
                    .lookup_run(&mut host, &mut board, rec.pid, rec.va.page(), npages)
                    .expect("trace lookups succeed")
                    .len();
            }
            black_box(pages)
        })
    });
    group.bench_function(format!("{prefix}_batched_{mech}"), |b| {
        b.iter(|| {
            let mut pages = 0usize;
            for rec in &trace.records {
                out.clear();
                engine
                    .lookup_run_into(
                        &mut host,
                        &mut board,
                        LookupBatch::for_buffer(rec.pid, rec.va, rec.nbytes),
                        &mut out,
                    )
                    .expect("trace lookups succeed");
                pages += out.len();
            }
            black_box(pages)
        })
    });
}

/// Dispatches [`hot_pair`] for a mechanism.
fn hot_pair_for(
    group: &mut BenchmarkGroup<'_>,
    prefix: &str,
    mech: Mechanism,
    cfg: &SimConfig,
    trace: &Trace,
) {
    match mech {
        Mechanism::Utlb => hot_pair(
            group,
            prefix,
            mech,
            UtlbEngine::new(cfg.utlb_config()),
            trace,
        ),
        Mechanism::PerProc => hot_pair(
            group,
            prefix,
            mech,
            PerProcessEngine::new(cfg.perproc_config()),
            trace,
        ),
        Mechanism::Indexed => hot_pair(
            group,
            prefix,
            mech,
            IndexedEngine::new(cfg.indexed_config()),
            trace,
        ),
        Mechanism::Intr => hot_pair(
            group,
            prefix,
            mech,
            IntrEngine::new(cfg.intr_config()),
            trace,
        ),
    }
}

/// Steady-state lookup throughput, warmed: compulsory misses absorbed by a
/// warmup pass, so the scalar/batched gap is the per-page software cost the
/// batch API removes (per-record outcome `Vec`, per-page cost-model clone
/// and µs→ns conversions, per-page clock advances).
fn bench_hot_replay(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Water, &small_cfg());
    let cfg = SimConfig::study(8192);
    let pages: u64 = trace.records.iter().map(|r| r.lookups()).sum();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pages));
    for mech in Mechanism::ALL {
        hot_pair_for(&mut group, "hot", mech, &cfg, &trace);
    }
    group.finish();
}

/// The same steady-state comparison on bulk transfers — every record
/// widened to a 16-page run, the shape the run-coalescing fast path is
/// built for: per-process state resolved once per record and consecutive
/// hit pages walked with one coalesced clock advance.
fn bench_bulk_replay(c: &mut Criterion) {
    let base = gen::generate_shared(SplashApp::Water, &small_cfg());
    let records = base
        .records
        .iter()
        .map(|r| utlb_trace::TraceRecord {
            nbytes: 16 * PAGE_SIZE,
            ..*r
        })
        .collect();
    let trace = Trace::new("water-bulk", base.seed, records);
    let cfg = SimConfig::study(16384);
    let pages: u64 = trace.records.iter().map(|r| r.lookups()).sum();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pages));
    for mech in Mechanism::ALL {
        hot_pair_for(&mut group, "bulk", mech, &cfg, &trace);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_probe,
    bench_sweep_overhead,
    bench_grid,
    bench_scratch_reuse,
    bench_cost_ordered_overhead,
    bench_noop_probe,
    bench_replay_paths,
    bench_hot_replay,
    bench_bulk_replay
);
criterion_main!(benches);
