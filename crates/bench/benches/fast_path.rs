//! The translation fast path end to end — the §5 "0.9 µs" measurement.
//!
//! One warm `UtlbEngine::lookup`: a user-level bitmap check plus a NIC
//! cache hit. Also benches the cold path (pin + table install + cache
//! fill) and the three UTLB variants side by side.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use utlb_core::{CacheConfig, PerProcessConfig, PerProcessEngine, UtlbConfig, UtlbEngine};
use utlb_mem::{Host, VirtPage};
use utlb_nic::Board;

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");

    group.bench_function("hierarchical_warm", |b| {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut engine = UtlbEngine::new(UtlbConfig::default());
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(7), 1)
            .unwrap();
        b.iter(|| {
            black_box(
                engine
                    .lookup(&mut host, &mut board, pid, VirtPage::new(7), 1)
                    .unwrap(),
            )
        })
    });

    group.bench_function("hierarchical_cold", |b| {
        // Cycle a 8192-page working set under a 4096-page pin limit: every
        // lookup is a genuine cold path (check miss + pin + LRU unpin)
        // without unbounded frame growth across criterion's iterations.
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut engine = UtlbEngine::new(UtlbConfig {
            cache: CacheConfig::direct(8192),
            mem_limit_pages: Some(4096),
            ..UtlbConfig::default()
        });
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        let mut next = 0u64;
        b.iter(|| {
            next = (next + 1) % 8192;
            black_box(
                engine
                    .lookup(&mut host, &mut board, pid, VirtPage::new(next), 1)
                    .unwrap(),
            )
        })
    });

    group.bench_function("perprocess_warm", |b| {
        let mut host = Host::new(1 << 16);
        let mut board = Board::new();
        let mut engine = PerProcessEngine::new(PerProcessConfig::default());
        let pid = host.spawn_process();
        engine.register_process(&mut host, &mut board, pid).unwrap();
        engine
            .lookup(&mut host, &mut board, pid, VirtPage::new(7))
            .unwrap();
        b.iter(|| {
            black_box(
                engine
                    .lookup(&mut host, &mut board, pid, VirtPage::new(7))
                    .unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fast_path);
criterion_main!(benches);
