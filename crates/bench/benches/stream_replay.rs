//! Streamed vs materialized replay.
//!
//! Three points pin the cost structure of the streaming path:
//!
//! * `replay_materialized` — replay of a pre-built trace, the classic
//!   inner loop (generation excluded),
//! * `fused_generate_replay` — the streaming path end to end: records are
//!   synthesized on demand and replayed without ever being stored,
//! * `generate_then_replay` — the pre-streaming end-to-end pipeline:
//!   materialize the full trace, then replay it.
//!
//! Fused must track `generate_then_replay` closely (same work, no
//! intermediate vector); the gap between the end-to-end pairs and
//! `replay_materialized` is the generation cost itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

fn bench_stream_replay(c: &mut Criterion) {
    let gcfg = small_cfg();
    // FFT: the suite's largest trace by lookups (Table 3).
    let app = SplashApp::Fft;
    let trace = gen::generate(app, &gcfg);
    let lookups = trace.total_lookups();
    let sim = SimConfig::study(2048);

    let mut group = c.benchmark_group("stream_replay");
    group.throughput(Throughput::Elements(lookups));
    group.sample_size(10);
    let run = Run::new(Mechanism::Utlb).config(&sim);
    group.bench_function("replay_materialized", |b| {
        b.iter(|| black_box(run.execute(&trace).into_sim().unwrap()))
    });
    group.bench_function("fused_generate_replay", |b| {
        b.iter(|| {
            let mut stream = gen::stream(app, &gcfg);
            black_box(run.execute(&mut stream).into_sim().unwrap())
        })
    });
    group.bench_function("generate_then_replay", |b| {
        b.iter(|| {
            let t = gen::generate(app, &gcfg);
            black_box(run.execute(&t).into_sim().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_replay);
criterion_main!(benches);
