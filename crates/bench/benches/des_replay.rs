//! The DES overlay's replay cost against the serial runner it wraps.
//!
//! Three angles on one trace: the plain serial replay (`run`), the DES
//! replay at zero contention (same timing answer, plus station bookkeeping),
//! and the DES replay with the trace's payload traffic put back on the bus
//! at 4x offered load. The zero-contention gap is the price of the station
//! accounting; the contended gap is the extra event traffic payload DMA
//! induces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use utlb_bench::scalar_run_mechanism;
use utlb_sim::RunOutputExt;
use utlb_sim::{DesConfig, Mechanism, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

/// Serial vs DES replay of the same trace under all four mechanisms.
fn bench_des_replay(c: &mut Criterion) {
    let trace = gen::generate_shared(SplashApp::Radix, &small_cfg());
    let sim = SimConfig::study(2048);
    let mut group = c.benchmark_group("des_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.records.len() as u64));
    for mech in Mechanism::ALL {
        // Pre-batching baseline: the same replay through per-record
        // allocating `lookup_run`, for the batched-vs-scalar comparison.
        group.bench_function(format!("serial_scalar_{mech}"), |b| {
            b.iter(|| black_box(scalar_run_mechanism(mech, &trace, &sim).sim_time_ns))
        });
        group.bench_function(format!("serial_{mech}"), |b| {
            let run = Run::new(mech).config(&sim);
            b.iter(|| black_box(run.execute(&trace).into_sim().unwrap().sim_time_ns))
        });
        group.bench_function(format!("des_zero_contention_{mech}"), |b| {
            let run = Run::new(mech)
                .config(&sim)
                .des(DesConfig::zero_contention());
            b.iter(|| black_box(run.execute(&trace).into_des().unwrap().des_time_ns))
        });
        group.bench_function(format!("des_contended_{mech}"), |b| {
            let run = Run::new(mech).config(&sim).des(DesConfig::contended(4.0));
            b.iter(|| black_box(run.execute(&trace).into_des().unwrap().des_time_ns))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des_replay);
criterion_main!(benches);
