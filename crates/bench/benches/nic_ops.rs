//! Wall-clock microbenchmarks of the NIC-side structures — the
//! implementation analog of the paper's Table 2: Shared UTLB-Cache lookups
//! at each associativity and DMA entry fetches at each prefetch width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use utlb_core::{Associativity, CacheConfig, SharedUtlbCache};
use utlb_mem::{PhysAddr, PhysicalMemory, ProcessId, VirtPage};
use utlb_nic::{DmaEngine, SimClock};

fn bench_cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_lookup");
    for assoc in Associativity::ALL {
        let mut cache = SharedUtlbCache::new(CacheConfig {
            entries: 8192,
            associativity: assoc,
            offsetting: true,
        });
        let pid = ProcessId::new(1);
        for v in 0..8192u64 {
            cache.insert(pid, VirtPage::new(v), PhysAddr::new(v << 12));
        }
        group.bench_with_input(
            BenchmarkId::new("hit", assoc.to_string()),
            &assoc,
            |b, _| {
                let mut v = 0u64;
                b.iter(|| {
                    v = (v + 1) % 8192;
                    black_box(cache.lookup(pid, VirtPage::new(v)))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("miss", assoc.to_string()),
            &assoc,
            |b, _| {
                let mut v = 0u64;
                b.iter(|| {
                    v += 1;
                    black_box(cache.lookup(pid, VirtPage::new(100_000 + v)))
                })
            },
        );
    }
    group.finish();
}

fn bench_entry_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_entry_fetch");
    let mut host = PhysicalMemory::new(64);
    for i in 0..512u64 {
        host.write_u64(PhysAddr::new(i * 8), i).unwrap();
    }
    for entries in [1u64, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let mut clock = SimClock::new();
                let mut dma = DmaEngine::default();
                b.iter(|| {
                    black_box(
                        dma.fetch_words(&mut clock, &host, PhysAddr::new(0), entries)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache_lookup, bench_entry_fetch);
criterion_main!(benches);
