//! The request plane's reactor cost: the same workload served live (full
//! connection lifecycle — handshake frames, credit admission, teardown)
//! and replayed serially from its materialized trace. The delta is what
//! the front end itself costs per request on top of translation; a churn
//! row measures the lifecycle machinery under connection turnover.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use utlb_sim::frontend::{frontend_trace, FrontendConfig};
use utlb_sim::RunOutputExt;
use utlb_sim::{Live, Mechanism, Run, SimConfig};

fn steady_cfg() -> FrontendConfig {
    // All connections open for the whole run: comparable to the trace.
    FrontendConfig {
        connections: 32,
        open_window: 32,
        requests_per_conn: 256,
        credit_window: 256,
        queue_depth: 0,
        ..FrontendConfig::default()
    }
}

fn churn_cfg() -> FrontendConfig {
    // Same request volume, but 512 connections churning through 16 slots.
    FrontendConfig {
        connections: 512,
        open_window: 16,
        requests_per_conn: 16,
        ..FrontendConfig::default()
    }
}

/// Live front end vs serial replay of its own materialized trace.
fn bench_frontend(c: &mut Criterion) {
    let sim = SimConfig::study(2048);
    let fcfg = steady_cfg();
    let requests = (fcfg.connections * fcfg.requests_per_conn) as u64;
    let trace = frontend_trace(&fcfg);

    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests));
    let live = Run::new(Mechanism::Utlb).config(&sim).frontend(fcfg);
    group.bench_function("live", |b| {
        b.iter(|| black_box(live.execute(Live).into_frontend().unwrap().served))
    });
    let serial = Run::new(Mechanism::Utlb).config(&sim);
    group.bench_function("trace_replay", |b| {
        b.iter(|| black_box(serial.execute(&trace).into_sim().unwrap().stats.lookups))
    });
    let churn = Run::new(Mechanism::Indexed)
        .config(&sim)
        .frontend(churn_cfg());
    group.bench_function("churn", |b| {
        b.iter(|| black_box(churn.execute(Live).into_frontend().unwrap().served))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
