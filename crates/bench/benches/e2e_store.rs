//! End-to-end VMMC remote store throughput on the simulated cluster, warm
//! fast path — the integration-level cost of a page send including
//! translation, fragmentation, the reliable channel, and delivery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use utlb_mem::VirtAddr;
use utlb_vmmc::Cluster;

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_store");
    for nbytes in [64u64, 4096, 16384] {
        group.throughput(Throughput::Bytes(nbytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(nbytes),
            &nbytes,
            |b, &nbytes| {
                let mut cluster = Cluster::new(2).unwrap();
                let sender = cluster.spawn_process(0).unwrap();
                let receiver = cluster.spawn_process(1).unwrap();
                let export = cluster
                    .export(1, receiver, VirtAddr::new(0x4000_3000), nbytes)
                    .unwrap();
                let import = cluster.import(0, sender, 1, export).unwrap();
                let src = VirtAddr::new(0x1000_7000);
                cluster
                    .write_local(0, sender, src, &vec![0xCD; nbytes as usize])
                    .unwrap();
                // Warm the path once.
                cluster
                    .remote_store(0, sender, import, src, 0, nbytes)
                    .unwrap();
                cluster.run_until_quiet().unwrap();
                b.iter(|| {
                    cluster
                        .remote_store(0, sender, import, src, 0, nbytes)
                        .unwrap();
                    cluster.run_until_quiet().unwrap();
                })
            },
        );
    }
    group.finish();
}

fn bench_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_fetch");
    for nbytes in [2048u64, 4096] {
        group.throughput(Throughput::Bytes(nbytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(nbytes),
            &nbytes,
            |b, &nbytes| {
                let mut cluster = Cluster::new(2).unwrap();
                let requester = cluster.spawn_process(0).unwrap();
                let owner = cluster.spawn_process(1).unwrap();
                let export = cluster
                    .export(1, owner, VirtAddr::new(0x4000_3000), nbytes)
                    .unwrap();
                let import = cluster.import(0, requester, 1, export).unwrap();
                cluster
                    .write_local(
                        1,
                        owner,
                        VirtAddr::new(0x4000_3000),
                        &vec![0xEF; nbytes as usize],
                    )
                    .unwrap();
                let dst = VirtAddr::new(0x2000_5000);
                cluster
                    .remote_fetch(0, requester, import, dst, 0, nbytes)
                    .unwrap();
                cluster.run_until_quiet().unwrap();
                b.iter(|| {
                    cluster
                        .remote_fetch(0, requester, import, dst, 0, nbytes)
                        .unwrap();
                    cluster.run_until_quiet().unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store, bench_fetch);
criterion_main!(benches);
