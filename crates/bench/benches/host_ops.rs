//! Wall-clock microbenchmarks of the host-side UTLB operations — the
//! implementation analog of the paper's Table 1. The *simulated* costs are
//! the calibrated model; these numbers show what our data structures
//! actually cost on the machine running the simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use utlb_core::PinBitVector;
use utlb_mem::{Host, VirtPage};

fn bench_bitvec_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_check");
    let mut v = PinBitVector::new();
    for i in 0..4096 {
        v.set(VirtPage::new(i));
    }
    for pages in [1u64, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            b.iter(|| black_box(v.check_run(VirtPage::new(128), pages)))
        });
    }
    group.finish();
}

fn bench_pin_unpin(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver_pin_unpin");
    for pages in [1u64, 8, 32] {
        group.bench_with_input(BenchmarkId::new("pin", pages), &pages, |b, &pages| {
            let mut host = Host::new(1 << 14);
            let pid = host.spawn_process();
            let mut next = 0u64;
            b.iter(|| {
                // Wrap within a 4096-page window: after the first cycle the
                // pages are already mapped, so iterations measure the pin
                // bookkeeping (refcounts) without unbounded frame growth.
                let start = VirtPage::new(next % 4096);
                next += pages;
                black_box(host.driver_pin(pid, start, pages).unwrap());
            })
        });
        group.bench_with_input(BenchmarkId::new("pin_unpin", pages), &pages, |b, &pages| {
            let mut host = Host::new(1 << 12);
            let pid = host.spawn_process();
            b.iter(|| {
                host.driver_pin(pid, VirtPage::new(0), pages).unwrap();
                for p in VirtPage::new(0).range(pages) {
                    host.driver_unpin(pid, p).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_paging(c: &mut Criterion) {
    let mut group = c.benchmark_group("paging");
    group.bench_function("reclaim_restore", |b| {
        let mut host = Host::new(1 << 12);
        let pid = host.spawn_process();
        host.process_mut(pid)
            .unwrap()
            .write(utlb_mem::VirtAddr::new(0x5000), &[7u8; 64])
            .unwrap();
        b.iter(|| {
            assert!(host.reclaim_page(pid, VirtPage::new(5)).unwrap());
            assert!(host.ensure_resident(pid, VirtPage::new(5)).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bitvec_check, bench_pin_unpin, bench_paging);
criterion_main!(benches);
