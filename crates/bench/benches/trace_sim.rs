//! Throughput of the trace-driven simulator itself: how fast one full
//! application trace flows through the UTLB and interrupt engines, and an
//! ablation of the cache organizations of Table 8 on one workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use utlb_core::Associativity;
use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

fn bench_engines(c: &mut Criterion) {
    let trace = gen::generate(SplashApp::Radix, &small_cfg());
    let lookups = trace.total_lookups();
    let mut group = c.benchmark_group("trace_sim");
    group.throughput(Throughput::Elements(lookups));
    group.sample_size(10);
    group.bench_function("utlb_radix", |b| {
        let run = Run::new(Mechanism::Utlb).config(&SimConfig::study(2048));
        b.iter(|| black_box(run.execute(&trace).into_sim().unwrap()))
    });
    group.bench_function("intr_radix", |b| {
        let run = Run::new(Mechanism::Intr).config(&SimConfig::study(2048));
        b.iter(|| black_box(run.execute(&trace).into_sim().unwrap()))
    });
    group.finish();
}

fn bench_associativity_ablation(c: &mut Criterion) {
    let trace = gen::generate(SplashApp::Water, &small_cfg());
    let mut group = c.benchmark_group("assoc_ablation");
    group.sample_size(10);
    for assoc in Associativity::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(assoc.to_string()),
            &assoc,
            |b, &assoc| {
                let cfg = SimConfig {
                    associativity: assoc,
                    ..SimConfig::study(2048)
                };
                let run = Run::new(Mechanism::Utlb).config(&cfg);
                b.iter(|| black_box(run.execute(&trace).into_sim().unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_associativity_ablation);
criterion_main!(benches);
