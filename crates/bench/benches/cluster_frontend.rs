//! The clustered request plane's driver cost: the same live churn served
//! by 1 board and by 8, and a redirect-heavy row where half the
//! connections must re-home off a full directory. The 1-board row prices
//! the homing/shared-station machinery against the plain front end; the
//! 8-board rows price cross-board arbitration and re-homing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use utlb_sim::frontend::FrontendConfig;
use utlb_sim::RunOutputExt;
use utlb_sim::{ClusterConfig, HomingPolicy, Live, Mechanism, Run, SimConfig};

fn churn_cfg() -> FrontendConfig {
    FrontendConfig {
        connections: 2_048,
        open_window: 256,
        requests_per_conn: 8,
        ..FrontendConfig::default()
    }
}

fn bench_cluster_frontend(c: &mut Criterion) {
    let sim = SimConfig::study(2048);
    let fcfg = churn_cfg();
    let requests = (fcfg.connections * fcfg.requests_per_conn) as u64;

    let mut group = c.benchmark_group("cluster_frontend");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests));
    for nodes in [1usize, 8] {
        let run = Run::new(Mechanism::Indexed)
            .config(&sim)
            .frontend(fcfg.clone())
            .cluster(ClusterConfig::new(nodes));
        group.bench_function(format!("indexed_{nodes}_boards"), |b| {
            b.iter(|| black_box(run.execute(Live).into_cluster_frontend().unwrap().served))
        });
    }
    // Redirect-heavy: the hierarchical directory (64 lifetime slots per
    // board) forces most of the churn through refusal/redirect handling.
    let redirecting = Run::new(Mechanism::Utlb)
        .config(&sim)
        .frontend(fcfg.clone())
        .cluster(ClusterConfig::new(8).homing(HomingPolicy::HashByClient));
    group.bench_function("utlb_8_boards_redirecting", |b| {
        b.iter(|| {
            black_box(
                redirecting
                    .execute(Live)
                    .into_cluster_frontend()
                    .unwrap()
                    .redirects,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_frontend);
criterion_main!(benches);
