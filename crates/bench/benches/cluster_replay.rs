//! The cluster runner's sharding cost: the same multiprogrammed stream
//! replayed on one board (the serial DES schedule plus routing overhead)
//! and sharded over eight boards. The 1-board number is directly comparable
//! to `des_replay`'s zero-contention row; the 8-board number adds the
//! shared-station arbitration and per-board finalization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use utlb_sim::experiments::cluster_workload;
use utlb_sim::RunOutputExt;
use utlb_sim::{ClusterConfig, Mechanism, Run, SimConfig};
use utlb_trace::GenConfig;

fn small_cfg() -> GenConfig {
    GenConfig {
        seed: 1998,
        scale: 0.1,
        app_processes: 4,
    }
}

/// 1-board vs 8-board cluster replay of one 8-job workload.
fn bench_cluster_replay(c: &mut Criterion) {
    let trace = cluster_workload(&small_cfg(), 8);
    let sim = SimConfig::study(2048);
    let mut group = c.benchmark_group("cluster_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.records.len() as u64));
    for nodes in [1usize, 8] {
        let run = Run::new(Mechanism::Utlb)
            .config(&sim)
            .cluster(ClusterConfig::new(nodes));
        group.bench_function(format!("boards_{nodes}"), |b| {
            b.iter(|| black_box(run.execute(&trace).into_cluster().unwrap().des_time_ns))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_replay);
criterion_main!(benches);
