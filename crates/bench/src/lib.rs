//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! <binary> [--scale S] [--seed N] [--json PATH] [--obs]
//! ```
//!
//! `--scale` shrinks the Table 3 footprint/lookup targets (default 1.0, the
//! paper's sizes); `--json` archives the structured result next to the
//! printed table; `--obs` (honoured by `run_all`) reruns the headline
//! experiments with the engine probe attached and writes one
//! `results/obs_<experiment>.json` observability report per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use utlb_trace::GenConfig;

/// Parsed command-line options shared by all regeneration binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload generation parameters.
    pub gen: GenConfig,
    /// Where to archive the JSON result, if requested.
    pub json: Option<PathBuf>,
    /// Where to write a CSV rendering (figure binaries only).
    pub csv: Option<PathBuf>,
    /// Whether to run the observed (probe-attached) pass and export
    /// `results/obs_<experiment>.json` reports (`run_all` only).
    pub obs: bool,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut gen = GenConfig {
            seed: 1998, // year of the paper
            scale: 1.0,
            app_processes: 4,
        };
        let mut json = None;
        let mut csv = None;
        let mut obs = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => {
                    gen.scale = value("--scale").parse().unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        std::process::exit(2);
                    })
                }
                "--seed" => {
                    gen.seed = value("--seed").parse().unwrap_or_else(|e| {
                        eprintln!("bad --seed: {e}");
                        std::process::exit(2);
                    })
                }
                "--json" => json = Some(PathBuf::from(value("--json"))),
                "--csv" => csv = Some(PathBuf::from(value("--csv"))),
                "--obs" => obs = true,
                "--help" | "-h" => {
                    println!("usage: [--scale S] [--seed N] [--json PATH] [--csv PATH] [--obs]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        BenchArgs {
            gen,
            json,
            csv,
            obs,
        }
    }

    /// Writes a CSV rendering if `--csv` was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn archive_csv(&self, csv_body: &str) {
        if let Some(path) = &self.csv {
            fs::write(path, csv_body).expect("write CSV result");
            eprintln!("csv: {}", path.display());
        }
    }

    /// Archives `result` as pretty JSON if `--json` was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — an archival run with a broken
    /// destination should fail loudly.
    pub fn archive<T: Serialize>(&self, result: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(result).expect("results serialize");
            fs::write(path, body).expect("write JSON result");
            eprintln!("archived: {}", path.display());
        }
    }
}

/// The pre-batching replay loop, kept as the *scalar baseline* for the
/// batched-vs-scalar throughput benches: per-record `lookup_run` (one
/// outcome `Vec` allocated per record) and per-page classification. The
/// library's [`utlb_sim::Run`] replay path now goes through the allocation-free
/// [`utlb_core::TranslationMechanism::lookup_run_into`]; benchmarking both
/// on the same trace measures what the batch path buys.
pub fn scalar_replay<M: utlb_core::TranslationMechanism>(
    engine: &mut M,
    trace: &utlb_trace::Trace,
    cfg: &utlb_sim::SimConfig,
) -> utlb_sim::SimResult {
    use utlb_nic::Nanos;

    // Must stay in sync with the runner's own host sizing.
    let mut host = utlb_mem::Host::new(1 << 20);
    let mut board = utlb_nic::Board::new();
    let mut classifier = utlb_sim::MissClassifier::new(cfg.cache_entries);

    let pids = trace.process_ids();
    for expected in &pids {
        let got = host.spawn_process();
        assert_eq!(got, *expected, "trace pids must be dense from 1");
        engine
            .register_process(&mut host, &mut board, got)
            .expect("registration succeeds on a fresh host");
    }

    let t0 = board.clock.now();
    for rec in &trace.records {
        board.clock.advance_to(Nanos::from_nanos(rec.ts_ns));
        let npages = rec.va.span_pages(rec.nbytes);
        let pages = engine
            .lookup_run(&mut host, &mut board, rec.pid, rec.va.page(), npages)
            .expect("trace lookups succeed");
        for page in &pages {
            classifier.access(rec.pid, page.page, page.ni_miss);
        }
    }
    let sim_time_ns = (board.clock.now() - t0).as_nanos();

    let per_process = pids
        .iter()
        .map(|p| (p.raw(), engine.stats(*p).expect("registered")))
        .collect();
    utlb_sim::SimResult {
        workload: trace.workload.clone(),
        stats: engine.aggregate_stats(),
        cache: engine.cache_stats(),
        breakdown: classifier.breakdown(),
        per_process,
        sim_time_ns,
    }
}

/// [`scalar_replay`] behind a [`utlb_sim::Mechanism`] dispatch.
pub fn scalar_run_mechanism(
    mech: utlb_sim::Mechanism,
    trace: &utlb_trace::Trace,
    cfg: &utlb_sim::SimConfig,
) -> utlb_sim::SimResult {
    use utlb_core::{IndexedEngine, IntrEngine, PerProcessEngine, UtlbEngine};
    use utlb_sim::Mechanism;
    match mech {
        Mechanism::Utlb => scalar_replay(&mut UtlbEngine::new(cfg.utlb_config()), trace, cfg),
        Mechanism::PerProc => {
            scalar_replay(&mut PerProcessEngine::new(cfg.perproc_config()), trace, cfg)
        }
        Mechanism::Indexed => {
            scalar_replay(&mut IndexedEngine::new(cfg.indexed_config()), trace, cfg)
        }
        Mechanism::Intr => scalar_replay(&mut IntrEngine::new(cfg.intr_config()), trace, cfg),
    }
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            gen: GenConfig {
                seed: 1998,
                scale: 1.0,
                app_processes: 4,
            },
            json: None,
            csv: None,
            obs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utlb_sim::RunOutputExt;

    #[test]
    fn default_args_match_paper_scale() {
        let a = BenchArgs::default();
        assert_eq!(a.gen.scale, 1.0);
        assert_eq!(a.gen.app_processes, 4);
        assert!(a.json.is_none());
        assert!(!a.obs);
    }

    #[test]
    fn scalar_baseline_matches_the_batched_runner() {
        // The baseline must stay a faithful pre-batching replay: if the
        // runner's semantics drift, the benches would compare unlike things.
        let trace = utlb_trace::gen::generate(
            utlb_trace::SplashApp::Water,
            &GenConfig {
                seed: 21,
                scale: 0.02,
                app_processes: 2,
            },
        );
        let cfg = utlb_sim::SimConfig::study(256);
        for mech in utlb_sim::Mechanism::ALL {
            let scalar = scalar_run_mechanism(mech, &trace, &cfg);
            let batched = utlb_sim::Run::new(mech)
                .config(&cfg)
                .execute(&trace)
                .into_sim()
                .unwrap();
            assert_eq!(
                serde_json::to_string(&scalar).unwrap(),
                serde_json::to_string(&batched).unwrap(),
                "{mech}"
            );
        }
    }

    #[test]
    fn archive_writes_json() {
        let dir = std::env::temp_dir().join("utlb_bench_test.json");
        let a = BenchArgs {
            json: Some(dir.clone()),
            ..BenchArgs::default()
        };
        a.archive(&vec![1, 2, 3]);
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.contains('1'));
        std::fs::remove_file(dir).ok();
    }
}
