//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! <binary> [--scale S] [--seed N] [--json PATH] [--obs]
//! ```
//!
//! `--scale` shrinks the Table 3 footprint/lookup targets (default 1.0, the
//! paper's sizes); `--json` archives the structured result next to the
//! printed table; `--obs` (honoured by `run_all`) reruns the headline
//! experiments with the engine probe attached and writes one
//! `results/obs_<experiment>.json` observability report per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use utlb_trace::GenConfig;

/// Parsed command-line options shared by all regeneration binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload generation parameters.
    pub gen: GenConfig,
    /// Where to archive the JSON result, if requested.
    pub json: Option<PathBuf>,
    /// Where to write a CSV rendering (figure binaries only).
    pub csv: Option<PathBuf>,
    /// Whether to run the observed (probe-attached) pass and export
    /// `results/obs_<experiment>.json` reports (`run_all` only).
    pub obs: bool,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut gen = GenConfig {
            seed: 1998, // year of the paper
            scale: 1.0,
            app_processes: 4,
        };
        let mut json = None;
        let mut csv = None;
        let mut obs = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => {
                    gen.scale = value("--scale").parse().unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        std::process::exit(2);
                    })
                }
                "--seed" => {
                    gen.seed = value("--seed").parse().unwrap_or_else(|e| {
                        eprintln!("bad --seed: {e}");
                        std::process::exit(2);
                    })
                }
                "--json" => json = Some(PathBuf::from(value("--json"))),
                "--csv" => csv = Some(PathBuf::from(value("--csv"))),
                "--obs" => obs = true,
                "--help" | "-h" => {
                    println!("usage: [--scale S] [--seed N] [--json PATH] [--csv PATH] [--obs]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        BenchArgs {
            gen,
            json,
            csv,
            obs,
        }
    }

    /// Writes a CSV rendering if `--csv` was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn archive_csv(&self, csv_body: &str) {
        if let Some(path) = &self.csv {
            fs::write(path, csv_body).expect("write CSV result");
            eprintln!("csv: {}", path.display());
        }
    }

    /// Archives `result` as pretty JSON if `--json` was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — an archival run with a broken
    /// destination should fail loudly.
    pub fn archive<T: Serialize>(&self, result: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(result).expect("results serialize");
            fs::write(path, body).expect("write JSON result");
            eprintln!("archived: {}", path.display());
        }
    }
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            gen: GenConfig {
                seed: 1998,
                scale: 1.0,
                app_processes: 4,
            },
            json: None,
            csv: None,
            obs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_match_paper_scale() {
        let a = BenchArgs::default();
        assert_eq!(a.gen.scale, 1.0);
        assert_eq!(a.gen.app_processes, 4);
        assert!(a.json.is_none());
        assert!(!a.obs);
    }

    #[test]
    fn archive_writes_json() {
        let dir = std::env::temp_dir().join("utlb_bench_test.json");
        let a = BenchArgs {
            json: Some(dir.clone()),
            ..BenchArgs::default()
        };
        a.archive(&vec![1, 2, 3]);
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.contains('1'));
        std::fs::remove_file(dir).ok();
    }
}
