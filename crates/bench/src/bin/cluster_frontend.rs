//! Clustered request-plane churn: a million simulated peers homed over
//! N boards, re-homed by `Frame::Redirect` when a board's registration
//! SRAM runs out, priced on the shared host-memory / I/O-bus / interrupt
//! stations — capacity and tail latency over a boards × homing-policy ×
//! mechanism grid, archived to `results/cluster_frontend.json`.
//!
//! A full (uncapped) run also archives the sweep's wall-clock numbers and
//! a 1-vs-N-board overhead pair to `BENCH_cluster_frontend.json`.
//!
//! `UTLB_CLUSTER_FRONTEND_CONNS` caps the connection count (CI smoke runs
//! use a small value); a capped run writes
//! `results/cluster_frontend_smoke.json` instead so the archived
//! full-churn numbers are never clobbered.

use std::time::Instant;
use utlb_sim::experiments::{cluster_frontend, CLUSTER_FRONTEND_CONNS, CLUSTER_FRONTEND_NODES};
use utlb_sim::frontend::FrontendConfig;
use utlb_sim::RunOutputExt;
use utlb_sim::{ClusterConfig, Live, Mechanism, Run, SimConfig};

/// NIC cache entries — the paper's default study point.
const CACHE_ENTRIES: usize = 8192;

/// Wall-clock cost of the grid plus the cluster driver's own overhead:
/// the same churn served by one board and by eight, timed.
#[derive(Debug, serde::Serialize)]
struct BenchClusterFrontend {
    cells: usize,
    sweep_wall_ms: f64,
    served_requests: u64,
    wall_requests_per_sec: f64,
    churn_connections: usize,
    one_board_wall_ms: f64,
    eight_board_wall_ms: f64,
    /// eight / one: what homing, redirects, and shared-station pricing
    /// cost on top of a single board serving the same churn.
    eight_over_one: f64,
}

fn bench_cluster_reactor() -> (usize, f64, f64) {
    let sim = SimConfig::study(CACHE_ENTRIES);
    let fcfg = FrontendConfig {
        connections: 2_048,
        open_window: 256,
        requests_per_conn: 8,
        ..FrontendConfig::default()
    };
    let run_nodes = |nodes: usize| {
        Run::new(Mechanism::Indexed)
            .config(&sim)
            .frontend(fcfg.clone())
            .cluster(ClusterConfig::new(nodes))
            .execute(Live)
            .into_cluster_frontend()
            .unwrap()
    };
    // One warm-up each, then a timed pass of several iterations.
    let _ = run_nodes(1).served;
    let _ = run_nodes(8).served;
    const ITERS: u32 = 5;
    let t = Instant::now();
    for _ in 0..ITERS {
        let _ = run_nodes(1);
    }
    let one_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    let t = Instant::now();
    for _ in 0..ITERS {
        let _ = run_nodes(8);
    }
    let eight_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    (fcfg.connections, one_ms, eight_ms)
}

fn main() {
    let cap: Option<usize> = std::env::var("UTLB_CLUSTER_FRONTEND_CONNS")
        .ok()
        .and_then(|v| v.parse().ok());
    let connections = cap.unwrap_or(CLUSTER_FRONTEND_CONNS);
    assert!(connections > 0, "need at least one connection");

    eprintln!(
        "cluster_frontend: {connections} connections over {CLUSTER_FRONTEND_NODES:?} boards \
         × 2 homing policies × 4 mechanisms..."
    );
    let sweep_start = Instant::now();
    let result = cluster_frontend(CACHE_ENTRIES, connections, &CLUSTER_FRONTEND_NODES);
    let sweep_wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
    println!("{result}");

    let body = serde_json::to_string_pretty(&result).expect("cluster frontend serializes");
    std::fs::create_dir_all("results").expect("create results/");
    let dest = if cap.is_none() {
        std::fs::write("results/cluster_frontend.json", &body)
            .expect("write results/cluster_frontend.json");
        "results/cluster_frontend.json"
    } else {
        std::fs::write("results/cluster_frontend_smoke.json", &body)
            .expect("write results/cluster_frontend_smoke.json");
        "results/cluster_frontend_smoke.json"
    };
    eprintln!(
        "cluster_frontend: {} cells, detail at {} boards ({} homing) → {dest}",
        result.cells.len(),
        result.detail.nodes,
        result.detail.homing,
    );

    if cap.is_none() {
        // Only a full-churn run updates the archived wall-clock numbers.
        let served: u64 = result.cells.iter().map(|c| c.served).sum();
        let (churn_connections, one_board_wall_ms, eight_board_wall_ms) = bench_cluster_reactor();
        let bench = BenchClusterFrontend {
            cells: result.cells.len(),
            sweep_wall_ms,
            served_requests: served,
            wall_requests_per_sec: served as f64 / (sweep_wall_ms / 1e3),
            churn_connections,
            one_board_wall_ms,
            eight_board_wall_ms,
            eight_over_one: eight_board_wall_ms / one_board_wall_ms,
        };
        let body = serde_json::to_string_pretty(&bench).expect("bench serializes");
        std::fs::write("BENCH_cluster_frontend.json", &body)
            .expect("write BENCH_cluster_frontend.json");
        eprintln!(
            "cluster_frontend bench: {} cells in {:.1} s ({:.2} M req/s wall), \
             8-board/1-board {:.2}x → BENCH_cluster_frontend.json",
            bench.cells,
            bench.sweep_wall_ms / 1e3,
            bench.wall_requests_per_sec / 1e6,
            bench.eight_over_one,
        );
    }
}
