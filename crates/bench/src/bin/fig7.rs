//! Regenerates the paper's Figure 7: compulsory/capacity/conflict breakdown
//! of translation-cache misses per application and cache size.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let f = utlb_sim::experiments::fig7(&args.gen);
    println!("{f}");
    args.archive(&f);
    args.archive_csv(&f.to_csv());
}
