//! Generates a workload trace and writes it as JSONL, so external tools (or
//! later `sim_trace` runs) can consume it.
//!
//! ```text
//! trace_gen <app> <out.jsonl> [--scale S] [--seed N]
//! ```

use std::fs::File;
use std::io::BufWriter;
use utlb_trace::{gen, write_jsonl, GenConfig, SplashApp};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: trace_gen <app> <out.jsonl> [--scale S] [--seed N]");
        eprintln!("apps: {}", SplashApp::ALL.map(|a| a.name()).join(", "));
        std::process::exit(2);
    }
    let app_name = args.remove(0);
    let path = args.remove(0);
    let mut cfg = GenConfig {
        seed: 1998,
        scale: 1.0,
        app_processes: 4,
    };
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => cfg.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(1.0),
            "--seed" => cfg.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(1998),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(app) = SplashApp::ALL.iter().find(|a| a.name() == app_name) else {
        eprintln!("unknown app {app_name}");
        std::process::exit(2);
    };
    let trace = gen::generate(*app, &cfg);
    let file = File::create(&path).expect("create output file");
    write_jsonl(&trace, BufWriter::new(file)).expect("write trace");
    println!(
        "{}: {} records, {} lookups, {} footprint pages -> {path}",
        trace.workload,
        trace.records.len(),
        trace.total_lookups(),
        trace.footprint_pages()
    );
}
