//! Cluster node-count scaling: shards a multiprogrammed workload over
//! 2 → 256 simulated boards (per-board engine, firmware, and DMA; shared
//! host memory, I/O bus, and interrupt service), one job per board (weak
//! scaling), and archives the sweep — plain and with mid-trace migrations
//! — to `results/cluster.json`.
//!
//! `UTLB_CLUSTER_NODES` caps the node axis (CI smoke runs use a small
//! value); a capped run writes `results/cluster_smoke.json` instead so the
//! archived full-axis numbers are never clobbered.

use utlb_sim::experiments::{cluster_scaling, CLUSTER_NODES};

/// NIC cache entries per board — the paper's default study point.
const CACHE_ENTRIES: usize = 8192;

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let cap: Option<usize> = std::env::var("UTLB_CLUSTER_NODES")
        .ok()
        .and_then(|v| v.parse().ok());
    let axis: Vec<usize> = match cap {
        Some(n) => CLUSTER_NODES.iter().copied().filter(|&x| x <= n).collect(),
        None => CLUSTER_NODES.to_vec(),
    };
    assert!(
        !axis.is_empty(),
        "UTLB_CLUSTER_NODES below the smallest axis point"
    );

    eprintln!(
        "cluster: weak-scaling sweep over {:?} boards, one job per board (scale {}, seed {})...",
        axis, args.gen.scale, args.gen.seed
    );
    let result = cluster_scaling(&args.gen, CACHE_ENTRIES, &axis);
    println!("{result}");

    let body = serde_json::to_string_pretty(&result).expect("cluster scaling serializes");
    std::fs::create_dir_all("results").expect("create results/");
    let dest = if cap.is_none() {
        std::fs::write("results/cluster.json", &body).expect("write results/cluster.json");
        "results/cluster.json"
    } else {
        std::fs::write("results/cluster_smoke.json", &body)
            .expect("write results/cluster_smoke.json");
        "results/cluster_smoke.json"
    };
    eprintln!(
        "cluster: {} cells across {} node counts, detail at {} boards → {dest}",
        result.cells.len(),
        result.topology.nodes_axis.len(),
        result.detail.nodes
    );
}
