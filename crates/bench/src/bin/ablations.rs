//! Extension experiments the paper names but could not run: the
//! replacement-policy sweep (§3.4/§7) and per-process UTLB vs the Shared
//! UTLB-Cache (§7), plus a prepin-width sweep extending Table 7.

use utlb_trace::SplashApp;

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    for app in [SplashApp::Water, SplashApp::Raytrace] {
        println!("{}", utlb_sim::experiments::policy_sweep(app, &args.gen));
    }
    for app in [SplashApp::Lu, SplashApp::Barnes] {
        println!(
            "{}",
            utlb_sim::experiments::perproc_vs_shared(app, &args.gen, 8192)
        );
    }
    for app in [SplashApp::Fft, SplashApp::Water] {
        println!("{}", utlb_sim::experiments::prepin_sweep(app, &args.gen));
    }
    for app in [SplashApp::Water, SplashApp::Barnes] {
        println!(
            "{}",
            utlb_sim::experiments::assoc_cost(app, &args.gen, 2048)
        );
    }
    for entries in [1024usize, 8192] {
        println!(
            "{}",
            utlb_sim::experiments::multiprog(SplashApp::Fft, SplashApp::Water, &args.gen, entries)
        );
    }
    for app in [SplashApp::Lu, SplashApp::Radix] {
        println!(
            "{}",
            utlb_sim::experiments::variant_comparison(app, &args.gen, 2048)
        );
    }
}
