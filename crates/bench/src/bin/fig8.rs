//! Regenerates the paper's Figure 8: the effect of prefetching translation
//! entries on Radix (miss rate and average lookup cost vs prefetch width).

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let f = utlb_sim::experiments::fig8(&args.gen);
    println!("{f}");
    args.archive(&f);
    args.archive_csv(&f.to_csv());
}
