//! Regenerates the paper's Table 8: Shared UTLB-Cache miss rates across
//! cache sizes and associativities (direct / 2-way / 4-way / direct-nohash).

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table8(&args.gen);
    println!("{t}");
    args.archive(&t);
}
