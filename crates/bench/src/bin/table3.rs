//! Regenerates the paper's Table 3: application characteristics
//! (paper targets vs what the synthetic generators produce).

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table3(&args.gen);
    println!("{t}");
    args.archive(&t);
}
