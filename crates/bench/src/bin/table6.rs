//! Regenerates the paper's Table 6: average translation-lookup cost for
//! Barnes and FFT under the §6.2 cost formulas.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table6(&args.gen);
    println!("{t}");
    args.archive(&t);
}
