//! Request-plane load sweep: N simulated peers connect to one board,
//! export buffers, and issue remote stores/fetches that each mechanism
//! translates on demand — connection churn, credit-window admission, and
//! per-mechanism throughput / tail latency over a connections × offered-
//! load grid, archived to `results/frontend.json`.
//!
//! A full (uncapped) run also times the sweep and a live-vs-trace-replay
//! pair and archives the wall-clock numbers to `BENCH_frontend.json`.
//!
//! `UTLB_FRONTEND_CONNS` caps the connection axis (CI smoke runs use a
//! small value); a capped run writes `results/frontend_smoke.json` instead
//! so the archived full-axis numbers are never clobbered.

use std::time::Instant;
use utlb_sim::experiments::{frontend_load, FRONTEND_CONNS};
use utlb_sim::frontend::{frontend_trace, FrontendConfig};
use utlb_sim::RunOutputExt;
use utlb_sim::{Live, Mechanism, Run, SimConfig};

/// NIC cache entries — the paper's default study point.
const CACHE_ENTRIES: usize = 8192;

/// Wall-clock cost of the sweep plus the reactor's own overhead: the same
/// steady workload served live (handshakes, credit admission, teardown)
/// and replayed serially from its materialized trace.
#[derive(Debug, serde::Serialize)]
struct BenchFrontend {
    cells: usize,
    sweep_wall_ms: f64,
    served_requests: u64,
    wall_requests_per_sec: f64,
    live_requests: u64,
    live_wall_ms: f64,
    trace_replay_wall_ms: f64,
    /// live / trace_replay: what the connection lifecycle costs on top of
    /// translation for an identical request stream.
    live_over_replay: f64,
}

fn bench_reactor() -> (u64, f64, f64) {
    let sim = SimConfig::study(CACHE_ENTRIES);
    // All connections stay open with a wide window: the live run and the
    // serial replay of its own trace then do identical translation work.
    let fcfg = FrontendConfig {
        connections: 32,
        open_window: 32,
        requests_per_conn: 256,
        credit_window: 256,
        queue_depth: 0,
        ..FrontendConfig::default()
    };
    let requests = (fcfg.connections * fcfg.requests_per_conn) as u64;
    let trace = frontend_trace(&fcfg);
    let live = Run::new(Mechanism::Utlb).config(&sim).frontend(fcfg);
    let serial = Run::new(Mechanism::Utlb).config(&sim);

    // One warm-up each, then a timed pass of several iterations.
    let _ = live.execute(Live).into_frontend().unwrap().served;
    let _ = serial.execute(&trace).into_sim().unwrap().stats.lookups;
    const ITERS: u32 = 10;
    let t = Instant::now();
    for _ in 0..ITERS {
        let r = live.execute(Live).into_frontend().unwrap();
        assert_eq!(r.served, requests);
    }
    let live_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    let t = Instant::now();
    for _ in 0..ITERS {
        let _ = serial.execute(&trace).into_sim().unwrap();
    }
    let replay_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    (requests, live_ms, replay_ms)
}

fn main() {
    let cap: Option<usize> = std::env::var("UTLB_FRONTEND_CONNS")
        .ok()
        .and_then(|v| v.parse().ok());
    let axis: Vec<usize> = match cap {
        Some(n) => FRONTEND_CONNS.iter().copied().filter(|&x| x <= n).collect(),
        None => FRONTEND_CONNS.to_vec(),
    };
    assert!(
        !axis.is_empty(),
        "UTLB_FRONTEND_CONNS below the smallest axis point"
    );

    eprintln!(
        "frontend: request-plane sweep over {axis:?} connections × 2 loads × 4 mechanisms..."
    );
    let sweep_start = Instant::now();
    let result = frontend_load(CACHE_ENTRIES, &axis);
    let sweep_wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
    println!("{result}");

    let body = serde_json::to_string_pretty(&result).expect("frontend load serializes");
    std::fs::create_dir_all("results").expect("create results/");
    let dest = if cap.is_none() {
        std::fs::write("results/frontend.json", &body).expect("write results/frontend.json");
        "results/frontend.json"
    } else {
        std::fs::write("results/frontend_smoke.json", &body)
            .expect("write results/frontend_smoke.json");
        "results/frontend_smoke.json"
    };
    eprintln!(
        "frontend: {} cells across {} connection counts, detail at {} connections → {dest}",
        result.cells.len(),
        result.axes.conns_axis.len(),
        result.detail.connections
    );

    if cap.is_none() {
        // Only a full-axis run updates the archived wall-clock numbers.
        let served: u64 = result.cells.iter().map(|c| c.served).sum();
        let (live_requests, live_wall_ms, trace_replay_wall_ms) = bench_reactor();
        let bench = BenchFrontend {
            cells: result.cells.len(),
            sweep_wall_ms,
            served_requests: served,
            wall_requests_per_sec: served as f64 / (sweep_wall_ms / 1e3),
            live_requests,
            live_wall_ms,
            trace_replay_wall_ms,
            live_over_replay: live_wall_ms / trace_replay_wall_ms,
        };
        let body = serde_json::to_string_pretty(&bench).expect("bench serializes");
        std::fs::write("BENCH_frontend.json", &body).expect("write BENCH_frontend.json");
        eprintln!(
            "frontend bench: {} cells in {:.1} s ({:.2} M req/s wall), \
             live/replay {:.2}x → BENCH_frontend.json",
            bench.cells,
            bench.sweep_wall_ms / 1e3,
            bench.wall_requests_per_sec / 1e6,
            bench.live_over_replay,
        );
    }
}
