//! Runs a JSONL trace file through both translation mechanisms and prints
//! the paper's per-lookup metrics — the simulator as a standalone tool.
//!
//! ```text
//! sim_trace <trace.jsonl> [cache_entries] [mem_limit_pages]
//! ```

use std::fs::File;
use std::io::BufReader;
use utlb_sim::RunOutputExt;
use utlb_sim::{Mechanism, Run, SimConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: sim_trace <trace.jsonl> [cache_entries] [mem_limit_pages]");
        std::process::exit(2);
    };
    let entries: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8192);
    let limit: Option<u64> = args.next().and_then(|v| v.parse().ok());

    let file = File::open(&path).expect("open trace file");
    let trace = utlb_trace::read_jsonl(BufReader::new(file)).expect("parse trace");
    println!(
        "{}: {} records, {} lookups, {} footprint pages",
        trace.workload,
        trace.records.len(),
        trace.total_lookups(),
        trace.footprint_pages()
    );

    let mut sim = SimConfig::study(entries);
    sim.mem_limit_pages = limit;
    let u = Run::new(Mechanism::Utlb)
        .config(&sim)
        .execute(&trace)
        .into_sim()
        .unwrap();
    let i = Run::new(Mechanism::Intr)
        .config(&sim)
        .execute(&trace)
        .into_sim()
        .unwrap();
    println!("cache {entries} entries, mem limit {limit:?} pages/process\n");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>14}{:>12}",
        "mech", "check miss", "NI miss", "unpins", "interrupts", "µs/lookup"
    );
    println!(
        "{:<8}{:>12.3}{:>12.3}{:>12.3}{:>14}{:>12.2}",
        "UTLB",
        u.stats.check_miss_rate(),
        u.stats.ni_miss_rate(),
        u.stats.unpin_rate(),
        u.stats.interrupts,
        u.utlb_lookup_cost(&sim)
    );
    println!(
        "{:<8}{:>12}{:>12.3}{:>12.3}{:>14}{:>12.2}",
        "Intr",
        "-",
        i.stats.ni_miss_rate(),
        i.stats.unpin_rate(),
        i.stats.interrupts,
        i.intr_lookup_cost(&sim)
    );
}
