//! Fused generate+replay at scale: replays a looped ~100M-lookup workload
//! that is never materialized, then the largest materialized paper trace as
//! baseline, archiving throughput, scale factor, and peak RSS to
//! `BENCH_stream.json` (and `results/stream_scale.json`).
//!
//! The streamed run executes before anything else in this process so the
//! `VmHWM` reading reflects the streaming replay loop, not earlier
//! allocations — run this binary standalone, not from `run_all`.
//!
//! `UTLB_STREAM_EPOCHS` overrides the epoch count (CI uses a small value;
//! the archived numbers use the default).

use utlb_sim::experiments::{stream_scale, STREAM_SCALE_APP};

/// Default epochs: Barnes carries ~35.9 K lookups per epoch at scale 1.0,
/// so 2800 epochs ≈ 100 M lookups.
const DEFAULT_EPOCHS: u64 = 2800;

/// NIC cache entries for both runs — the paper's default study point.
const CACHE_ENTRIES: usize = 8192;

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let epochs = std::env::var("UTLB_STREAM_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_EPOCHS);

    eprintln!(
        "stream_scale: fused replay of {STREAM_SCALE_APP} x{epochs} epochs \
         (scale {}, seed {})...",
        args.gen.scale, args.gen.seed
    );
    let result = stream_scale(&args.gen, epochs, CACHE_ENTRIES);
    println!("{result}");

    assert!(
        result.scale_factor >= 10.0,
        "acceptance: streamed run must be >= 10x the largest materialized run \
         (got {:.1}x)",
        result.scale_factor
    );

    let body = serde_json::to_string_pretty(&result).expect("stream scale serializes");
    std::fs::create_dir_all("results").expect("create results/");
    let dest = if epochs == DEFAULT_EPOCHS {
        // Only a full-length run updates the archived numbers; CI's small
        // smoke run (UTLB_STREAM_EPOCHS) must not clobber them.
        std::fs::write("results/stream_scale.json", &body)
            .expect("write results/stream_scale.json");
        std::fs::write("BENCH_stream.json", &body).expect("write BENCH_stream.json");
        "BENCH_stream.json"
    } else {
        std::fs::write("results/stream_scale_smoke.json", &body)
            .expect("write results/stream_scale_smoke.json");
        "results/stream_scale_smoke.json"
    };
    eprintln!(
        "stream scale: {:.1}M lookups at {:.2} Mlookups/s, {:.1}x the baseline, \
         peak RSS {} KiB → {dest}",
        result.streamed_lookups as f64 / 1e6,
        result.streamed_mlookups_per_sec,
        result.scale_factor,
        result
            .peak_rss_after_stream_kb
            .map_or_else(|| "n/a".to_string(), |k| k.to_string()),
    );
}
