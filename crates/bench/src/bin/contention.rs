//! Regenerates the extension contention experiments: the offered-load
//! sweep (translation latency vs background bus traffic, per mechanism)
//! and the DES interference run (each program's latency alone vs
//! co-scheduled on one NIC), plus the per-station service/wait breakdown
//! of one representative contended replay.

use serde::Serialize;
use utlb_sim::experiments::{bus_contention, interference_des, BusContention, InterferenceDes};
use utlb_sim::RunOutputExt;
use utlb_sim::{wait_breakdown, DesConfig, Mechanism, Run, SimConfig};
use utlb_trace::{gen, SplashApp};

/// Cache entries used by every contention run, matching Tables 4–5.
const CACHE_ENTRIES: usize = 8192;

/// Offered load of the interference run and the breakdown replay.
const INTERFERENCE_LOAD: f64 = 4.0;

/// Both contention results in one archivable document.
#[derive(Debug, Serialize)]
struct ContentionReport {
    /// The offered-load sweep.
    contention: BusContention,
    /// The multiprogrammed interference run.
    interference: InterferenceDes,
}

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let contention = bus_contention(&args.gen, CACHE_ENTRIES);
    println!("{contention}");
    let interference = interference_des(
        SplashApp::Radix,
        SplashApp::Fft,
        &args.gen,
        CACHE_ENTRIES,
        INTERFERENCE_LOAD,
    );
    println!("{interference}");

    let radix = gen::generate_shared(SplashApp::Radix, &args.gen);
    let r = Run::new(Mechanism::Utlb)
        .config(&SimConfig::study(CACHE_ENTRIES))
        .des(DesConfig::contended(INTERFERENCE_LOAD))
        .execute(&radix)
        .into_des()
        .unwrap();
    println!(
        "{}",
        wait_breakdown(
            format!("Station breakdown — radix / utlb @ load {INTERFERENCE_LOAD:.1}"),
            &r
        )
    );

    args.archive(&ContentionReport {
        contention,
        interference,
    });
}
