//! Regenerates the paper's Table 1: UTLB overhead on the host processor.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table1();
    println!("{t}");
    args.archive(&t);
}
