//! Regenerates the paper's Table 2: UTLB overhead on the network interface.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table2();
    println!("{t}");
    args.archive(&t);
}
