//! Guards the observability layer's zero-overhead claim.
//!
//! The probe slot is one branch on the fast path when detached, and a
//! `NoopProbe` adds only a dynamic call per event — so a full trace replay
//! with a no-op probe attached must stay within 10% of the probe-free
//! replay. This binary times the two interleaved (alternating rounds, so
//! frequency drift hits both sides equally), compares the per-side minima
//! (the least-noisy estimator of the true cost), and exits non-zero on a
//! regression. CI runs it with `--scale 0.3` — big enough that the timed
//! region dwarfs timer resolution, small enough to stay fast.

use std::hint::black_box;
use std::time::Instant;
use utlb_core::obs::NoopProbe;
use utlb_core::UtlbEngine;
use utlb_sim::RunOutputExt;
use utlb_sim::{Run, SimConfig};
use utlb_trace::{gen, SplashApp};

/// Interleaved timing rounds per side.
const ROUNDS: usize = 15;

/// Maximum tolerated noop-probe / no-probe runtime ratio.
const LIMIT: f64 = 1.10;

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let trace = gen::generate_shared(SplashApp::Water, &args.gen);
    let cfg = SimConfig::study(1024);

    // Warm both paths (page tables, allocator, trace cache) before timing.
    let runner = Run::with_config(&cfg);
    runner
        .execute_with(&mut UtlbEngine::new(cfg.utlb_config()), &trace)
        .expect("warm-up run succeeds");
    {
        let mut engine = UtlbEngine::new(cfg.utlb_config());
        engine.set_probe(Box::new(NoopProbe));
        runner
            .execute_with(&mut engine, &trace)
            .expect("warm-up run succeeds");
    }

    let mut base = f64::INFINITY;
    let mut probed = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut engine = UtlbEngine::new(cfg.utlb_config());
        let t = Instant::now();
        black_box(
            runner
                .execute_with(&mut engine, &trace)
                .into_sim()
                .unwrap()
                .stats
                .lookups,
        );
        base = base.min(t.elapsed().as_secs_f64());

        let mut engine = UtlbEngine::new(cfg.utlb_config());
        engine.set_probe(Box::new(NoopProbe));
        let t = Instant::now();
        black_box(
            runner
                .execute_with(&mut engine, &trace)
                .into_sim()
                .unwrap()
                .stats
                .lookups,
        );
        probed = probed.min(t.elapsed().as_secs_f64());
    }

    let ratio = probed / base;
    println!(
        "obs_guard: no-probe {:.1} ms, noop-probe {:.1} ms, ratio {ratio:.3} (limit {LIMIT})",
        base * 1e3,
        probed * 1e3
    );
    if ratio > LIMIT {
        eprintln!("obs_guard: FAIL — no-op probe overhead exceeds {LIMIT}x");
        std::process::exit(1);
    }
    println!("obs_guard: OK");
}
