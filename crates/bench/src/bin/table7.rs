//! Regenerates the paper's Table 7: amortized pin/unpin cost with 1-page vs
//! 16-page sequential pre-pinning under a 16 MB memory limit.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table7(&args.gen);
    println!("{t}");
    args.archive(&t);
}
