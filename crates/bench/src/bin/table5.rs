//! Regenerates the paper's Table 5: UTLB vs the interrupt-based approach
//! with a 4 MB per-process memory limit.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table5(&args.gen);
    println!("{t}");
    args.archive(&t);
}
