//! Regenerates the paper's Table 4: UTLB vs the interrupt-based approach
//! with infinite host memory (check misses, NI misses, unpins per lookup).

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    let t = utlb_sim::experiments::table4(&args.gen);
    println!("{t}");
    args.archive(&t);
}
