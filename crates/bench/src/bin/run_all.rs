//! Runs every table and figure regenerator in paper order — the one-shot
//! reproduction of the whole evaluation section.

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    println!("{}\n", utlb_sim::experiments::table1());
    println!("{}\n", utlb_sim::experiments::table2());
    println!("{}\n", utlb_sim::experiments::table3(&args.gen));
    println!("{}\n", utlb_sim::experiments::table4(&args.gen));
    println!("{}\n", utlb_sim::experiments::table5(&args.gen));
    println!("{}\n", utlb_sim::experiments::table6(&args.gen));
    println!("{}\n", utlb_sim::experiments::table7(&args.gen));
    println!("{}\n", utlb_sim::experiments::table8(&args.gen));
    println!("{}\n", utlb_sim::experiments::fig7(&args.gen));
    println!("{}\n", utlb_sim::experiments::fig8(&args.gen));
}
