//! Runs every table and figure regenerator in paper order — the one-shot
//! reproduction of the whole evaluation section — then measures the sweep
//! executor (Table 8's grid, sequential vs parallel) and the cache probe
//! hot path, archiving the numbers to `BENCH_sweep.json`.

use serde::Serialize;
use std::time::Instant;
use utlb_core::obs::Metrics;
use utlb_core::{CacheConfig, SharedUtlbCache};
use utlb_mem::{PhysAddr, ProcessId, VirtPage};
use utlb_sim::sweep::{worker_topology, WorkerTopology, THREADS_ENV};
use utlb_sim::RunOutputExt;
use utlb_sim::{phase_breakdown, sweep_over, Mechanism, ObsReport, Run, SimConfig};
use utlb_trace::{gen, GenConfig, SplashApp};

/// Worker counts the sweep bench times the Table 8 grid at. Points beyond
/// the machine's available parallelism measure oversubscription: on a
/// single-core host every point degenerates to the sequential numbers, and
/// cells/sec is expected to rise only up to `available_parallelism`.
const WORKER_AXIS: [usize; 4] = [1, 2, 4, 8];

/// One timed run of the grid at a pinned worker count.
#[derive(Debug, Serialize)]
struct SweepWorkerPoint {
    /// Workers the run was pinned to (`UTLB_SIM_THREADS`).
    workers: usize,
    /// Wall-clock seconds for the grid.
    secs: f64,
    /// Cells per second at this worker count.
    cells_per_sec: f64,
    /// Wall-clock speedup over the 1-worker point.
    speedup: f64,
}

/// Measured throughput of the experiment sweep machinery, archived so runs
/// on different machines can be compared.
#[derive(Debug, Serialize)]
struct SweepBench {
    /// Cells in the timed grid (Table 8: sizes × organizations × apps).
    cells: usize,
    /// The host's resolved worker topology (available parallelism and how
    /// the default worker count was chosen) — the context the `worker_axis`
    /// numbers must be read in.
    topology: WorkerTopology,
    /// One timed grid run per pinned worker count.
    worker_axis: Vec<SweepWorkerPoint>,
    /// Boards each sweep cell simulates — the paper's serial runners model
    /// one NIC; multi-board topologies archive to `results/cluster.json`.
    nodes: usize,
    /// Stations shared across boards in these runs (none at one board).
    shared_stations: Vec<String>,
    /// Nanoseconds per hit lookup in a resident 8 K-entry direct cache.
    cache_probe_ns: f64,
}

impl SweepBench {
    /// The largest speedup any axis point achieved over one worker.
    fn best_speedup(&self) -> f64 {
        self.worker_axis
            .iter()
            .map(|p| p.speedup)
            .fold(1.0, f64::max)
    }
}

fn time_table8(gen: &GenConfig) -> (usize, f64) {
    let start = Instant::now();
    let t = utlb_sim::experiments::table8(gen);
    (t.cells.len(), start.elapsed().as_secs_f64())
}

fn bench_sweep(gen: &GenConfig) -> SweepBench {
    // The earlier printing pass already populated the trace memo, so the
    // timed runs measure pure simulation, not generation.
    let prior = std::env::var(THREADS_ENV).ok();
    let mut cells = 0;
    let mut sequential_secs = f64::NAN;
    let mut worker_axis = Vec::with_capacity(WORKER_AXIS.len());
    for &workers in &WORKER_AXIS {
        std::env::set_var(THREADS_ENV, workers.to_string());
        let (n, secs) = time_table8(gen);
        cells = n;
        if workers == 1 {
            sequential_secs = secs;
        }
        worker_axis.push(SweepWorkerPoint {
            workers,
            secs,
            cells_per_sec: n as f64 / secs,
            speedup: sequential_secs / secs,
        });
    }
    // Restore any user override before resolving the topology, so the
    // archived `source` reflects the user's environment, not the axis pin.
    match &prior {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let topology = worker_topology(cells);

    let entries = 8192usize;
    let mut cache = SharedUtlbCache::new(CacheConfig::direct(entries));
    let pid = ProcessId::new(1);
    for v in 0..entries as u64 {
        cache.insert(pid, VirtPage::new(v), PhysAddr::new(v << 12));
    }
    let rounds = 128u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for v in 0..entries as u64 {
            std::hint::black_box(cache.lookup(pid, VirtPage::new(v)));
        }
    }
    let cache_probe_ns = start.elapsed().as_nanos() as f64 / (rounds * entries as u64) as f64;

    SweepBench {
        cells,
        topology,
        worker_axis,
        nodes: 1,
        shared_stations: Vec::new(),
        cache_probe_ns,
    }
}

/// Per-process event-ring capacity for observed runs: enough tail to
/// explain a surprising final state, small enough to keep exports readable.
const OBS_RING: usize = 64;

/// One observed run inside an experiment's obs export.
#[derive(Debug, Serialize)]
struct ObsRun {
    /// Application name.
    app: String,
    /// NIC cache entries of this run.
    cache_entries: usize,
    /// The full probe report (metrics, rings, board counters).
    report: ObsReport,
}

/// The `results/obs_<experiment>.json` document.
#[derive(Debug, Serialize)]
struct ObsExport {
    /// Experiment name ("table4", …).
    experiment: String,
    /// One entry per (app, mechanism) cell.
    runs: Vec<ObsRun>,
}

/// One observed cell: trace index, mechanism, and run parameters.
type ObsCell = (usize, Mechanism, SimConfig);

/// Reruns the headline experiments with the engine probe attached,
/// asserting that the event stream reconciles with the engines' own
/// statistics on every cell, printing the merged per-phase breakdown,
/// and archiving one JSON report per experiment under `results/`.
fn obs_pass(gencfg: &GenConfig) {
    std::fs::create_dir_all("results").expect("create results/");
    let traces: Vec<_> = SplashApp::ALL
        .iter()
        .map(|&app| (app, gen::generate_shared(app, gencfg)))
        .collect();

    let all_apps_all_mechs = |cfg: &SimConfig| -> Vec<ObsCell> {
        let mut cells = Vec::new();
        for tix in 0..traces.len() {
            for mech in Mechanism::ALL {
                cells.push((tix, mech, cfg.clone()));
            }
        }
        cells
    };
    let table7_cfg = {
        let mut c = SimConfig::study(8192).limit_mb(4);
        c.prepin = 16;
        c
    };
    let fig8_cfg = {
        let mut c = SimConfig::study(1024);
        c.prefetch = 8;
        c.prepin = 8;
        c
    };
    let experiments: Vec<(&str, Vec<ObsCell>)> = vec![
        ("table4", all_apps_all_mechs(&SimConfig::study(8192))),
        (
            "table5",
            all_apps_all_mechs(&SimConfig::study(8192).limit_mb(4)),
        ),
        (
            "table7",
            (0..traces.len())
                .map(|tix| (tix, Mechanism::Utlb, table7_cfg.clone()))
                .collect(),
        ),
        (
            "fig8",
            vec![(
                traces
                    .iter()
                    .position(|(app, _)| *app == SplashApp::Radix)
                    .expect("radix is in ALL"),
                Mechanism::Utlb,
                fig8_cfg,
            )],
        ),
    ];

    for (name, cells) in experiments {
        let runs: Vec<ObsRun> = sweep_over(&cells, |(tix, mech, cfg)| {
            let (app, trace) = &traces[*tix];
            let (_, report) = Run::new(*mech)
                .config(cfg)
                .observed_ring(OBS_RING)
                .execute(trace)
                .into_observed()
                .unwrap();
            assert!(
                report.reconciled,
                "{name}/{app}/{mech}: probe stream disagrees with engine stats: {:?}",
                report.mismatches
            );
            ObsRun {
                app: app.to_string(),
                cache_entries: cfg.cache_entries,
                report,
            }
        });
        for mech in Mechanism::ALL {
            let mut merged = Metrics::new();
            let mut any = false;
            for run in runs
                .iter()
                .filter(|r| r.report.mechanism == mech.to_string())
            {
                merged.merge(&run.report.metrics);
                any = true;
            }
            if any {
                println!(
                    "{}",
                    phase_breakdown(format!("Obs breakdown — {name} / {mech}"), &merged)
                );
            }
        }
        let path = format!("results/obs_{name}.json");
        let export = ObsExport {
            experiment: name.to_string(),
            runs,
        };
        let body = serde_json::to_string_pretty(&export).expect("obs export serializes");
        std::fs::write(&path, body).expect("write obs export");
        eprintln!("obs: {path}");
    }
}

/// Runs the extension contention experiments — the offered-load sweep and
/// the multiprogrammed interference run — printing both tables and
/// archiving each as JSON under `results/`.
fn contention_pass(gencfg: &GenConfig) {
    std::fs::create_dir_all("results").expect("create results/");
    let contention = utlb_sim::experiments::bus_contention(gencfg, 8192);
    println!("{contention}\n");
    let body = serde_json::to_string_pretty(&contention).expect("contention serializes");
    std::fs::write("results/contention.json", body).expect("write results/contention.json");
    eprintln!("contention: results/contention.json");

    let interference = utlb_sim::experiments::interference_des(
        SplashApp::Radix,
        SplashApp::Fft,
        gencfg,
        8192,
        4.0,
    );
    println!("{interference}\n");
    let body = serde_json::to_string_pretty(&interference).expect("interference serializes");
    std::fs::write("results/interference.json", body).expect("write results/interference.json");
    eprintln!("interference: results/interference.json");
}

fn main() {
    let args = utlb_bench::BenchArgs::parse();
    println!("{}\n", utlb_sim::experiments::table1());
    println!("{}\n", utlb_sim::experiments::table2());
    println!("{}\n", utlb_sim::experiments::table3(&args.gen));
    println!("{}\n", utlb_sim::experiments::table4(&args.gen));
    println!("{}\n", utlb_sim::experiments::table5(&args.gen));
    println!("{}\n", utlb_sim::experiments::table6(&args.gen));
    println!("{}\n", utlb_sim::experiments::table7(&args.gen));
    println!("{}\n", utlb_sim::experiments::table8(&args.gen));
    println!("{}\n", utlb_sim::experiments::fig7(&args.gen));
    println!("{}\n", utlb_sim::experiments::fig8(&args.gen));
    contention_pass(&args.gen);

    if args.obs {
        obs_pass(&args.gen);
    }

    let bench = bench_sweep(&args.gen);
    let body = serde_json::to_string_pretty(&bench).expect("bench serializes");
    std::fs::write("BENCH_sweep.json", &body).expect("write BENCH_sweep.json");
    eprintln!(
        "sweep bench: {} cells, axis {:?} on {} available cores ({}), best {:.2}x, {:.1} ns/probe → BENCH_sweep.json",
        bench.cells,
        WORKER_AXIS,
        bench.topology.available_parallelism,
        bench.topology.source,
        bench.best_speedup(),
        bench.cache_probe_ns
    );
}
