//! Request-plane front end: serve translations to live simulated peers.
//!
//! The trace runners replay *recorded* communication; this module generates
//! it live. N simulated peers connect to one board, export a buffer, and
//! issue remote stores and fetches that the configured
//! [`TranslationMechanism`] translates on demand — the full connection
//! lifecycle the paper's VMMC software ran above the UTLB, driven by a
//! poll-free deterministic reactor stepped by simulated time:
//!
//! * **Handshake** — a peer's [`Frame::Hello`] spawns a host process and
//!   registers it with the mechanism ([`Frame::Welcome`] carries its credit
//!   window). A registration the mechanism cannot satisfy — the §3.1
//!   engine's statically allocated SRAM tables are a bump allocation that
//!   outlives the process, so they *will* run out under connection churn —
//!   refuses the connection instead of failing the run: that capacity
//!   cliff is a result, not an error.
//! * **Admission** — each connection owns a bounded
//!   [`CreditWindow`]: requests beyond the window
//!   stall to the instant a credit returns (charged as wait time and
//!   emitted as [`Event::Backpressure`]), requests beyond the stall queue
//!   are rejected with [`Frame::Busy`].
//! * **Service** — admitted requests go through the same batched
//!   [`LookupBatch`]/[`OutcomeBuf`] path as the replay runners, on the same
//!   serial board clock, so firmware FIFO queueing emerges from the clock
//!   rather than being modeled separately.
//! * **Teardown** — [`Frame::Bye`] snapshots the connection's counters,
//!   unregisters the process (releasing its pins), and kills it, so live
//!   state is O(open connections) however many connections a run churns.
//!
//! Determinism contract: the whole run is a pure function of
//! ([`FrontendConfig`], [`SimConfig`], mechanism). Peers are deterministic
//! generators; the reactor admits events in `(timestamp, pid)` order from a
//! binary heap; nothing reads wall-clock time or ambient randomness. The
//! zero-backpressure image of the workload is also available as a
//! materialized [`Trace`] ([`frontend_trace`]), and a one-connection run
//! with ample credits is bit-exact with serially replaying that trace —
//! `tests/frontend.rs` and CI pin both.

use crate::{Mechanism, Run, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use utlb_core::obs::{Event, Histogram, Probe, SharedCollector};
use utlb_core::{CacheStats, LookupBatch, OutcomeBuf, TranslationMechanism, TranslationStats};
use utlb_des::{AdmissionOutcome, AdmissionStats, CreditWindow};
use utlb_mem::{Host, ProcessId, VirtAddr, PAGE_SIZE};
use utlb_msg::{Frame, FRAME_BYTES};
use utlb_nic::{Board, BoardSnapshot, Nanos};
use utlb_trace::{Op, Trace, TraceRecord};

/// Shape of one front-end run: how many peers connect, how hard each one
/// pushes, and how much credit the board extends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Total connections over the run's lifetime.
    pub connections: usize,
    /// Connections open simultaneously; the rest wait for a slot. Live
    /// reactor state is O(`open_window`), never O(`connections`).
    pub open_window: usize,
    /// Requests each connection issues before its [`Frame::Bye`].
    pub requests_per_conn: usize,
    /// Credits per connection: requests in service at once.
    pub credit_window: usize,
    /// Stall-queue depth per connection; a request beyond window + queue
    /// is rejected with [`Frame::Busy`].
    pub queue_depth: usize,
    /// Mean think time between a connection's requests (ns). Lower = more
    /// offered load.
    pub think_ns: u64,
    /// Time a served request keeps its credit after translation while the
    /// payload drains (ns) — the window's service-time component.
    pub drain_ns: u64,
    /// Bytes per remote store/fetch.
    pub payload_bytes: u64,
    /// Pages in each connection's exported buffer.
    pub buffer_pages: u64,
    /// Seed for the per-connection request generators.
    pub seed: u64,
}

impl Default for FrontendConfig {
    /// A moderate study point: 1 K connections through a 256-wide open
    /// window, credit window 4 over an 8-deep stall queue.
    fn default() -> Self {
        FrontendConfig {
            connections: 1024,
            open_window: 256,
            requests_per_conn: 8,
            credit_window: 4,
            queue_depth: 8,
            think_ns: 2_000,
            drain_ns: 4_000,
            payload_bytes: 4096,
            buffer_pages: 64,
            seed: 0xF00D,
        }
    }
}

impl FrontendConfig {
    /// Checks the shape can run at all.
    ///
    /// # Panics
    ///
    /// Panics on a zero connection/window/request count or a payload
    /// larger than the exported buffer — every one of those silently
    /// degenerates the workload, which a study config must not do.
    pub fn validate(&self) {
        assert!(
            self.connections > 0,
            "frontend needs at least one connection"
        );
        assert!(self.open_window > 0, "open window must admit a connection");
        assert!(
            self.requests_per_conn > 0,
            "connections must issue requests"
        );
        assert!(self.credit_window > 0, "credit window needs a credit");
        assert!(self.payload_bytes > 0, "zero-byte payloads carry nothing");
        assert!(
            self.buffer_pages * PAGE_SIZE >= self.payload_bytes,
            "payload must fit the exported buffer"
        );
    }

    /// Total requests the run offers if no connection is refused.
    pub fn offered_requests(&self) -> u64 {
        self.connections as u64 * self.requests_per_conn as u64
    }
}

/// Base of every connection's exported buffer (each process has its own
/// address space, so the bases coincide harmlessly).
const BUFFER_BASE: u64 = 0x4000_0000;

/// One generated request, before admission.
#[derive(Debug, Clone, Copy)]
struct Req {
    ts_ns: u64,
    op: Op,
    va: VirtAddr,
    nbytes: u64,
}

/// Deterministic per-connection request generator — the *peer*. Both the
/// live reactor and [`frontend_trace`] draw from this one definition, which
/// is what makes the trace the exact zero-backpressure image of the run.
#[derive(Debug)]
struct ReqGen {
    rng: StdRng,
    clock_ns: u64,
    remaining: usize,
}

impl ReqGen {
    fn new(fcfg: &FrontendConfig, conn: u64, open_ns: u64) -> Self {
        ReqGen {
            rng: StdRng::seed_from_u64(
                fcfg.seed ^ (conn.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            clock_ns: open_ns,
            remaining: fcfg.requests_per_conn,
        }
    }

    /// Think time to the next request: uniform in [think/2, 3·think/2),
    /// never zero so per-connection arrivals strictly increase.
    fn gap(&mut self, fcfg: &FrontendConfig) -> u64 {
        let think = fcfg.think_ns.max(1);
        (think / 2 + self.rng.gen_range(0..think)).max(1)
    }

    fn next(&mut self, fcfg: &FrontendConfig) -> Option<Req> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock_ns += self.gap(fcfg);
        let span = fcfg.buffer_pages * PAGE_SIZE - fcfg.payload_bytes;
        let offset = if span == 0 {
            0
        } else {
            // 64-byte-aligned offsets, the transfer granularity of the
            // simulated data link.
            self.rng.gen_range(0..=span / 64) * 64
        };
        let op = if self.rng.gen_bool(0.5) {
            Op::Send
        } else {
            Op::Fetch
        };
        Some(Req {
            ts_ns: self.clock_ns,
            op,
            va: VirtAddr::new(BUFFER_BASE + offset),
            nbytes: fcfg.payload_bytes,
        })
    }
}

/// One open connection's reactor state.
#[derive(Debug)]
struct Conn {
    pid: ProcessId,
    gen: ReqGen,
    window: CreditWindow,
    /// The request scheduled in the event heap, generated ahead of time so
    /// the heap knows its timestamp.
    pending: Option<Req>,
    /// Latest completion (translation + drain) of this connection, for
    /// timing the close.
    last_done_ns: u64,
    seq: u64,
}

/// What one front-end run produced. Aggregates and histograms only — never
/// per-connection vectors — so the result is O(1) in the connection count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontendResult {
    /// Workload label (`"frontend"`).
    pub workload: String,
    /// Connections the run attempted.
    pub connections: u64,
    /// Connections the mechanism accepted (handshake succeeded).
    pub accepted: u64,
    /// Connections refused at the handshake — the mechanism could not
    /// register another process (e.g. §3.1 static SRAM exhaustion).
    pub refused: u64,
    /// Requests offered by accepted connections.
    pub offered: u64,
    /// Requests admitted and translated.
    pub served: u64,
    /// Page-granular lookups those requests cost.
    pub served_lookups: u64,
    /// Flow-control counters summed over all connections; `rejected` here
    /// is the [`Frame::Busy`] count.
    pub admission: AdmissionStats,
    /// Translation counters summed over all connections (snapshotted at
    /// each close, before unregistration drops the per-process state).
    pub stats: TranslationStats,
    /// NIC translation-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Simulated time from the end of the initial handshake wave to the
    /// last translation, ns.
    pub sim_time_ns: u64,
    /// End-to-end request latency (arrival to credit return).
    pub latency_ns: Histogram,
}

impl FrontendResult {
    /// Served requests per second of simulated time.
    pub fn throughput_rps(&self) -> f64 {
        if self.sim_time_ns == 0 {
            return 0.0;
        }
        self.served as f64 * 1e9 / self.sim_time_ns as f64
    }

    /// Request-latency quantile in µs (`q` in (0, 1]).
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency_ns.quantile_ns(q) as f64 / 1000.0
    }

    /// Median request latency in µs.
    pub fn p50_us(&self) -> f64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile request latency in µs.
    pub fn p99_us(&self) -> f64 {
        self.latency_quantile_us(0.99)
    }

    /// 99.9th-percentile request latency in µs.
    pub fn p999_us(&self) -> f64 {
        self.latency_quantile_us(0.999)
    }
}

/// Emits a lifecycle event to the optional observation probe.
fn emit(probe: &mut Option<Box<dyn Probe>>, pid: ProcessId, event: Event) {
    if let Some(p) = probe {
        p.on_event(pid, event);
    }
}

/// Runs the peer's side of the wire for a request: encode into the reused
/// frame buffer, then decode as the board would. The decoded frame is what
/// the board dispatches on, so the protocol is load-bearing, and the round
/// trip allocates nothing.
fn through_wire(frame: Frame, wire: &mut [u8; FRAME_BYTES]) -> Frame {
    frame.encode_into(wire);
    Frame::decode(wire).expect("reactor frames are well-formed")
}

/// The reactor. See the module docs for the lifecycle; see
/// [`Run::frontend`] for the public entry point.
pub(crate) fn replay_frontend<M>(
    engine: &mut M,
    cfg: &SimConfig,
    fcfg: &FrontendConfig,
    obs: Option<&SharedCollector>,
) -> (FrontendResult, BoardSnapshot)
where
    M: TranslationMechanism + ?Sized,
{
    fcfg.validate();
    let mut host = Host::new(cfg.host_frames);
    let mut board = Board::new();
    if let Some(c) = obs {
        engine.set_probe(c.boxed());
    }
    let mut probe: Option<Box<dyn Probe>> = obs.map(SharedCollector::boxed);

    let mut accepted = 0u64;
    let mut refused = 0u64;
    let mut offered = 0u64;
    let mut served = 0u64;
    let mut admission = AdmissionStats::default();
    let mut stats_acc = TranslationStats::default();
    let mut latency_ns = Histogram::new();
    let mut wire = [0u8; FRAME_BYTES];
    let mut out = OutcomeBuf::new();

    // Event heap: (timestamp, pid, slot), smallest first. Each open
    // connection owns exactly one entry — its next request or its close —
    // so the heap is O(open_window).
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut next_conn = 0u64;
    let total = fcfg.connections as u64;

    // Handshake: Hello → register → Welcome, or a refusal. Returns the
    // connection if the mechanism accepted it.
    let open = |index: u64,
                open_ns: u64,
                host: &mut Host,
                board: &mut Board,
                engine: &mut M,
                probe: &mut Option<Box<dyn Probe>>,
                wire: &mut [u8; FRAME_BYTES],
                accepted: &mut u64,
                refused: &mut u64|
     -> Option<Conn> {
        let hello = through_wire(
            Frame::Hello {
                client: index,
                buffer_bytes: fcfg.buffer_pages * PAGE_SIZE,
            },
            wire,
        );
        debug_assert!(hello.is_request());
        let pid = host.spawn_process();
        match engine.register_process(host, board, pid) {
            Ok(()) => {
                let welcome = through_wire(
                    Frame::Welcome {
                        conn: pid.raw(),
                        credits: fcfg.credit_window as u32,
                    },
                    wire,
                );
                debug_assert!(!welcome.is_request());
                *accepted += 1;
                emit(probe, pid, Event::Connect);
                let mut gen = ReqGen::new(fcfg, index, open_ns);
                let pending = gen.next(fcfg);
                Some(Conn {
                    pid,
                    gen,
                    window: CreditWindow::new(fcfg.credit_window, fcfg.queue_depth),
                    pending,
                    last_done_ns: open_ns,
                    seq: 0,
                })
            }
            Err(_) => {
                // The board cannot hold another process directory: refuse
                // the handshake and reclaim the host process.
                host.kill_process(pid).expect("freshly spawned process");
                *refused += 1;
                None
            }
        }
    };

    // Initial wave, in index order so pids stay dense.
    let initial = fcfg.open_window.min(fcfg.connections);
    while (next_conn as usize) < initial {
        let conn = open(
            next_conn,
            0,
            &mut host,
            &mut board,
            engine,
            &mut probe,
            &mut wire,
            &mut accepted,
            &mut refused,
        );
        if let Some(c) = conn {
            let slot = slots.len();
            let ts = c
                .pending
                .as_ref()
                .expect("fresh connection has a request")
                .ts_ns;
            heap.push(Reverse((ts, c.pid.raw(), slot)));
            slots.push(Some(c));
        }
        next_conn += 1;
    }
    let t0 = board.clock.now();
    let mut last_service = t0;

    while let Some(Reverse((ts, _pid, slot))) = heap.pop() {
        let conn = slots[slot]
            .as_mut()
            .expect("heap entries point at open slots");
        match conn.pending.take() {
            Some(req) => {
                offered += 1;
                conn.seq += 1;
                let frame = match req.op {
                    Op::Send => Frame::Store {
                        seq: conn.seq,
                        va: req.va.raw(),
                        nbytes: req.nbytes,
                    },
                    Op::Fetch => Frame::Fetch {
                        seq: conn.seq,
                        va: req.va.raw(),
                        nbytes: req.nbytes,
                    },
                };
                let (seq, va, nbytes) = match through_wire(frame, &mut wire) {
                    Frame::Store { seq, va, nbytes } | Frame::Fetch { seq, va, nbytes } => {
                        (seq, VirtAddr::new(va), nbytes)
                    }
                    other => unreachable!("request wire carried {other:?}"),
                };
                let arrival = Nanos::from_nanos(req.ts_ns);
                match conn.window.offer(arrival) {
                    AdmissionOutcome::Admitted(a) => {
                        if a.stall > Nanos::ZERO {
                            emit(
                                &mut probe,
                                conn.pid,
                                Event::Backpressure {
                                    ns: a.stall.as_nanos(),
                                },
                            );
                        }
                        board.clock.advance_to(a.at);
                        out.clear();
                        engine
                            .lookup_run_into(
                                &mut host,
                                &mut board,
                                LookupBatch::for_buffer(conn.pid, va, nbytes),
                                &mut out,
                            )
                            .expect("frontend lookups succeed");
                        let translated = board.clock.now();
                        last_service = last_service.max(translated);
                        let done = translated + Nanos::from_nanos(fcfg.drain_ns);
                        conn.window.complete(done);
                        conn.last_done_ns = conn.last_done_ns.max(done.as_nanos());
                        served += 1;
                        let lat = done - arrival;
                        latency_ns.record(lat.as_nanos());
                        through_wire(
                            Frame::Done {
                                seq,
                                latency_ns: lat.as_nanos(),
                            },
                            &mut wire,
                        );
                    }
                    AdmissionOutcome::Rejected => {
                        through_wire(Frame::Busy { seq }, &mut wire);
                    }
                }
                conn.pending = conn.gen.next(fcfg);
                let next_ts = match &conn.pending {
                    Some(r) => r.ts_ns,
                    // All requests issued: close once the last payload has
                    // drained (never before the request just handled).
                    None => conn.last_done_ns.max(req.ts_ns),
                };
                heap.push(Reverse((next_ts, conn.pid.raw(), slot)));
            }
            None => {
                // Teardown: Bye → snapshot counters → unregister → ByeAck.
                let conn = slots[slot].take().expect("closing an open slot");
                debug_assert!(through_wire(Frame::Bye, &mut wire).is_request());
                let s = conn.window.stats();
                admission.admitted += s.admitted;
                admission.stalled += s.stalled;
                admission.rejected += s.rejected;
                admission.stall_ns += s.stall_ns;
                admission.max_in_flight = admission.max_in_flight.max(s.max_in_flight);
                stats_acc += engine
                    .stats(conn.pid)
                    .expect("open connection is registered");
                engine
                    .unregister_process(&mut host, &mut board, conn.pid)
                    .expect("open connection is registered");
                host.kill_process(conn.pid)
                    .expect("connection process is live");
                emit(&mut probe, conn.pid, Event::Close);
                through_wire(Frame::ByeAck, &mut wire);
                // The freed slot admits the next waiting connection, at the
                // close's timestamp.
                while next_conn < total {
                    let index = next_conn;
                    next_conn += 1;
                    let opened = open(
                        index,
                        ts,
                        &mut host,
                        &mut board,
                        engine,
                        &mut probe,
                        &mut wire,
                        &mut accepted,
                        &mut refused,
                    );
                    if let Some(c) = opened {
                        let next_ts = c
                            .pending
                            .as_ref()
                            .expect("fresh connection has a request")
                            .ts_ns;
                        heap.push(Reverse((next_ts, c.pid.raw(), slot)));
                        slots[slot] = Some(c);
                        break;
                    }
                    // Refused: fall through and try the next index in the
                    // same slot at the same instant.
                }
            }
        }
    }

    if obs.is_some() {
        engine.take_probe();
    }
    drop(probe);

    let result = FrontendResult {
        workload: "frontend".to_string(),
        connections: total,
        accepted,
        refused,
        offered,
        served,
        served_lookups: stats_acc.lookups,
        admission,
        stats: stats_acc,
        cache: engine.cache_stats(),
        sim_time_ns: (last_service - t0).as_nanos(),
        latency_ns,
    };
    (result, board.snapshot())
}

/// Materializes the zero-backpressure image of a front-end workload as a
/// [`Trace`]: every connection's full request sequence at its *arrival*
/// times, merged in the reactor's `(timestamp, pid)` order.
///
/// With `connections <= open_window` every peer opens at time zero in index
/// order, so connection *i* is pid *i + 1* and the trace replays through
/// [`Run::execute`] exactly as the reactor would admit it when no request
/// ever stalls — the equivalence `tests/frontend.rs` pins bit-exactly for a
/// one-connection run with ample credits.
///
/// # Panics
///
/// Panics if `connections > open_window`: connections beyond the window
/// open mid-run at times only the reactor knows, so no arrival-time trace
/// exists for them.
pub fn frontend_trace(fcfg: &FrontendConfig) -> Trace {
    fcfg.validate();
    assert!(
        fcfg.connections <= fcfg.open_window,
        "a materialized frontend trace needs every connection open from time zero"
    );
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    let mut gens: Vec<ReqGen> = Vec::with_capacity(fcfg.connections);
    let mut pending: Vec<Option<Req>> = Vec::with_capacity(fcfg.connections);
    for index in 0..fcfg.connections {
        let mut g = ReqGen::new(fcfg, index as u64, 0);
        let first = g.next(fcfg).expect("validated config issues requests");
        heap.push(Reverse((first.ts_ns, index as u32 + 1, index)));
        gens.push(g);
        pending.push(Some(first));
    }
    let mut records = Vec::with_capacity(fcfg.connections * fcfg.requests_per_conn);
    while let Some(Reverse((_, praw, index))) = heap.pop() {
        let req = pending[index].take().expect("heap entries have a request");
        records.push(TraceRecord {
            ts_ns: req.ts_ns,
            pid: ProcessId::new(praw),
            op: req.op,
            va: req.va,
            nbytes: req.nbytes,
        });
        if let Some(next) = gens[index].next(fcfg) {
            heap.push(Reverse((next.ts_ns, praw, index)));
            pending[index] = Some(next);
        }
    }
    Trace::new("frontend", fcfg.seed, records)
}

/// Convenience: the serial replay of [`frontend_trace`] under `cfg` — the
/// reference run the equivalence gate compares a live front end against.
pub fn frontend_reference(
    mech: Mechanism,
    cfg: &SimConfig,
    fcfg: &FrontendConfig,
) -> crate::SimResult {
    Run::new(mech)
        .config(cfg)
        .execute(&frontend_trace(fcfg))
        .into_sim()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FrontendConfig {
        FrontendConfig {
            connections: 8,
            open_window: 4,
            requests_per_conn: 5,
            ..FrontendConfig::default()
        }
    }

    #[test]
    fn generators_are_deterministic_and_strictly_increasing() {
        let fcfg = tiny();
        let draw = || {
            let mut g = ReqGen::new(&fcfg, 3, 100);
            std::iter::from_fn(|| g.next(&fcfg)).collect::<Vec<_>>()
        };
        let a = draw();
        let b = draw();
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.ts_ns, x.va, x.nbytes), (y.ts_ns, y.va, y.nbytes));
        }
        assert!(a.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
        assert!(a.iter().all(|r| r.ts_ns > 100));
        // Different connections draw different sequences.
        let mut other = ReqGen::new(&fcfg, 4, 100);
        let o = other.next(&fcfg).unwrap();
        assert!((o.ts_ns, o.va.raw()) != (a[0].ts_ns, a[0].va.raw()));
    }

    #[test]
    fn requests_stay_inside_the_exported_buffer() {
        let fcfg = FrontendConfig {
            buffer_pages: 2,
            payload_bytes: 4096,
            ..tiny()
        };
        let mut g = ReqGen::new(&fcfg, 0, 0);
        while let Some(r) = g.next(&fcfg) {
            assert!(r.va.raw() >= BUFFER_BASE);
            assert!(r.va.raw() + r.nbytes <= BUFFER_BASE + fcfg.buffer_pages * PAGE_SIZE);
            assert_eq!(r.va.raw() % 64, 0, "link-granularity alignment");
        }
    }

    #[test]
    fn frontend_trace_is_sorted_with_dense_pids() {
        let fcfg = FrontendConfig {
            connections: 4,
            open_window: 4,
            ..tiny()
        };
        let t = frontend_trace(&fcfg);
        assert_eq!(t.records.len(), 4 * fcfg.requests_per_conn);
        assert_eq!(t.process_ids().len(), 4);
        assert_eq!(t.process_ids()[0].raw(), 1);
        assert!(t.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    #[should_panic(expected = "open from time zero")]
    fn frontend_trace_rejects_churned_configs() {
        frontend_trace(&tiny());
    }

    #[test]
    #[should_panic(expected = "payload must fit")]
    fn oversized_payloads_panic() {
        FrontendConfig {
            payload_bytes: PAGE_SIZE * 3,
            buffer_pages: 2,
            ..tiny()
        }
        .validate();
    }
}
