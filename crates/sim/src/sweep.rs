//! Parallel experiment sweep executor.
//!
//! Every paper artifact is a grid of *independent* simulation cells — e.g.
//! Table 8 is 5 cache sizes × 4 organizations × 7 applications, each cell
//! one `run_utlb` over a shared trace. The drivers in
//! [`crate::experiments`] hand such grids to [`sweep`], which fans the
//! cells across a scoped thread pool and returns results **in input
//! order**, so a parallel sweep is byte-identical to a sequential one.
//!
//! Design constraints, in order:
//!
//! * **determinism** — cell `i` computes exactly `f(i)` from shared
//!   read-only inputs; scheduling can change only *when* a cell runs,
//!   never its value or its slot in the output;
//! * **zero dependencies** — plain `std::thread::scope` plus one atomic
//!   work counter; workers return their `(index, value)` batches through
//!   `join`, so there is no result lock to contend on;
//! * **operator control** — `UTLB_SIM_THREADS` overrides the worker count
//!   per call; `UTLB_SIM_THREADS=1` restores fully sequential in-caller
//!   execution (no threads spawned at all).
//!
//! Cells need not share a materialized trace at all: a cell closure can
//! build its own generator stream and replay it fused
//! (`crate::run_stream` over `utlb_trace::gen::stream`), keeping a grid's
//! resident trace memory at one chunk per worker instead of one
//! `Arc<Trace>` per app. Streamed cells are pinned byte-identical to
//! materialized cells by `tests/stream_equivalence.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the sweep worker count.
pub const THREADS_ENV: &str = "UTLB_SIM_THREADS";

/// Number of workers a sweep over `items` cells would use: the
/// [`THREADS_ENV`] override if set to a positive integer, else the
/// machine's available parallelism, clamped to the cell count (never 0).
///
/// Unparsable or zero overrides are ignored rather than fatal: an
/// experiment run late in a batch script should degrade to the default,
/// not die on a typo'd environment.
pub fn worker_count(items: usize) -> usize {
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.clamp(1, items.max(1))
}

/// Computes `f(0), f(1), …, f(n-1)` across a scoped worker pool and
/// returns the results in index order.
///
/// `f` runs at most once per index. With one worker (single-core machine,
/// `UTLB_SIM_THREADS=1`, or `n <= 1`) everything runs on the calling
/// thread. Work is distributed by an atomic counter, so ragged cell
/// durations (big apps next to small ones) self-balance instead of
/// stranding a pre-chunked worker.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn sweep<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut batch = Vec::new();
                    loop {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        if ix >= n {
                            return batch;
                        }
                        batch.push((ix, f(ix)));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(batch) => {
                    for (ix, value) in batch {
                        slots[ix] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("work counter covers every index exactly once"))
        .collect()
}

/// Sweeps `f` over a slice, returning one result per item in item order.
/// Convenience wrapper drivers use to fan a prebuilt cell list out.
pub fn sweep_over<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep(items.len(), |ix| f(&items[ix]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        // Make high indices finish first so out-of-order completion would
        // be caught by the order check.
        let got = sweep(64, |ix| {
            std::thread::sleep(std::time::Duration::from_micros((64 - ix) as u64 * 10));
            ix * 3
        });
        assert_eq!(got, (0..64).map(|ix| ix * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        assert_eq!(sweep(0, |_| 0u32), Vec::<u32>::new());
        assert_eq!(sweep(1, |ix| ix + 41), vec![41]);
    }

    #[test]
    fn sweep_over_maps_items() {
        let apps = ["barnes", "fft", "radix"];
        assert_eq!(sweep_over(&apps, |a| a.len()), vec![6, 3, 5]);
    }

    #[test]
    fn every_index_computed_exactly_once() {
        let calls: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let got = sweep(50, |ix| {
            calls[ix].fetch_add(1, Ordering::Relaxed);
            ix
        });
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(usize::MAX) >= 1);
    }
}
