//! Parallel experiment sweep executor: scratch arenas, cost-ordered
//! dispatch, checkpoint/restore.
//!
//! Every paper artifact is a grid of *independent* simulation cells — e.g.
//! Table 8 is 5 cache sizes × 4 organizations × 7 applications, each cell
//! one run over a shared trace. The drivers in [`crate::experiments`] hand
//! such grids to this module, which fans the cells across a scoped thread
//! pool and returns results **in input order**, so a parallel sweep is
//! byte-identical to a sequential one.
//!
//! Three mechanisms make the executor scale past the naive
//! fetch-and-increment pool it started as:
//!
//! * **Per-worker scratch arenas** — [`sweep_with`] hands every worker one
//!   caller-built scratch value (`init` runs once per worker, not once per
//!   cell) that each of its cells then reuses; with
//!   [`SweepScratch`](crate::SweepScratch) and
//!   [`Run::execute_in`](crate::Run::execute_in) the per-cell replay
//!   buffers (stream chunk, [`OutcomeBuf`](utlb_core::OutcomeBuf), DES
//!   event/demand vectors) are allocated once per worker and reused across
//!   the whole grid.
//! * **Cost-ordered dispatch** — [`SweepGrid::cost`] attaches an estimated
//!   cost per cell (drivers use the exact lookup count of the cell's trace
//!   or op program); the dispatcher hands out indices in descending-cost
//!   order (LPT list scheduling), which shortens the makespan of ragged
//!   grids — a straggler cell dispatched last can no longer stretch the
//!   tail on its own. Results still land in input order: scheduling can
//!   change only *when* a cell runs, never its value or its slot.
//! * **Checkpoint/restore** — [`SweepGrid::checkpoint`] journals each
//!   completed cell to `$UTLB_SWEEP_CHECKPOINT/<hash>.json`, keyed by a
//!   content hash of (sweep label, cell key, [`COST_MODEL_TAG`]). A rerun
//!   replays journaled cells and computes only the rest, so an interrupted
//!   grid resumes instead of restarting; a stale or mismatched key
//!   recomputes rather than trusting the journal. The final output is
//!   byte-identical to an uninterrupted run by construction.
//!
//! Failure containment: when a cell panics mid-sweep, a poison flag stops
//! the other workers from pulling further indices, so the sweep fails
//! promptly instead of computing every remaining cell first. The first
//! panic payload is re-raised on the calling thread.
//!
//! Design constraints, in order: **determinism** (cell `i` computes exactly
//! `f(i)` from shared read-only inputs), **zero dependencies** (plain
//! `std::thread::scope` plus one atomic work counter), **operator control**
//! ([`THREADS_ENV`] overrides the worker count; [`CHECKPOINT_ENV`] opts
//! into journaling).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable overriding the sweep worker count.
pub const THREADS_ENV: &str = "UTLB_SIM_THREADS";

/// Environment variable naming the checkpoint-journal directory. Unset —
/// the default — means no journaling; see [`SweepGrid::checkpoint`].
pub const CHECKPOINT_ENV: &str = "UTLB_SWEEP_CHECKPOINT";

/// Version tag of the cost model folded into every checkpoint key, so a
/// journal written by one build is never replayed by a build whose costs
/// (or result layout) may differ. CI and release builds inject the real
/// `git describe` via the `UTLB_GIT_DESCRIBE` compile-time env var; plain
/// builds fall back to the crate version.
pub const COST_MODEL_TAG: &str = match option_env!("UTLB_GIT_DESCRIBE") {
    Some(tag) => tag,
    None => concat!("utlb-sim-", env!("CARGO_PKG_VERSION")),
};

/// Where a sweep's worker count came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerSource {
    /// [`THREADS_ENV`] was set to a positive integer.
    EnvOverride,
    /// The machine's `available_parallelism` (or 1 when unknown).
    AvailableParallelism,
}

impl fmt::Display for WorkerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerSource::EnvOverride => f.write_str("env-override"),
            WorkerSource::AvailableParallelism => f.write_str("available-parallelism"),
        }
    }
}

impl Serialize for WorkerSource {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for WorkerSource {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.as_str() {
            Some("env-override") => Ok(WorkerSource::EnvOverride),
            Some("available-parallelism") => Ok(WorkerSource::AvailableParallelism),
            other => Err(serde::DeError::custom(format!(
                "expected worker source string, got {other:?}"
            ))),
        }
    }
}

/// The resolved worker topology of a sweep: how many workers, and why.
/// Archived in sweep JSON headers so results record the real topology the
/// run used instead of assuming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerTopology {
    /// Workers the sweep will use (clamped to the cell count, never 0).
    pub workers: usize,
    /// The resolved count before clamping to the cell count.
    pub configured: usize,
    /// The machine's `available_parallelism` (1 when unknown).
    pub available_parallelism: usize,
    /// Where `configured` came from.
    pub source: WorkerSource,
}

/// Resolves the worker topology a sweep over `items` cells would use: the
/// [`THREADS_ENV`] override if set to a positive integer, else the
/// machine's available parallelism, clamped to the cell count (never 0).
///
/// Unparsable or zero overrides are ignored rather than fatal: an
/// experiment run late in a batch script should degrade to the default,
/// not die on a typo'd environment.
///
/// The first resolution in a process logs the count and its source once
/// via [`utlb_core::obs::note_once`], so batch logs record the real
/// topology.
pub fn worker_topology(items: usize) -> WorkerTopology {
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (configured, source) = match std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => (n, WorkerSource::EnvOverride),
        None => (available_parallelism, WorkerSource::AvailableParallelism),
    };
    utlb_core::obs::note_once("sweep.workers", || {
        format!("{configured} workers ({source}), available parallelism {available_parallelism}")
    });
    WorkerTopology {
        workers: configured.clamp(1, items.max(1)),
        configured,
        available_parallelism,
        source,
    }
}

/// Number of workers a sweep over `items` cells would use — see
/// [`worker_topology`].
pub fn worker_count(items: usize) -> usize {
    worker_topology(items).workers
}

/// Sets the sweep poison flag if its thread unwinds: dropped during a
/// panic, it tells the other workers to stop pulling indices, so a failed
/// sweep stops promptly instead of computing every remaining cell first.
struct PoisonOnPanic<'a>(&'a AtomicBool);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// The one dispatch loop every public entry point funnels into.
///
/// `slots[i]` holds cell `i`'s result; entries pre-filled by a checkpoint
/// journal are kept as-is and never dispatched. `order` lists the pending
/// indices in dispatch order (cost-descending for LPT grids, input order
/// otherwise); workers claim positions in `order` through one atomic
/// counter. Each worker builds its scratch once via `init` and threads it
/// through every cell it executes. Results are written back by input
/// index, so the returned `Vec` is independent of worker count, dispatch
/// order, and journal state.
fn run_cells<T, S, I, F>(
    mut slots: Vec<Option<T>>,
    order: &[usize],
    workers: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let workers = workers.clamp(1, order.len().max(1));
    if order.is_empty() {
        // Nothing pending (fully journaled or an empty sweep).
    } else if workers <= 1 {
        let mut scratch = init();
        for &ix in order {
            slots[ix] = Some(f(ix, &mut scratch));
        }
    } else {
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _poison = PoisonOnPanic(&poisoned);
                        let mut scratch = init();
                        let mut batch = Vec::new();
                        loop {
                            if poisoned.load(Ordering::Acquire) {
                                return batch;
                            }
                            let at = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&ix) = order.get(at) else {
                                return batch;
                            };
                            batch.push((ix, f(ix, &mut scratch)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(batch) => {
                        for (ix, value) in batch {
                            slots[ix] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("dispatch order covers every unfilled slot exactly once"))
        .collect()
}

/// Computes `f(0), f(1), …, f(n-1)` across a scoped worker pool and
/// returns the results in index order.
///
/// `f` runs at most once per index. With one worker (single-core machine,
/// `UTLB_SIM_THREADS=1`, or `n <= 1`) everything runs on the calling
/// thread. Work is distributed by an atomic counter, so ragged cell
/// durations (big apps next to small ones) self-balance instead of
/// stranding a pre-chunked worker.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`. The remaining cells are
/// abandoned promptly (poison flag), not computed to completion first.
pub fn sweep<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sweep_with(n, || (), move |ix, ()| f(ix))
}

/// [`sweep`] with a per-worker scratch arena: `init` builds one scratch
/// value per worker (not per cell), and every cell that worker executes
/// receives `&mut` access to it — the batched replay path's scratch-reuse
/// pattern, applied across sweep cells. See
/// [`SweepScratch`](crate::SweepScratch) for the canonical replay scratch
/// and [`Run::execute_in`](crate::Run::execute_in) for threading it into a
/// run.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`, poisoning the dispatch
/// loop so other workers stop promptly.
pub fn sweep_with<T, S, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let order: Vec<usize> = (0..n).collect();
    run_cells(slots, &order, worker_count(n), init, f)
}

/// Sweeps `f` over a slice, returning one result per item in item order.
/// Convenience wrapper drivers use to fan a prebuilt cell list out.
pub fn sweep_over<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep(items.len(), |ix| f(&items[ix]))
}

/// [`sweep_over`] with a per-worker scratch arena (see [`sweep_with`]).
pub fn sweep_over_with<I, T, S, FI, F>(items: &[I], init: FI, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&I, &mut S) -> T + Sync,
{
    sweep_with(items.len(), init, |ix, scratch| f(&items[ix], scratch))
}

/// LPT dispatch order: indices sorted by descending cost, ties broken by
/// input order so the schedule is deterministic.
fn lpt_order(costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    order
}

/// 64-bit FNV-1a, the checkpoint filename hash. Stability matters more
/// than quality here: the full key is stored in the journal entry and
/// verified on load, so a collision costs a recompute, never a wrong
/// result.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One journaled cell: the full content key (verified on load — the
/// filename hash only routes) and the serialized result.
struct JournalEntry<T> {
    key: String,
    value: T,
}

impl<T: Serialize> Serialize for JournalEntry<T> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("key".to_string(), self.key.to_value()),
            ("value".to_string(), self.value.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for JournalEntry<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for JournalEntry"))?;
        Ok(JournalEntry {
            key: String::from_value(serde::field(obj, "key", "JournalEntry")?)?,
            value: T::from_value(serde::field(obj, "value", "JournalEntry")?)?,
        })
    }
}

/// A cell-result journal under one directory: content-keyed JSON files,
/// one per completed cell.
#[derive(Debug, Clone)]
struct Journal {
    dir: PathBuf,
    /// Full per-cell content keys: `label|cell key|`[`COST_MODEL_TAG`].
    keys: Vec<String>,
}

impl Journal {
    fn path_for(&self, ix: usize) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv1a(self.keys[ix].as_bytes())))
    }

    /// Loads cell `ix` if a journal entry exists *and* its stored key
    /// matches — a stale or colliding key recomputes rather than trusting
    /// the file.
    fn load<T: Deserialize>(&self, ix: usize) -> Option<T> {
        let text = std::fs::read_to_string(self.path_for(ix)).ok()?;
        let entry: JournalEntry<T> = serde_json::from_str(&text).ok()?;
        (entry.key == self.keys[ix]).then_some(entry.value)
    }

    /// Journals cell `ix`'s result: written to a worker-unique temp file,
    /// then renamed into place, so an interrupt mid-write can never leave
    /// a torn entry behind (a torn temp file fails to parse and is simply
    /// rewritten on the next run).
    fn store<T: Serialize>(&self, ix: usize, value: &T) {
        let entry = JournalEntry {
            key: self.keys[ix].clone(),
            value,
        };
        let Ok(body) = serde_json::to_string(&entry) else {
            return;
        };
        let path = self.path_for(ix);
        let tmp = path.with_extension(format!("tmp.{ix}"));
        if std::fs::write(&tmp, body).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// A cost-aware, checkpointable sweep over a prebuilt cell list — the
/// grid-shaped front half of the executor that the experiment drivers use.
///
/// ```
/// use utlb_sim::sweep::SweepGrid;
///
/// let specs: Vec<(usize, u64)> = vec![(1024, 900), (4096, 100), (2048, 500)];
/// let out = SweepGrid::over(&specs)
///     .cost(|&(_, lookups)| lookups) // big cells dispatch first (LPT)
///     .run(|&(entries, lookups)| entries as u64 + lookups);
/// assert_eq!(out, vec![1924, 4196, 2548]); // input order, always
/// ```
///
/// [`SweepGrid::checkpoint`] opts the grid into the crash-safe journal
/// when [`CHECKPOINT_ENV`] is set; [`SweepGrid::run`]/
/// [`SweepGrid::run_with`] execute the grid. Results are returned in item
/// order regardless of cost order, worker count, or journal state.
#[derive(Debug)]
pub struct SweepGrid<'i, I> {
    items: &'i [I],
    costs: Option<Vec<u64>>,
    workers: Option<usize>,
    journal: Option<Journal>,
}

impl<'i, I: Sync> SweepGrid<'i, I> {
    /// A grid over `items`, one cell per item.
    pub fn over(items: &'i [I]) -> Self {
        SweepGrid {
            items,
            costs: None,
            workers: None,
            journal: None,
        }
    }

    /// Attaches an estimated cost per cell; the dispatcher hands cells out
    /// in descending-cost order (LPT). Drivers pass the exact lookup count
    /// of the cell's trace or op program — any monotone proxy for runtime
    /// works, and a wrong estimate costs schedule quality, never
    /// correctness.
    #[must_use]
    pub fn cost(mut self, cost: impl Fn(&I) -> u64) -> Self {
        self.costs = Some(self.items.iter().map(cost).collect());
        self
    }

    /// Pins the worker count for this grid, overriding [`THREADS_ENV`] and
    /// `available_parallelism`. Benchmarks and tests use this to measure a
    /// fixed topology; drivers normally leave it unset.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Opts this grid into the checkpoint journal **iff** the
    /// [`CHECKPOINT_ENV`] environment variable names a directory; a no-op
    /// otherwise. `label` identifies the sweep (e.g. `"table8"`); `key`
    /// renders each cell's identity — spec coordinates, workload seed and
    /// geometry — into the content key, which is completed with the
    /// [`COST_MODEL_TAG`] so journals never survive a cost-model change.
    #[must_use]
    pub fn checkpoint(self, label: &str, key: impl Fn(&I) -> String) -> Self {
        match std::env::var(CHECKPOINT_ENV) {
            Ok(dir) if !dir.trim().is_empty() => self.checkpoint_at(dir.trim(), label, key),
            _ => self,
        }
    }

    /// [`checkpoint`](SweepGrid::checkpoint) with an explicit journal
    /// directory, independent of the environment.
    #[must_use]
    pub fn checkpoint_at(
        mut self,
        dir: impl AsRef<Path>,
        label: &str,
        key: impl Fn(&I) -> String,
    ) -> Self {
        let dir = dir.as_ref().to_path_buf();
        // A journal directory that cannot be created degrades to a plain
        // run: checkpointing is a convenience, not a correctness gate.
        if std::fs::create_dir_all(&dir).is_err() {
            return self;
        }
        let keys = self
            .items
            .iter()
            .map(|item| format!("{label}|{}|{}", key(item), COST_MODEL_TAG))
            .collect();
        self.journal = Some(Journal { dir, keys });
        self
    }

    /// Executes the grid; results in item order. See
    /// [`run_with`](SweepGrid::run_with) for the scratch-arena variant.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (poisoning the
    /// dispatch loop so remaining cells are abandoned promptly).
    pub fn run<T, F>(self, f: F) -> Vec<T>
    where
        T: Send + Serialize + Deserialize,
        F: Fn(&I) -> T + Sync,
    {
        self.run_with(|| (), move |item, ()| f(item))
    }

    /// Executes the grid with a per-worker scratch arena: `init` runs once
    /// per worker, `f` receives the item and `&mut` scratch. Journaled
    /// cells (checkpoint hits) are replayed without calling `f` at all;
    /// computed cells are journaled as soon as they complete, from the
    /// worker that ran them.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (poisoning the
    /// dispatch loop so remaining cells are abandoned promptly). Cells
    /// journaled before the panic are preserved for the next run.
    pub fn run_with<T, S, FI, F>(self, init: FI, f: F) -> Vec<T>
    where
        T: Send + Serialize + Deserialize,
        S: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&I, &mut S) -> T + Sync,
    {
        let n = self.items.len();
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        if let Some(journal) = &self.journal {
            for (ix, slot) in slots.iter_mut().enumerate() {
                *slot = journal.load(ix);
            }
        }
        let pending: Vec<usize> = {
            let base: Vec<usize> = match &self.costs {
                Some(costs) => lpt_order(costs),
                None => (0..n).collect(),
            };
            base.into_iter().filter(|&ix| slots[ix].is_none()).collect()
        };
        let items = self.items;
        let journal = &self.journal;
        let compute = |ix: usize, scratch: &mut S| {
            let value = f(&items[ix], scratch);
            if let Some(journal) = journal {
                journal.store(ix, &value);
            }
            value
        };
        let workers = self.workers.unwrap_or_else(|| worker_count(pending.len()));
        run_cells(slots, &pending, workers, init, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        // Make high indices finish first so out-of-order completion would
        // be caught by the order check.
        let got = sweep(64, |ix| {
            std::thread::sleep(std::time::Duration::from_micros((64 - ix) as u64 * 10));
            ix * 3
        });
        assert_eq!(got, (0..64).map(|ix| ix * 3).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_and_many_are_byte_identical() {
        // The scratch is deliberately stateful (a running cell counter):
        // per-worker reuse must still leave the serialized results equal
        // to the sequential run's, byte for byte.
        let grid: Vec<u64> = (0..37).map(|ix| ix * 17 % 11).collect();
        let run = |workers: usize| {
            let cells = SweepGrid::over(&grid).workers(workers).run_with(
                || 0u64,
                |&v, ran: &mut u64| {
                    *ran += 1;
                    v * v + 1
                },
            );
            serde_json::to_string(&cells).unwrap()
        };
        let sequential = run(1);
        assert_eq!(run(7), sequential);
        assert_eq!(run(64), sequential);
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        assert_eq!(sweep(0, |_| 0u32), Vec::<u32>::new());
        assert_eq!(sweep(1, |ix| ix + 41), vec![41]);
    }

    #[test]
    fn sweep_over_maps_items() {
        let apps = ["barnes", "fft", "radix"];
        assert_eq!(sweep_over(&apps, |a| a.len()), vec![6, 3, 5]);
    }

    #[test]
    fn every_index_computed_exactly_once() {
        let calls: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let got = sweep(50, |ix| {
            calls[ix].fetch_add(1, Ordering::Relaxed);
            ix
        });
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(usize::MAX) >= 1);
    }

    #[test]
    fn topology_records_available_parallelism_and_source() {
        let topo = worker_topology(1 << 20);
        assert!(topo.available_parallelism >= 1);
        assert!(topo.workers >= 1);
        assert!(topo.configured >= topo.workers);
        // Round-trips through the archive representation.
        let json = serde_json::to_string(&topo).unwrap();
        let back: WorkerTopology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, topo);
    }

    #[test]
    fn scratch_is_per_worker_not_per_cell() {
        // Each worker's scratch counts the cells it executed; the number
        // of scratches built equals the worker count, not the cell count,
        // and every cell ran on exactly one scratch.
        let builds = AtomicUsize::new(0);
        let grid: Vec<usize> = (0..97).collect();
        let out = SweepGrid::over(&grid).workers(4).run_with(
            || {
                builds.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |&ix, seen: &mut usize| {
                *seen += 1;
                (ix, *seen)
            },
        );
        let built = builds.load(Ordering::Relaxed);
        assert!(built <= 4, "at most one scratch per worker, got {built}");
        assert_eq!(out.len(), 97);
        assert!(
            out.iter().any(|&(_, seen)| seen > 1),
            "scratch must be reused across cells"
        );
        assert_eq!(
            out.iter().map(|&(ix, _)| ix).collect::<Vec<_>>(),
            (0..97).collect::<Vec<_>>()
        );
        // Total cells seen across scratches covers the grid exactly once.
        // (Each worker's final `seen` is not observable here, but the max
        // per-cell counter stamps are consistent with single execution: a
        // cell's stamp counts cells run so far on its worker.)
    }

    #[test]
    fn lpt_order_is_descending_with_stable_ties() {
        assert_eq!(lpt_order(&[3, 1, 3, 2]), vec![0, 2, 3, 1]);
        assert_eq!(lpt_order(&[]), Vec::<usize>::new());
        assert_eq!(lpt_order(&[5]), vec![0]);
    }

    #[test]
    fn cost_ordering_dispatches_big_cells_first_but_returns_input_order() {
        // Record dispatch order with a single worker (deterministic), then
        // check the results still come back in input order.
        let costs = [1u64, 100, 10, 1000];
        let grid: Vec<usize> = (0..4).collect();
        let dispatched = std::sync::Mutex::new(Vec::new());
        let out = SweepGrid::over(&grid)
            .cost(|&ix| costs[ix])
            .workers(1)
            .run(|&ix| {
                dispatched.lock().unwrap().push(ix);
                ix * 7
            });
        assert_eq!(out, vec![0, 7, 14, 21], "results in input order");
        assert_eq!(
            dispatched.into_inner().unwrap(),
            vec![3, 1, 2, 0],
            "dispatch in descending cost order"
        );
    }

    #[test]
    fn a_panicking_cell_poisons_the_sweep_promptly() {
        // 100 cells, 4 workers; the most expensive cell panics instantly,
        // every other cell sleeps. Without the poison flag the other
        // workers would grind through all 99 remaining cells before the
        // panic propagates; with it, only the cells already in flight
        // finish.
        let computed = AtomicUsize::new(0);
        let grid: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepGrid::over(&grid)
                .cost(|&ix| if ix == 17 { 1_000_000 } else { 1 })
                .workers(4)
                .run(|&ix| {
                    if ix == 17 {
                        panic!("cell 17 exploded");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    computed.fetch_add(1, Ordering::Relaxed);
                    ix
                })
        }));
        let err = result.expect_err("the cell panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("cell 17 exploded"), "payload: {msg}");
        let done = computed.load(Ordering::Relaxed);
        assert!(
            done < 50,
            "poison flag must stop the dispatch loop: {done} of 99 cells still ran"
        );
    }

    #[test]
    fn sequential_panic_propagates_immediately() {
        let computed = AtomicUsize::new(0);
        let grid: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepGrid::over(&grid).workers(1).run(|&ix| {
                if ix == 3 {
                    panic!("boom");
                }
                computed.fetch_add(1, Ordering::Relaxed);
                ix
            })
        }));
        assert!(result.is_err());
        assert_eq!(computed.load(Ordering::Relaxed), 3);
    }

    fn temp_journal_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("utlb-sweep-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_replays_journaled_cells_and_computes_the_rest() {
        let dir = temp_journal_dir("replay");
        let grid: Vec<u64> = (0..20).collect();
        let key = |&ix: &u64| format!("cell={ix}|seed=7");

        // First run: panic after enough cells journal (the "kill").
        let computed = AtomicUsize::new(0);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepGrid::over(&grid)
                .workers(1)
                .checkpoint_at(&dir, "unit", key)
                .run(|&ix| {
                    if computed.fetch_add(1, Ordering::Relaxed) == 7 {
                        panic!("interrupted");
                    }
                    ix * 2
                })
        }));
        assert!(first.is_err(), "the kill must propagate");
        let journaled = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(journaled, 7, "cells before the kill are journaled");

        // Resume: journaled cells replay without recompute, the rest run.
        let recomputed = AtomicUsize::new(0);
        let out = SweepGrid::over(&grid)
            .workers(1)
            .checkpoint_at(&dir, "unit", key)
            .run(|&ix| {
                recomputed.fetch_add(1, Ordering::Relaxed);
                ix * 2
            });
        assert_eq!(out, (0..20).map(|ix| ix * 2).collect::<Vec<_>>());
        assert_eq!(
            recomputed.load(Ordering::Relaxed),
            20 - 7,
            "journaled cells must not recompute"
        );

        // Third run: everything replays.
        let third = AtomicUsize::new(0);
        let out2 = SweepGrid::over(&grid)
            .workers(1)
            .checkpoint_at(&dir, "unit", key)
            .run(|&ix| {
                third.fetch_add(1, Ordering::Relaxed);
                ix * 2
            });
        assert_eq!(out2, out);
        assert_eq!(third.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_keys_recompute_instead_of_trusting_the_file() {
        let dir = temp_journal_dir("stale");
        let grid: Vec<u64> = (0..4).collect();

        // Journal under one key shape...
        let out = SweepGrid::over(&grid)
            .workers(1)
            .checkpoint_at(&dir, "unit", |&ix| format!("cell={ix}|geom=A"))
            .run(|&ix| ix + 100);
        assert_eq!(out, vec![100, 101, 102, 103]);

        // ...then corrupt one entry's stored key in place. The filename
        // still routes to the cell, but the content key no longer matches.
        let poisoned_path = dir.join(format!(
            "{:016x}.json",
            fnv1a(format!("unit|cell=2|geom=A|{COST_MODEL_TAG}").as_bytes())
        ));
        let body = std::fs::read_to_string(&poisoned_path).unwrap();
        std::fs::write(&poisoned_path, body.replace("geom=A", "geom=B")).unwrap();

        let recomputed = AtomicUsize::new(0);
        let out2 = SweepGrid::over(&grid)
            .workers(1)
            .checkpoint_at(&dir, "unit", |&ix| format!("cell={ix}|geom=A"))
            .run(|&ix| {
                recomputed.fetch_add(1, Ordering::Relaxed);
                ix + 100
            });
        assert_eq!(out2, out, "a stale key degrades to recompute");
        assert_eq!(recomputed.load(Ordering::Relaxed), 1);

        // A different geometry never replays the old journal.
        let other = AtomicUsize::new(0);
        let out3 = SweepGrid::over(&grid)
            .workers(1)
            .checkpoint_at(&dir, "unit", |&ix| format!("cell={ix}|geom=C"))
            .run(|&ix| {
                other.fetch_add(1, Ordering::Relaxed);
                ix + 100
            });
        assert_eq!(out3, out);
        assert_eq!(other.load(Ordering::Relaxed), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_env_unset_means_no_journal() {
        // `checkpoint` (env-driven) with the variable unset must not
        // create anything. The env var is process-global, so this test
        // only asserts the unset path; the set path is covered by the
        // explicit-directory tests above and the integration suite.
        if std::env::var(CHECKPOINT_ENV).is_ok() {
            return; // an outer harness opted in; nothing to assert here
        }
        let grid: Vec<u64> = (0..3).collect();
        let out = SweepGrid::over(&grid)
            .checkpoint("unit", |&ix| format!("{ix}"))
            .run(|&ix| ix);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
