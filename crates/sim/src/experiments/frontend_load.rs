//! Extension: request-plane load axis — connections × offered load ×
//! mechanism.
//!
//! The paper replays recorded traces; this driver measures the four
//! mechanisms *serving live peers* through the `utlb_sim::frontend`
//! request plane: connection churn, credit-window admission, and
//! on-demand translation on one board. Two loads per connection count —
//! think times well below and well above the service time — bracket the
//! regimes where the credit window stalls requests and where it is idle.
//!
//! The connection axis runs to 10⁶, which is the experiment's real
//! subject: mechanisms whose registration state is a board-lifetime SRAM
//! allocation (§3.1 per-process tables, and the hierarchical UTLB's
//! SRAM-resident top level) refuse almost the entire axis, while §3.2
//! host-resident indexed tables and the interrupt baseline accept every
//! connection — the capacity argument for shared, dynamically-backed
//! translation state, made with connection counts instead of prose.
//!
//! Per-cell config uses small per-process tables (256 entries) so the
//! SRAM cliff lands *inside* the axis rather than at its first point, and
//! `open_window` connections at a time so a million-connection cell holds
//! live state for only 256 of them.

use crate::frontend::{FrontendConfig, FrontendResult};
use crate::report::{micros, TextTable};
use crate::RunOutputExt;
use crate::{Live, Mechanism, Run, SimConfig, SweepGrid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The connection axis of the full experiment.
pub const FRONTEND_CONNS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Mean think times (ns) per connection: heavy load (well under the drain
/// time, so the credit window saturates) and light load (well over it).
pub const FRONTEND_LOADS: [u64; 2] = [500, 20_000];

/// Connection count whose full UTLB-mechanism [`FrontendResult`] (latency
/// histogram, admission counters) is archived as the detail point.
pub const FRONTEND_DETAIL_CONNS: usize = 10_000;

/// Per-process translation-table entries every cell runs with — small
/// enough that the §3.1 SRAM cliff is visible inside the axis.
const FRONTEND_TABLE_ENTRIES: usize = 256;

/// The front-end shape shared by every cell of a sweep, archived in the
/// JSON header. Deliberately excludes anything host-dependent (worker
/// counts, wall time): the archive must be byte-identical on any machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontendAxes {
    /// The connection counts swept.
    pub conns_axis: Vec<usize>,
    /// The think times swept (ns).
    pub think_axis: Vec<u64>,
    /// Connections open simultaneously in every cell.
    pub open_window: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Per-connection credit window.
    pub credit_window: usize,
    /// Per-connection stall-queue depth.
    pub queue_depth: usize,
    /// Payload drain time charged per served request (ns).
    pub drain_ns: u64,
    /// NIC cache entries.
    pub cache_entries: usize,
    /// Per-process translation-table entries.
    pub table_entries: usize,
}

/// One (mechanism, connections, think time) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontendCell {
    /// Serving mechanism.
    pub mechanism: Mechanism,
    /// Connections attempted.
    pub connections: u64,
    /// Mean think time between a connection's requests (ns).
    pub think_ns: u64,
    /// Connections the mechanism registered.
    pub accepted: u64,
    /// Connections refused at the handshake (board capacity).
    pub refused: u64,
    /// Requests offered by accepted connections.
    pub offered: u64,
    /// Requests admitted and translated.
    pub served: u64,
    /// Requests rejected by a full window + stall queue.
    pub rejected: u64,
    /// Requests that stalled for a credit before admission.
    pub stalled: u64,
    /// Total stall time charged (ns).
    pub stall_ns: u64,
    /// Served requests per second of simulated time.
    pub throughput_rps: f64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// 99th-percentile request latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile request latency (µs).
    pub p999_us: f64,
    /// Simulated service time (ns).
    pub sim_time_ns: u64,
}

/// The request-plane load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontendLoad {
    /// Front-end shape shared by all cells.
    pub axes: FrontendAxes,
    /// One cell per (connections, think, mechanism), axis-major.
    pub cells: Vec<FrontendCell>,
    /// Full result of the UTLB mechanism at [`FRONTEND_DETAIL_CONNS`] (or
    /// the largest swept count below it) under heavy load, with the
    /// complete latency histogram and admission counters.
    pub detail: FrontendResult,
}

/// The per-cell front-end config of a sweep over `cache_entries`.
fn cell_config(connections: usize, think_ns: u64) -> FrontendConfig {
    FrontendConfig {
        connections,
        open_window: 256.min(connections),
        requests_per_conn: 8,
        credit_window: 4,
        queue_depth: 8,
        think_ns,
        drain_ns: 4_000,
        payload_bytes: 4096,
        buffer_pages: 64,
        seed: 0xF00D,
    }
}

/// Runs the load sweep over `conns_axis` × [`FRONTEND_LOADS`] for all four
/// mechanisms. Cells are independent simulations and fan out across the
/// sweep pool; results are in axis order regardless of worker count, and
/// nothing host-dependent enters the result (CI pins the JSON byte-
/// identical across worker counts).
pub fn frontend_load(cache_entries: usize, conns_axis: &[usize]) -> FrontendLoad {
    assert!(!conns_axis.is_empty(), "need at least one connection count");
    let sim = SimConfig {
        table_entries: FRONTEND_TABLE_ENTRIES,
        ..SimConfig::study(cache_entries)
    };

    let mut grid = Vec::new();
    for &connections in conns_axis {
        for &think_ns in &FRONTEND_LOADS {
            for mech in Mechanism::ALL {
                grid.push((connections, think_ns, mech));
            }
        }
    }
    let results = SweepGrid::over(&grid)
        // No trace to count lookups from: a live cell's work scales with
        // the connections it serves, heavier at short think times. A rough
        // monotone proxy is enough for LPT — wrong estimates cost schedule
        // quality, never correctness.
        .cost(|&(connections, think_ns, _)| {
            let conns = connections as u64;
            conns + conns * 20_000 / (think_ns + 1)
        })
        .checkpoint("frontend_load", |&(connections, think_ns, mech)| {
            format!("conns={connections}|think={think_ns}|mech={mech}|entries={cache_entries}")
        })
        .run(|&(connections, think_ns, mech)| {
            Run::new(mech)
                .config(&sim)
                .frontend(cell_config(connections, think_ns))
                .execute(Live)
                .into_frontend()
                .unwrap()
        });

    let detail_conns = conns_axis
        .iter()
        .copied()
        .filter(|c| *c <= FRONTEND_DETAIL_CONNS)
        .max()
        .unwrap_or(conns_axis[0]);
    let mut detail = None;
    let mut cells = Vec::with_capacity(grid.len());
    for (&(connections, think_ns, mech), r) in grid.iter().zip(results) {
        cells.push(FrontendCell {
            mechanism: mech,
            connections: connections as u64,
            think_ns,
            accepted: r.accepted,
            refused: r.refused,
            offered: r.offered,
            served: r.served,
            rejected: r.admission.rejected,
            stalled: r.admission.stalled,
            stall_ns: r.admission.stall_ns,
            throughput_rps: r.throughput_rps(),
            p50_us: r.p50_us(),
            p99_us: r.p99_us(),
            p999_us: r.p999_us(),
            sim_time_ns: r.sim_time_ns,
        });
        if mech == Mechanism::Utlb && connections == detail_conns && think_ns == FRONTEND_LOADS[0] {
            detail = Some(r);
        }
    }

    FrontendLoad {
        axes: FrontendAxes {
            conns_axis: conns_axis.to_vec(),
            think_axis: FRONTEND_LOADS.to_vec(),
            open_window: 256,
            requests_per_conn: 8,
            credit_window: 4,
            queue_depth: 8,
            drain_ns: 4_000,
            cache_entries,
            table_entries: FRONTEND_TABLE_ENTRIES,
        },
        cells,
        detail: detail.expect("detail connection count is on the axis"),
    }
}

impl fmt::Display for FrontendLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Request-plane load: up to {} connections, {} open at a time ({} cache entries, {} table entries)",
            self.axes.conns_axis.iter().max().unwrap_or(&0),
            self.axes.open_window,
            self.axes.cache_entries,
            self.axes.table_entries,
        ));
        t.header([
            "mech", "conns", "think ns", "accepted", "refused", "served", "busy", "stalled",
            "req/s", "p50 µs", "p99 µs", "p999 µs",
        ]);
        for c in &self.cells {
            t.row([
                c.mechanism.to_string(),
                c.connections.to_string(),
                c.think_ns.to_string(),
                c.accepted.to_string(),
                c.refused.to_string(),
                c.served.to_string(),
                c.rejected.to_string(),
                c.stalled.to_string(),
                format!("{:.0}", c.throughput_rps),
                micros(c.p50_us),
                micros(c.p99_us),
                micros(c.p999_us),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid_and_separates_the_regimes() {
        let s = frontend_load(512, &[64, 600]);
        // 2 connection counts × 2 loads × 4 mechanisms.
        assert_eq!(s.cells.len(), 16);
        for c in &s.cells {
            assert_eq!(c.accepted + c.refused, c.connections);
            assert_eq!(c.offered, c.accepted * 8);
            assert_eq!(c.offered, c.served + c.rejected);
            if c.served > 0 {
                assert!(c.throughput_rps > 0.0);
                assert!(c.p999_us >= c.p50_us);
            }
        }
        // Heavy load stalls more than light load for the same cell.
        let stalls = |think: u64| -> u64 {
            s.cells
                .iter()
                .filter(|c| c.think_ns == think)
                .map(|c| c.stalled)
                .sum()
        };
        assert!(stalls(FRONTEND_LOADS[0]) > stalls(FRONTEND_LOADS[1]));
        // The SRAM-table mechanisms hit their registration cliffs on the
        // 600-connection points (the hierarchical UTLB's 16 KiB directory
        // caps a 1 MiB SRAM at 64 processes; 256-entry §3.1 tables cap it
        // at 512); dynamically-backed ones never refuse.
        for c in &s.cells {
            match c.mechanism {
                Mechanism::Indexed | Mechanism::Intr => assert_eq!(c.refused, 0),
                Mechanism::PerProc | Mechanism::Utlb => {
                    if c.connections == 600 {
                        assert!(c.refused > 0, "{:?} must exhaust SRAM", c.mechanism);
                    }
                }
            }
        }
        assert_eq!(s.detail.workload, "frontend");
        assert!(s.to_string().contains("req/s"));
    }

    #[test]
    fn results_are_deterministic_and_host_independent() {
        let a = serde_json::to_string(&frontend_load(256, &[96])).unwrap();
        let b = serde_json::to_string(&frontend_load(256, &[96])).unwrap();
        assert_eq!(a, b);
        assert!(!a.contains("workers"), "no host shape in the archive");
    }
}
