//! Extension: contention experiments on the discrete-event stations.
//!
//! The paper's cost model is serial — every device is always free when the
//! translation needs it. §7's limitations concede the traces "may not
//! reveal certain behaviors that multiple independent programs have"; the
//! same is true of a loaded I/O bus. These drivers replay the traces
//! through the DES overlay ([`Run::des`]) with the trace's own payload bytes put
//! back on the shared bus (scaled by an *offered load* factor), measuring
//! how translation latency degrades as the bus, DMA engine, and host
//! interrupt service saturate — per mechanism, so the UTLB-vs-interrupt
//! comparison extends from cost to queueing behavior.

use super::gen_key;
use crate::report::{micros, TextTable};
use crate::RunOutputExt;
use crate::{DesConfig, Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use utlb_trace::{gen, merge_multiprogram, GenConfig, SplashApp, Trace};

/// Offered-load factors swept by [`bus_contention`]: 0 is the serial
/// (zero-contention) anchor, 1 replays the trace's own payload traffic,
/// larger factors model co-located senders sharing the bus.
pub const CONTENTION_LOADS: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 8.0];

/// Applications used by the contention sweep: the paper's most
/// communication-intensive trace (Radix), a bursty FFT, and a sparse one
/// (Water) as contrast.
pub const CONTENTION_APPS: [SplashApp; 3] = [SplashApp::Fft, SplashApp::Radix, SplashApp::Water];

/// One `(app, mechanism, load)` point of the contention sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionCell {
    /// The application replayed.
    pub app: SplashApp,
    /// The translation mechanism.
    pub mechanism: Mechanism,
    /// Offered payload load factor.
    pub payload_load: f64,
    /// Mean per-request translation latency, µs.
    pub mean_latency_us: f64,
    /// Worst per-request translation latency, µs.
    pub max_latency_us: f64,
    /// Mean queueing delay per request, µs (the contention surcharge).
    pub mean_wait_us: f64,
    /// Total wait behind the NIC firmware, ns.
    pub fw_wait_ns: u64,
    /// Total wait behind the DMA engine, ns.
    pub dma_wait_ns: u64,
    /// Total wait behind the I/O bus, ns.
    pub bus_wait_ns: u64,
    /// Total wait behind host interrupt service, ns.
    pub intr_wait_ns: u64,
    /// DES completion time, ns.
    pub des_time_ns: u64,
}

/// The offered-load sweep: translation latency vs bus load, per mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusContention {
    /// Cache entries used for every run.
    pub cache_entries: usize,
    /// One cell per `(app, mechanism, load)`, loads innermost.
    pub cells: Vec<ContentionCell>,
}

impl BusContention {
    /// The `(load, mean latency µs)` series for one `(app, mechanism)`
    /// curve, in sweep order.
    pub fn latency_series(&self, app: SplashApp, mech: Mechanism) -> Vec<(f64, f64)> {
        self.cells
            .iter()
            .filter(|c| c.app == app && c.mechanism == mech)
            .map(|c| (c.payload_load, c.mean_latency_us))
            .collect()
    }
}

fn des_config(load: f64) -> DesConfig {
    if load == 0.0 {
        DesConfig::zero_contention()
    } else {
        DesConfig::contended(load)
    }
}

/// Sweeps offered load over [`CONTENTION_APPS`] × all four mechanisms
/// ([`Mechanism::ALL`]) × [`CONTENTION_LOADS`] at `cache_entries`, one DES
/// replay per cell, fanned out across sweep workers.
pub fn bus_contention(cfg: &GenConfig, cache_entries: usize) -> BusContention {
    let mut points: Vec<(SplashApp, Arc<Trace>, Mechanism, f64)> = Vec::new();
    for app in CONTENTION_APPS {
        let trace = gen::generate_shared(app, cfg);
        for mech in Mechanism::ALL {
            for load in CONTENTION_LOADS {
                points.push((app, Arc::clone(&trace), mech, load));
            }
        }
    }
    let sim = SimConfig::study(cache_entries);
    let cells = SweepGrid::over(&points)
        .cost(|(_, trace, _, _)| trace.total_lookups())
        .checkpoint("bus_contention", |(app, _, mech, load)| {
            format!(
                "app={app}|mech={mech}|load={load}|entries={cache_entries}|{}",
                gen_key(cfg)
            )
        })
        .run_with(SweepScratch::new, |(app, trace, mech, load), scratch| {
            let r = Run::new(*mech)
                .config(&sim)
                .des(des_config(*load))
                .execute_in(scratch, trace.as_ref())
                .into_des()
                .unwrap();
            ContentionCell {
                app: *app,
                mechanism: *mech,
                payload_load: *load,
                mean_latency_us: r.mean_latency_us(),
                max_latency_us: r.max_latency_us(),
                mean_wait_us: r.mean_wait_us(),
                fw_wait_ns: r.fw_wait_ns,
                dma_wait_ns: r.dma_wait_ns,
                bus_wait_ns: r.bus_wait_ns,
                intr_wait_ns: r.intr_wait_ns,
                des_time_ns: r.des_time_ns,
            }
        });
    BusContention {
        cache_entries,
        cells,
    }
}

impl fmt::Display for BusContention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Bus contention ({} entries): translation latency vs offered payload load",
            self.cache_entries
        ));
        t.header([
            "app", "mech", "load", "mean us", "max us", "wait us", "fw us", "dma us", "bus us",
            "intr us",
        ]);
        for c in &self.cells {
            t.row([
                c.app.to_string(),
                c.mechanism.to_string(),
                format!("{:.1}", c.payload_load),
                micros(c.mean_latency_us),
                micros(c.max_latency_us),
                micros(c.mean_wait_us),
                micros(c.fw_wait_ns as f64 / 1000.0),
                micros(c.dma_wait_ns as f64 / 1000.0),
                micros(c.bus_wait_ns as f64 / 1000.0),
                micros(c.intr_wait_ns as f64 / 1000.0),
            ]);
        }
        t.fmt(f)
    }
}

/// One program's latency, alone vs co-scheduled, in the DES interference
/// experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceCell {
    /// The application measured.
    pub app: SplashApp,
    /// The translation mechanism.
    pub mechanism: Mechanism,
    /// Mean translation latency running alone, µs.
    pub alone_us: f64,
    /// Mean translation latency co-scheduled with the partner, µs.
    pub shared_us: f64,
}

impl InterferenceCell {
    /// Latency inflation from co-scheduling: `shared / alone`.
    pub fn slowdown(&self) -> f64 {
        if self.alone_us == 0.0 {
            1.0
        } else {
            self.shared_us / self.alone_us
        }
    }
}

/// The multiprogrammed-interference experiment on the DES stations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceDes {
    /// Cache entries used.
    pub cache_entries: usize,
    /// Offered payload load for every run.
    pub payload_load: f64,
    /// One cell per (program, mechanism).
    pub cells: Vec<InterferenceCell>,
}

/// Replays `a` and `b` alone and merged (via [`merge_multiprogram`]) under
/// all four mechanisms at `load`, comparing each program's mean translation
/// latency — queueing interference between independent programs sharing
/// one NIC, which the serial runner cannot see.
pub fn interference_des(
    a: SplashApp,
    b: SplashApp,
    cfg: &GenConfig,
    cache_entries: usize,
    load: f64,
) -> InterferenceDes {
    let ta = gen::generate_shared(a, cfg);
    let tb = gen::generate_shared(b, cfg);
    let a_procs = ta.process_ids().len() as u32;
    let b_procs = tb.process_ids().len() as u32;
    let merged = Arc::new(merge_multiprogram(&[(*ta).clone(), (*tb).clone()]));

    let sim = SimConfig::study(cache_entries);
    let des = des_config(load);
    let runs: Vec<(Arc<Trace>, Mechanism)> = Mechanism::ALL
        .into_iter()
        .flat_map(|m| {
            [
                (Arc::clone(&ta), m),
                (Arc::clone(&tb), m),
                (Arc::clone(&merged), m),
            ]
        })
        .collect();
    let results = SweepGrid::over(&runs)
        .cost(|(trace, _)| trace.total_lookups())
        .run_with(SweepScratch::new, |(trace, mech), scratch| {
            Run::new(*mech)
                .config(&sim)
                .des(des)
                .execute_in(scratch, trace.as_ref())
                .into_des()
                .unwrap()
        });

    let a_pids: Vec<u32> = (1..=a_procs).collect();
    let b_pids: Vec<u32> = (a_procs + 1..=a_procs + b_procs).collect();
    let mut cells = Vec::new();
    for (mi, mech) in Mechanism::ALL.into_iter().enumerate() {
        let alone_a = &results[3 * mi];
        let alone_b = &results[3 * mi + 1];
        let shared = &results[3 * mi + 2];
        cells.push(InterferenceCell {
            app: a,
            mechanism: mech,
            alone_us: alone_a.mean_latency_us(),
            shared_us: shared.latency_for_pids(&a_pids).mean_ns() / 1000.0,
        });
        cells.push(InterferenceCell {
            app: b,
            mechanism: mech,
            alone_us: alone_b.mean_latency_us(),
            shared_us: shared.latency_for_pids(&b_pids).mean_ns() / 1000.0,
        });
    }
    InterferenceDes {
        cache_entries,
        payload_load: load,
        cells,
    }
}

impl fmt::Display for InterferenceDes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "DES interference ({} entries, load {:.1}): mean translation latency per program",
            self.cache_entries, self.payload_load
        ));
        t.header(["app", "mech", "alone us", "co-sched us", "slowdown"]);
        for c in &self.cells {
            t.row([
                c.app.to_string(),
                c.mechanism.to_string(),
                micros(c.alone_us),
                micros(c.shared_us),
                format!("{:.2}x", c.slowdown()),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn latency_is_monotone_in_offered_load_for_every_mechanism() {
        // The sweep's acceptance criterion: more background traffic can
        // only slow translations down.
        let bc = bus_contention(&test_gen_config(), 2048);
        assert_eq!(
            bc.cells.len(),
            CONTENTION_APPS.len() * Mechanism::ALL.len() * CONTENTION_LOADS.len()
        );
        for app in CONTENTION_APPS {
            for mech in Mechanism::ALL {
                let series = bc.latency_series(app, mech);
                assert_eq!(series.len(), CONTENTION_LOADS.len());
                for pair in series.windows(2) {
                    assert!(
                        pair[1].1 >= pair[0].1,
                        "{app}/{mech}: latency fell from {} to {} as load rose {} -> {}",
                        pair[0].1,
                        pair[1].1,
                        pair[0].0,
                        pair[1].0
                    );
                }
            }
        }
        assert!(bc.to_string().contains("Bus contention"));
    }

    #[test]
    fn zero_load_cells_have_no_device_waits() {
        let bc = bus_contention(&test_gen_config(), 2048);
        for c in bc.cells.iter().filter(|c| c.payload_load == 0.0) {
            assert_eq!(
                c.dma_wait_ns + c.bus_wait_ns + c.intr_wait_ns,
                0,
                "{}",
                c.app
            );
        }
    }

    #[test]
    fn cosched_latency_never_beats_running_alone() {
        let ix = interference_des(
            SplashApp::Radix,
            SplashApp::Fft,
            &test_gen_config(),
            2048,
            4.0,
        );
        assert_eq!(ix.cells.len(), 2 * Mechanism::ALL.len());
        for c in &ix.cells {
            assert!(
                c.shared_us >= c.alone_us * 0.98,
                "{}/{}: co-scheduled {} µs vs alone {} µs",
                c.app,
                c.mechanism,
                c.shared_us,
                c.alone_us
            );
            assert!(c.slowdown() >= 0.98);
        }
        assert!(ix.to_string().contains("DES interference"));
    }
}
