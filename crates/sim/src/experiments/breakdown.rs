//! Figure 7: breakdown of translation-cache miss rates into compulsory,
//! capacity, and conflict components, per application and cache size.

use super::{app_traces, gen_key};
use crate::report::TextTable;
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_trace::{GenConfig, SplashApp};

/// Cache sizes plotted in Figure 7 (1K, 4K, 8K, 16K entries).
pub const FIG7_SIZES: [usize; 4] = [1024, 4096, 8192, 16384];

/// One bar of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Bar {
    /// Application.
    pub app: SplashApp,
    /// Cache entries.
    pub cache_entries: usize,
    /// Compulsory miss rate (% of lookups).
    pub compulsory_pct: f64,
    /// Capacity miss rate (% of lookups).
    pub capacity_pct: f64,
    /// Conflict miss rate (% of lookups).
    pub conflict_pct: f64,
}

impl Fig7Bar {
    /// Total miss rate of the bar, in percent.
    pub fn total_pct(&self) -> f64 {
        self.compulsory_pct + self.capacity_pct + self.conflict_pct
    }
}

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// One bar per (app, size).
    pub bars: Vec<Fig7Bar>,
    /// `(app, entries)` → position in `bars`.
    index: HashMap<(SplashApp, usize), usize>,
}

/// Regenerates Figure 7 (infinite host memory, direct-mapped with
/// offsetting, no prefetch).
pub fn fig7(cfg: &GenConfig) -> Fig7 {
    let traces = app_traces(cfg);
    let mut specs = Vec::new();
    for tix in 0..traces.len() {
        for &entries in &FIG7_SIZES {
            specs.push((tix, entries));
        }
    }
    let bars = SweepGrid::over(&specs)
        .cost(|&(tix, _)| traces[tix].1.total_lookups())
        .checkpoint("fig7", |&(tix, entries)| {
            format!("entries={entries}|app={}|{}", traces[tix].0, gen_key(cfg))
        })
        .run_with(SweepScratch::new, |&(tix, entries), scratch| {
            let (app, ref trace) = traces[tix];
            let sim = SimConfig::study(entries);
            let r = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            let (comp, cap, conf) = r.breakdown.rates(r.stats.lookups);
            Fig7Bar {
                app,
                cache_entries: entries,
                compulsory_pct: comp * 100.0,
                capacity_pct: cap * 100.0,
                conflict_pct: conf * 100.0,
            }
        });
    Fig7::build(bars)
}

impl Fig7 {
    /// Builds the figure from its bars, indexing them by coordinates.
    pub fn build(bars: Vec<Fig7Bar>) -> Self {
        let index = bars
            .iter()
            .enumerate()
            .map(|(ix, b)| ((b.app, b.cache_entries), ix))
            .collect();
        Fig7 { bars, index }
    }

    /// The bar for (`app`, `entries`), if present.
    pub fn bar(&self, app: SplashApp, entries: usize) -> Option<&Fig7Bar> {
        self.index.get(&(app, entries)).map(|&ix| &self.bars[ix])
    }
}

impl Serialize for Fig7 {
    fn to_value(&self) -> serde::Value {
        // The index is a derived view; only the bars are archival state.
        serde::Value::Object(vec![("bars".to_string(), self.bars.to_value())])
    }
}

impl Deserialize for Fig7 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for Fig7"))?;
        let bars = Vec::from_value(serde::field(obj, "bars", "Fig7")?)?;
        Ok(Fig7::build(bars))
    }
}

impl Fig7 {
    /// Renders the figure as CSV (`app,cache_entries,compulsory_pct,...`),
    /// ready for any plotting tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("app,cache_entries,compulsory_pct,capacity_pct,conflict_pct\n");
        for b in &self.bars {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3}\n",
                b.app, b.cache_entries, b.compulsory_pct, b.capacity_pct, b.conflict_pct
            ));
        }
        out
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 7: miss-rate breakdown, % of lookups (compulsory / capacity / conflict)",
        );
        t.header([
            "app",
            "cache",
            "compulsory",
            "capacity",
            "conflict",
            "total",
        ]);
        for b in &self.bars {
            t.row([
                b.app.to_string(),
                format!("{}K", b.cache_entries / 1024),
                format!("{:.1}", b.compulsory_pct),
                format!("{:.1}", b.capacity_pct),
                format!("{:.1}", b.conflict_pct),
                format!("{:.1}", b.total_pct()),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn compulsory_is_size_invariant_and_dominates_at_large_caches() {
        let f = fig7(&test_gen_config());
        for app in SplashApp::ALL {
            let small = f.bar(app, FIG7_SIZES[0]).unwrap();
            let big = f.bar(app, FIG7_SIZES[3]).unwrap();
            assert!(
                (small.compulsory_pct - big.compulsory_pct).abs() < 0.5,
                "{app}: compulsory must not depend on cache size"
            );
            // Figure 7's headline: at the largest cache, compulsory misses
            // constitute the majority of all misses.
            assert!(
                big.compulsory_pct >= 0.5 * big.total_pct(),
                "{app}: compulsory {:.1}% of total {:.1}%",
                big.compulsory_pct,
                big.total_pct()
            );
        }
    }

    #[test]
    fn capacity_and_conflict_shrink_with_cache_size() {
        let f = fig7(&test_gen_config());
        for app in SplashApp::ALL {
            let small = f.bar(app, FIG7_SIZES[0]).unwrap();
            let big = f.bar(app, FIG7_SIZES[3]).unwrap();
            let small_cc = small.capacity_pct + small.conflict_pct;
            let big_cc = big.capacity_pct + big.conflict_pct;
            assert!(
                big_cc <= small_cc + 1.0,
                "{app}: capacity+conflict grew {small_cc:.1} → {big_cc:.1}"
            );
        }
    }

    #[test]
    fn renders_all_bars() {
        let f = fig7(&test_gen_config());
        assert_eq!(f.bars.len(), 7 * FIG7_SIZES.len());
        assert!(f.to_string().contains("Figure 7"));
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 1 + f.bars.len());
        assert!(csv.starts_with("app,cache_entries"));
    }
}
