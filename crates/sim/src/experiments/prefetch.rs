//! Figure 8: the effect of prefetching translation entries (Radix).
//!
//! Two panels, both as functions of the prefetch width with one series per
//! cache size: overall miss rate (left) and average lookup cost (right).
//! The paper's observations to reproduce: miss rate falls as prefetching
//! grows more aggressive, and because fetching more entries costs only
//! marginally more than fetching one (DMA setup dominates), the average
//! lookup cost falls too.

use super::gen_key;
use crate::report::{micros, rate, TextTable};
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_trace::{gen, GenConfig, SplashApp};

/// Prefetch widths swept on the x-axis.
pub const PREFETCH_WIDTHS: [u64; 9] = [1, 4, 8, 12, 16, 20, 24, 28, 32];

/// Cache sizes plotted as series.
pub const FIG8_SIZES: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// One point of Figure 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Cache entries (series).
    pub cache_entries: usize,
    /// Entries prefetched per miss (x-axis).
    pub prefetch: u64,
    /// Overall miss rate per lookup.
    pub miss_rate: f64,
    /// Average lookup cost in µs (§6.2 formula with the measured rates).
    pub lookup_us: f64,
}

/// Figure 8 data (the Radix application).
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// All points.
    pub points: Vec<Fig8Point>,
    /// `(entries, prefetch)` → position in `points`.
    index: HashMap<(usize, u64), usize>,
}

/// Regenerates Figure 8 (Radix, infinite host memory, direct-mapped cache).
pub fn fig8(cfg: &GenConfig) -> Fig8 {
    let trace = gen::generate_shared(SplashApp::Radix, cfg);
    let mut specs = Vec::new();
    for &entries in &FIG8_SIZES {
        for &prefetch in &PREFETCH_WIDTHS {
            specs.push((entries, prefetch));
        }
    }
    // Every cell replays the same Radix trace, so costs are uniform and
    // the dispatcher keeps input order; the grid still buys the cells
    // scratch reuse and a resume journal.
    let points = SweepGrid::over(&specs)
        .checkpoint("fig8", |&(entries, prefetch)| {
            format!("entries={entries}|prefetch={prefetch}|{}", gen_key(cfg))
        })
        .run_with(SweepScratch::new, |&(entries, prefetch), scratch| {
            // §6.5: "in order for prefetching to work well, translations
            // for contiguous application pages must be available during a
            // miss" — so the user library pre-pins the same width the NIC
            // prefetches. Without this pairing, neighbours of a
            // first-touch miss still hold the garbage address and the
            // prefetch fetches nothing useful.
            let sim = SimConfig {
                prefetch,
                prepin: prefetch,
                ..SimConfig::study(entries)
            };
            let r = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute_in(scratch, &trace)
                .into_sim()
                .unwrap();
            Fig8Point {
                cache_entries: entries,
                prefetch,
                miss_rate: r.stats.ni_miss_rate(),
                lookup_us: r.utlb_lookup_cost(&sim),
            }
        });
    Fig8::build(points)
}

impl Fig8 {
    /// Builds the figure from its points, indexing them by coordinates.
    pub fn build(points: Vec<Fig8Point>) -> Self {
        let index = points
            .iter()
            .enumerate()
            .map(|(ix, p)| ((p.cache_entries, p.prefetch), ix))
            .collect();
        Fig8 { points, index }
    }

    /// The point for (`entries`, `prefetch`), if present.
    pub fn point(&self, entries: usize, prefetch: u64) -> Option<&Fig8Point> {
        self.index
            .get(&(entries, prefetch))
            .map(|&ix| &self.points[ix])
    }
}

impl Serialize for Fig8 {
    fn to_value(&self) -> serde::Value {
        // The index is a derived view; only the points are archival state.
        serde::Value::Object(vec![("points".to_string(), self.points.to_value())])
    }
}

impl Deserialize for Fig8 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for Fig8"))?;
        let points = Vec::from_value(serde::field(obj, "points", "Fig8")?)?;
        Ok(Fig8::build(points))
    }
}

impl Fig8 {
    /// Renders the figure as CSV (`cache_entries,prefetch,miss_rate,lookup_us`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cache_entries,prefetch,miss_rate,lookup_us\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{:.4},{:.3}\n",
                p.cache_entries, p.prefetch, p.miss_rate, p.lookup_us
            ));
        }
        out
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 8: prefetching in the translation cache (RADIX) — miss rate | lookup µs",
        );
        let mut header = vec!["prefetch".to_string()];
        header.extend(FIG8_SIZES.iter().map(|s| format!("{}K", s / 1024)));
        t.header(header.clone());
        for &w in &PREFETCH_WIDTHS {
            let mut row = vec![w.to_string()];
            for &s in &FIG8_SIZES {
                let p = self.point(s, w).expect("full grid");
                row.push(format!("{} | {}", rate(p.miss_rate), micros(p.lookup_us)));
            }
            t.row(row);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn prefetching_reduces_miss_rate() {
        let f = fig8(&test_gen_config());
        for &s in &FIG8_SIZES {
            let none = f.point(s, 1).unwrap().miss_rate;
            let aggressive = f.point(s, 32).unwrap().miss_rate;
            assert!(
                aggressive < none,
                "{s} entries: {none} → {aggressive} must fall"
            );
        }
    }

    #[test]
    fn prefetching_reduces_average_lookup_cost() {
        // §6.4: "average lookup cost decreases as fetching becomes more
        // aggressive" — the cost of fetching grows much slower than the
        // miss rate drops.
        let f = fig8(&test_gen_config());
        for &s in &FIG8_SIZES {
            let none = f.point(s, 1).unwrap().lookup_us;
            let aggressive = f.point(s, 32).unwrap().lookup_us;
            assert!(
                aggressive < none,
                "{s} entries: cost {none} → {aggressive} must fall"
            );
        }
    }

    #[test]
    fn full_grid_rendered() {
        let f = fig8(&test_gen_config());
        assert_eq!(f.points.len(), FIG8_SIZES.len() * PREFETCH_WIDTHS.len());
        assert!(f.to_string().contains("RADIX"));
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 1 + f.points.len());
    }
}
