//! One driver per table and figure of the paper's evaluation.
//!
//! Every driver takes the workload [`GenConfig`] (so tests can run scaled-
//! down traces) and returns a typed result that renders as a paper-style
//! text table via `Display` and serializes to JSON for archival in
//! `EXPERIMENTS.md`.

mod ablations;
mod apps;
mod assoc;
mod breakdown;
mod cluster;
mod cluster_frontend;
mod compare;
mod contention;
mod frontend_load;
mod micro;
mod multiprog;
mod prefetch;
mod prepin;
mod stream_scale;

pub use ablations::{
    assoc_cost, perproc_vs_shared, policy_sweep, variant_comparison, AssocCost, PerprocVsShared,
    PolicySweep, VariantComparison,
};
pub use apps::{table3, Table3};
pub use assoc::{table8, Organization, Table8};
pub use breakdown::{fig7, Fig7, FIG7_SIZES};
pub use cluster::{
    cluster_scaling, cluster_workload, ClusterCell, ClusterScaling, ClusterTopology,
    CLUSTER_DETAIL_NODES, CLUSTER_NODES,
};
pub use cluster_frontend::{
    cluster_frontend, ClusterFrontendAxes, ClusterFrontendCell, ClusterFrontendScaling,
    CLUSTER_FRONTEND_CONNS, CLUSTER_FRONTEND_DETAIL_NODES, CLUSTER_FRONTEND_NODES,
};
pub use compare::{table4, table5, table6, Table45, Table6};
pub use contention::{
    bus_contention, interference_des, BusContention, ContentionCell, InterferenceCell,
    InterferenceDes, CONTENTION_APPS, CONTENTION_LOADS,
};
pub use frontend_load::{
    frontend_load, FrontendAxes, FrontendCell, FrontendLoad, FRONTEND_CONNS, FRONTEND_DETAIL_CONNS,
    FRONTEND_LOADS,
};
pub use micro::{table1, table2, Table1, Table2};
pub use multiprog::{multiprog, Multiprog, MultiprogCell};
pub use prefetch::{fig8, Fig8, FIG8_SIZES, PREFETCH_WIDTHS};
pub use prepin::{prepin_sweep, table7, PrepinSweep, Table7};
pub use stream_scale::{
    peak_rss_kb, stream_scale, StreamScale, STREAM_SCALE_APP, STREAM_SCALE_BASELINE,
};

use std::sync::Arc;
use utlb_trace::{gen, GenConfig, SplashApp, Trace};

/// The cache sizes swept throughout §6: 1 K to 16 K entries.
pub const CACHE_SIZES: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// The subset of sizes used by Table 6 and Figure 7.
pub const SPARSE_SIZES: [usize; 3] = [1024, 4096, 16384];

/// The traces for all seven applications, in the paper's table order.
///
/// Traces come from the process-wide memo ([`gen::generate_shared`]), so
/// calling this from every driver in a batch run generates each app exactly
/// once; the drivers' sweep cells then share the `Arc`s read-only across
/// worker threads.
pub fn app_traces(cfg: &GenConfig) -> Vec<(SplashApp, Arc<Trace>)> {
    SplashApp::ALL
        .iter()
        .map(|app| (*app, gen::generate_shared(*app, cfg)))
        .collect()
}

/// The workload-generation half of a checkpoint key: everything that
/// changes the traces a driver replays. Folded into every
/// [`SweepGrid::checkpoint`](crate::SweepGrid::checkpoint) key so a
/// journal from one workload scale never replays into another.
pub(crate) fn gen_key(cfg: &GenConfig) -> String {
    format!(
        "seed={}|scale={}|procs={}",
        cfg.seed, cfg.scale, cfg.app_processes
    )
}

#[cfg(test)]
pub(crate) fn test_gen_config() -> GenConfig {
    GenConfig {
        seed: 7,
        scale: 0.04,
        app_processes: 4,
    }
}
