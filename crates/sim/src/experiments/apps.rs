//! Table 3: application problem size, communication footprint, and
//! translation-lookup counts — both the paper's targets and what our
//! generators actually produce.

use super::app_traces;
use crate::report::TextTable;
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_trace::{GenConfig, SplashApp};

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Application.
    pub app: SplashApp,
    /// Problem size as quoted by the paper.
    pub problem_size: String,
    /// Paper's footprint target (4 KB pages).
    pub target_footprint: u64,
    /// Footprint of the generated trace.
    pub measured_footprint: u64,
    /// Paper's lookup target.
    pub target_lookups: u64,
    /// Lookups in the generated trace.
    pub measured_lookups: u64,
}

/// Table 3: application characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per application.
    pub rows: Vec<Table3Row>,
}

/// Regenerates Table 3 by generating each trace and measuring it.
pub fn table3(cfg: &GenConfig) -> Table3 {
    let rows = app_traces(cfg)
        .into_iter()
        .map(|(app, trace)| {
            let spec = app.spec();
            Table3Row {
                app,
                problem_size: spec.problem_size.to_string(),
                target_footprint: ((spec.footprint_pages as f64) * cfg.scale) as u64,
                measured_footprint: trace.footprint_pages(),
                target_lookups: ((spec.lookups as f64) * cfg.scale) as u64,
                measured_lookups: trace.total_lookups(),
            }
        })
        .collect();
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table 3: problem size, communication footprint (4 KB pages), lookups per node",
        );
        t.header([
            "application",
            "problem size",
            "footprint (paper)",
            "footprint (ours)",
            "lookups (paper)",
            "lookups (ours)",
        ]);
        for r in &self.rows {
            t.row([
                r.app.to_string(),
                r.problem_size.clone(),
                r.target_footprint.to_string(),
                r.measured_footprint.to_string(),
                r.target_lookups.to_string(),
                r.measured_lookups.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn all_apps_within_fifteen_percent_of_targets() {
        let t = table3(&test_gen_config());
        assert_eq!(t.rows.len(), 7);
        for r in &t.rows {
            let fp_err = (r.measured_footprint as f64 - r.target_footprint as f64).abs()
                / r.target_footprint as f64;
            let lk_err = (r.measured_lookups as f64 - r.target_lookups as f64).abs()
                / r.target_lookups as f64;
            assert!(fp_err < 0.15, "{}: footprint error {fp_err}", r.app);
            assert!(lk_err < 0.15, "{}: lookup error {lk_err}", r.app);
        }
        assert!(t.to_string().contains("Table 3"));
    }
}
