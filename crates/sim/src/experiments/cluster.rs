//! Extension: node-count scaling of a multi-NIC cluster.
//!
//! The paper evaluates one NIC per node and stops there; its cost model
//! assumes the host memory system and I/O bus are private to that NIC.
//! This driver scales the board count 2 → 256 and measures what sharing
//! those stations actually costs: each board brings its own engine, SRAM
//! geometry, firmware and DMA station (see [`crate::ClusterConfig`]),
//! while host memory, the I/O bus, and host interrupt service stay shared.
//!
//! The sweep is **weak scaling**: every axis point runs one job per board
//! (a board's SRAM holds a bounded number of process directories, so a
//! fixed 256-job workload cannot even register on 2 boards), which keeps
//! the per-board offered load constant — any latency growth along the axis
//! is therefore pure shared-station queueing, the quantity under study. A
//! second cell per node count reruns the same workload with a batch of
//! processes migrating boards mid-trace, putting a number on the
//! demand-re-pin storm a migration triggers.

use super::gen_key;
use crate::report::{micros, TextTable};
use crate::sweep::worker_count;
use crate::RunOutputExt;
use crate::{
    ClusterConfig, ClusterResult, Mechanism, Run, SimConfig, SweepGrid, DEFAULT_HOST_FRAMES,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_trace::{gen, merge_multiprogram, GenConfig, SplashApp, Trace};

/// The node-count axis of the full experiment.
pub const CLUSTER_NODES: [usize; 6] = [2, 4, 8, 16, 64, 256];

/// Board count whose full [`ClusterResult`] (wait histograms, per-board
/// metrics) is kept in the archive as the representative detail point.
pub const CLUSTER_DETAIL_NODES: usize = 8;

/// Processes migrated in each migration cell, capped at the board count.
const MIGRATION_BATCH: usize = 8;

/// Builds the cluster workload: `jobs` application traces — cycling the
/// seven SPLASH-2 apps with distinct seeds — merged into one
/// multiprogrammed stream. Each job runs one application process plus its
/// protocol process, so the merged trace carries `2 * jobs` dense pids.
pub fn cluster_workload(cfg: &GenConfig, jobs: usize) -> Trace {
    assert!(jobs >= 1, "a cluster workload needs a job");
    let parts: Vec<Trace> = (0..jobs)
        .map(|i| {
            let app = SplashApp::ALL[i % SplashApp::ALL.len()];
            gen::generate(
                app,
                &GenConfig {
                    seed: cfg.seed + i as u64,
                    scale: cfg.scale,
                    app_processes: 1,
                },
            )
        })
        .collect();
    merge_multiprogram(&parts)
}

/// The topology a cluster sweep ran under — archived in the JSON header so
/// results from different machines and configurations stay comparable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// The node counts swept.
    pub nodes_axis: Vec<usize>,
    /// Host-side sweep workers the run used.
    pub workers: usize,
    /// Stations shared by all boards, in station order.
    pub shared_stations: Vec<String>,
    /// Stations private to each board.
    pub per_board_stations: Vec<String>,
    /// Processes homed on each board (weak scaling: one job per board,
    /// each an application process plus its protocol process).
    pub processes_per_board: usize,
    /// NIC cache entries per board.
    pub cache_entries: usize,
}

/// One (mechanism, nodes, migration variant) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCell {
    /// Translation mechanism on every board.
    pub mechanism: Mechanism,
    /// Board count.
    pub nodes: usize,
    /// Processes in this cell's workload (`2 * nodes`: weak scaling).
    pub processes: usize,
    /// Processes migrated mid-trace (0 = the plain sharding cell).
    pub migrated: usize,
    /// Cluster completion time (ns) — the slowest board.
    pub des_time_ns: u64,
    /// Mean per-request translation latency (µs).
    pub mean_latency_us: f64,
    /// Worst per-request translation latency (µs).
    pub max_latency_us: f64,
    /// Total queueing behind the shared host memory station (ns).
    pub host_mem_wait_ns: u64,
    /// Total queueing behind the shared I/O bus (ns).
    pub bus_wait_ns: u64,
    /// Total queueing behind shared interrupt service (ns).
    pub intr_wait_ns: u64,
    /// Queueing behind per-board firmware, summed over boards (ns).
    pub fw_wait_ns: u64,
    /// Slowest board's time over the mean board time.
    pub imbalance: f64,
    /// Pages invalidated (and demand-re-pinned) by the migrations.
    pub pages_invalidated: u64,
}

/// The node-scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterScaling {
    /// Workload name of the merged stream.
    pub workload: String,
    /// Topology provenance for the whole sweep.
    pub topology: ClusterTopology,
    /// Two cells (plain + migration) per mechanism per node count.
    pub cells: Vec<ClusterCell>,
    /// Full result of the UTLB run at [`CLUSTER_DETAIL_NODES`] boards (or
    /// the largest swept count below it), with per-board metrics and wait
    /// histograms.
    pub detail: ClusterResult,
}

/// The migration plan of a migration cell: the first
/// `min(MIGRATION_BATCH, nodes)` pids each hop one board to the right at
/// trace time `midpoint_ns`.
fn migration_plan(mut cluster: ClusterConfig, nodes: usize, midpoint_ns: u64) -> ClusterConfig {
    for pid in 1..=MIGRATION_BATCH.min(nodes) as u32 {
        // Round-robin homes pid p at board (p-1) % nodes; hop it one board
        // to the right so every move is a real cross-board migration.
        let home = (pid as usize - 1) % nodes;
        cluster = cluster.migrate(pid, midpoint_ns, (home + 1) % nodes);
    }
    cluster
}

/// Runs the node-scaling sweep over `nodes_axis` for all four mechanisms.
///
/// Weak scaling: each axis point builds its own workload with one job per
/// board, so every board homes exactly two processes (the job's app and
/// protocol process) at every node count. Cells fan out across the sweep
/// executor — biggest workloads dispatched first, results in axis order —
/// and the sweep's determinism contract (results independent of worker
/// count) is pinned by `tests/cluster.rs`.
pub fn cluster_scaling(
    cfg: &GenConfig,
    cache_entries: usize,
    nodes_axis: &[usize],
) -> ClusterScaling {
    assert!(!nodes_axis.is_empty(), "need at least one node count");

    let detail_nodes = nodes_axis
        .iter()
        .copied()
        .filter(|n| *n <= CLUSTER_DETAIL_NODES)
        .max()
        .unwrap_or(nodes_axis[0]);

    // One workload per axis point, shared read-only by its eight cells.
    // Weak scaling grows the aggregate pinned footprint linearly with the
    // board count; size the shared host frame pool to the workload (with
    // headroom for translation tables) so large axis points stress the
    // shared stations under study, not simulated host DRAM.
    let points: Vec<(usize, Trace, SimConfig)> = nodes_axis
        .iter()
        .map(|&nodes| {
            let trace = cluster_workload(cfg, nodes);
            let sim = SimConfig::study(cache_entries)
                .host_frames(DEFAULT_HOST_FRAMES.max(2 * trace.footprint_pages()));
            (nodes, trace, sim)
        })
        .collect();
    let workload = points
        .iter()
        .find(|(nodes, ..)| *nodes == detail_nodes)
        .map(|(_, trace, _)| trace.workload.clone())
        .expect("detail node count is on the axis");

    // Cell order is part of the archive format: nodes outer, mechanism,
    // then {plain, migrated} innermost — the sweep returns results in
    // exactly this input order whatever the dispatch schedule.
    let mut specs = Vec::new();
    for pix in 0..points.len() {
        for mech in Mechanism::ALL {
            for migrate in [false, true] {
                specs.push((pix, mech, migrate));
            }
        }
    }
    let results: Vec<(ClusterCell, Option<ClusterResult>)> = SweepGrid::over(&specs)
        .cost(|&(pix, ..)| points[pix].1.total_lookups())
        .checkpoint("cluster_scaling", |&(pix, mech, migrate)| {
            format!(
                "nodes={}|mech={mech}|migrate={migrate}|entries={cache_entries}|{}",
                points[pix].0,
                gen_key(cfg)
            )
        })
        .run(|&(pix, mech, migrate)| {
            let (nodes, ref trace, ref sim) = points[pix];
            let processes = trace.process_ids().len();
            let midpoint_ns = trace.records[trace.records.len() / 2].ts_ns;
            let mut cluster = ClusterConfig::new(nodes);
            if migrate {
                cluster = migration_plan(cluster, nodes, midpoint_ns);
            }
            let r = Run::new(mech)
                .config(sim)
                .cluster(cluster)
                .execute(trace)
                .into_cluster()
                .unwrap();
            let cell = ClusterCell {
                mechanism: mech,
                nodes,
                processes,
                migrated: r.migrations.len(),
                des_time_ns: r.des_time_ns,
                mean_latency_us: r.mean_latency_us(),
                max_latency_us: r.max_latency_us(),
                host_mem_wait_ns: r.host_mem_wait_ns,
                bus_wait_ns: r.bus_wait_ns,
                intr_wait_ns: r.intr_wait_ns,
                fw_wait_ns: r.boards.iter().map(|b| b.fw_wait_ns).sum(),
                imbalance: r.imbalance(),
                pages_invalidated: r.migrations.iter().map(|m| m.pages_invalidated).sum(),
            };
            let is_detail = mech == Mechanism::Utlb && !migrate && nodes == detail_nodes;
            (cell, is_detail.then_some(r))
        });
    let mut detail: Option<ClusterResult> = None;
    let mut cells = Vec::with_capacity(results.len());
    for (cell, d) in results {
        if let Some(d) = d {
            detail = Some(d);
        }
        cells.push(cell);
    }

    ClusterScaling {
        workload,
        topology: ClusterTopology {
            nodes_axis: nodes_axis.to_vec(),
            workers: worker_count(cells.len()),
            shared_stations: vec![
                "host_mem".to_string(),
                "io_bus".to_string(),
                "intr_service".to_string(),
            ],
            per_board_stations: vec!["nic_firmware".to_string(), "dma_engine".to_string()],
            processes_per_board: 2,
            cache_entries,
        },
        cells,
        detail: detail.expect("detail node count is on the axis"),
    }
}

impl fmt::Display for ClusterScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Cluster scaling (weak): {} processes/board, up to {} boards ({} entries/board)",
            self.topology.processes_per_board,
            self.topology.nodes_axis.iter().max().unwrap_or(&0),
            self.topology.cache_entries
        ));
        t.header([
            "mech",
            "nodes",
            "procs",
            "migrated",
            "des ms",
            "mean µs",
            "max µs",
            "host-mem wait µs",
            "bus wait µs",
            "imbalance",
        ]);
        for c in &self.cells {
            t.row([
                c.mechanism.to_string(),
                c.nodes.to_string(),
                c.processes.to_string(),
                c.migrated.to_string(),
                format!("{:.2}", c.des_time_ns as f64 / 1e6),
                micros(c.mean_latency_us),
                micros(c.max_latency_us),
                micros(c.host_mem_wait_ns as f64 / 1000.0),
                micros(c.bus_wait_ns as f64 / 1000.0),
                format!("{:.2}", c.imbalance),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn workload_has_dense_pids_cycling_the_apps() {
        let t = cluster_workload(&test_gen_config(), 9);
        let pids = t.process_ids();
        // Each job is one app process plus its protocol process.
        assert_eq!(pids.len(), 18);
        assert_eq!(pids[0].raw(), 1);
        assert_eq!(pids[17].raw(), 18);
        // Nine single-app jobs: seven distinct apps + two repeats.
        assert_eq!(t.workload.matches('+').count(), 8);
    }

    #[test]
    fn scaling_covers_the_axis_and_migrations_invalidate() {
        let s = cluster_scaling(&test_gen_config(), 512, &[2, 4]);
        // 2 node counts × 4 mechanisms × {plain, migrated}.
        assert_eq!(s.cells.len(), 16);
        // Weak scaling: one job (app + protocol process) per board.
        assert_eq!(s.topology.processes_per_board, 2);
        assert_eq!(s.topology.shared_stations[0], "host_mem");
        for c in &s.cells {
            assert_eq!(c.processes, 2 * c.nodes);
            assert!(c.des_time_ns > 0);
            if c.migrated > 0 {
                assert_eq!(c.migrated, c.nodes.min(super::MIGRATION_BATCH));
                assert!(
                    c.pages_invalidated > 0,
                    "{} @{}: migrations must invalidate pinned pages",
                    c.mechanism,
                    c.nodes
                );
            }
        }
        // The detail point is the largest swept count ≤ 8 boards.
        assert_eq!(s.detail.nodes, 4);
        assert!(!s.detail.boards.is_empty());
        assert!(s.to_string().contains("imbalance"));
    }

    #[test]
    fn migration_cells_never_lose_lookups() {
        let s = cluster_scaling(&test_gen_config(), 512, &[3]);
        let trace = cluster_workload(&test_gen_config(), 3);
        let total = trace.total_lookups();
        // Every cell — migrated or not — accounts for every lookup; the
        // check rides on des_time comparability, so recompute from detail.
        assert_eq!(s.detail.aggregate_stats().lookups, total);
    }
}
