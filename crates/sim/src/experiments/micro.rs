//! Tables 1 and 2: host-side and NIC-side operation costs.
//!
//! On the paper's testbed these were measured with the Pentium cycle counter
//! and the LANai real-time clock. Our substitute hardware *is* the cost
//! model, so these tables print the calibrated model — and Table 2
//! additionally cross-checks the model against the simulated DMA engine's
//! bus timing, proving the two layers agree.

use crate::report::{micros, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_core::CostModel;
use utlb_mem::{PhysAddr, PhysicalMemory};
use utlb_nic::{DmaEngine, SimClock};

/// Page counts used by the paper's microbenchmarks.
pub const PAGE_COUNTS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// One row of Table 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table1Row {
    /// Pages in the operation.
    pub pages: u64,
    /// Bitmap check, best case (µs).
    pub check_min_us: f64,
    /// Bitmap check, worst case (µs).
    pub check_max_us: f64,
    /// Pin `ioctl` (µs).
    pub pin_us: f64,
    /// Unpin `ioctl` (µs).
    pub unpin_us: f64,
}

/// Table 1: UTLB overhead on the host processor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows for 1–32 pages.
    pub rows: Vec<Table1Row>,
}

/// Regenerates Table 1.
pub fn table1() -> Table1 {
    let m = CostModel::default();
    let rows = PAGE_COUNTS
        .iter()
        .map(|&pages| Table1Row {
            pages,
            check_min_us: m.check_cost_min(pages),
            check_max_us: m.check_cost_max(pages),
            pin_us: m.pin_cost(pages),
            unpin_us: m.unpin_cost(pages),
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 1: UTLB overhead on the host processor (µs)");
        t.header(["num pages", "check min", "check max", "pin", "unpin"]);
        for r in &self.rows {
            t.row([
                r.pages.to_string(),
                micros(r.check_min_us),
                micros(r.check_max_us),
                micros(r.pin_us),
                micros(r.unpin_us),
            ]);
        }
        t.fmt(f)
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table2Row {
    /// Translation entries fetched in one miss.
    pub entries: u64,
    /// DMA cost from the cost model (µs).
    pub dma_us: f64,
    /// Total miss-handling cost (µs).
    pub miss_us: f64,
    /// DMA cost measured on the simulated bus (µs) — cross-check.
    pub simulated_dma_us: f64,
}

/// Table 2: UTLB overhead on the network interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Constant cache-hit lookup cost (µs).
    pub hit_us: f64,
    /// Rows for 1–32 entries.
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table 2, cross-checking the cost model against the DMA
/// engine's bus timing.
pub fn table2() -> Table2 {
    let m = CostModel::default();
    let host = PhysicalMemory::new(16);
    let rows = PAGE_COUNTS
        .iter()
        .map(|&entries| {
            let mut clock = SimClock::new();
            let mut dma = DmaEngine::default();
            dma.fetch_words(&mut clock, &host, PhysAddr::new(0), entries)
                .expect("scratch fetch succeeds");
            Table2Row {
                entries,
                dma_us: m.dma_cost(entries),
                miss_us: m.miss_cost(entries),
                simulated_dma_us: clock.now().as_micros(),
            }
        })
        .collect();
    Table2 {
        hit_us: m.ni_check_us,
        rows,
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Table 2: UTLB overhead on the network interface (hit cost {} µs)",
            micros(self.hit_us)
        ));
        t.header(["num entries", "DMA cost", "total miss cost", "sim DMA"]);
        for r in &self.rows {
            t.row([
                r.entries.to_string(),
                micros(r.dma_us),
                micros(r.miss_us),
                micros(r.simulated_dma_us),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_calibration_points() {
        let t = table1();
        assert_eq!(t.rows.len(), 6);
        let one = &t.rows[0];
        assert_eq!(one.pin_us, 27.0);
        assert_eq!(one.unpin_us, 25.0);
        let thirty_two = &t.rows[5];
        assert_eq!(thirty_two.pin_us, 115.0);
        assert_eq!(thirty_two.unpin_us, 139.0);
        assert!(!t.to_string().is_empty());
    }

    #[test]
    fn table2_model_and_simulated_bus_agree() {
        let t = table2();
        assert_eq!(t.hit_us, 0.8);
        for r in &t.rows {
            assert!(
                (r.dma_us - r.simulated_dma_us).abs() < 0.25,
                "entries {}: model {} vs bus {}",
                r.entries,
                r.dma_us,
                r.simulated_dma_us
            );
            assert!(r.miss_us > r.dma_us);
        }
        assert!(t.to_string().contains("Table 2"));
    }

    #[test]
    fn miss_cost_grows_slower_than_entries() {
        let t = table2();
        let first = t.rows[0].miss_us;
        let last = t.rows[5].miss_us;
        assert!(last < 2.0 * first, "setup-dominated: {first} → {last}");
    }
}
