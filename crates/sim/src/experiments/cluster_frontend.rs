//! Extension: the clustered request plane — million-connection churn over
//! boards × homing policy × mechanism.
//!
//! `frontend_load` measures one board serving live peers;
//! `cluster_scaling` shards recorded traces over N boards. This driver
//! composes the two: live connection churn homed over an N-board cluster
//! (`Run::frontend(..).cluster(..)`), where a board whose registration
//! SRAM is exhausted answers the handshake with `Frame::Redirect` and the
//! client re-runs it on the next candidate.
//!
//! Two stories come out of the grid:
//!
//! * **Capacity.** Mechanisms with board-lifetime SRAM registration state
//!   (§3.1 per-process tables at 512 slots per board under the 256-entry
//!   config, §3.3's hierarchical directory at 64) refuse one board's worth
//!   of the axis *per board* — redirect re-homing makes aggregate capacity
//!   scale linearly in boards where a single board is a hard cliff. The
//!   host-backed mechanisms (§3.2 indexed, interrupt baseline) accept all
//!   10⁶ connections at every node count.
//! * **Tails.** Every board prices handshakes and demand pins on the
//!   *shared* host-memory / I/O-bus / interrupt-service stations, so
//!   p50/p99/p999 spread as boards are added and the homing policy decides
//!   how much admission skew turns into queueing skew.
//!
//! Cells fan out across the sweep pool; each cell is an independent
//! deterministic simulation, so the JSON archive is byte-identical at any
//! worker count (`scripts/ci.sh` pins this).

use crate::frontend::cluster::ClusterFrontendResult;
use crate::frontend::FrontendConfig;
use crate::report::{micros, TextTable};
use crate::SweepGrid;
use crate::{ClusterConfig, HomingPolicy, Live, Mechanism, Run, RunOutputExt, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The board axis of the full experiment.
pub const CLUSTER_FRONTEND_NODES: [usize; 3] = [2, 4, 8];

/// Connections churned through every cell of the full experiment.
pub const CLUSTER_FRONTEND_CONNS: usize = 1_000_000;

/// Node count whose full UTLB [`ClusterFrontendResult`] (per-board cells,
/// latency histogram, shared-station reports) is archived as the detail.
pub const CLUSTER_FRONTEND_DETAIL_NODES: usize = 8;

/// Per-process translation-table entries every cell runs with — small
/// enough that the §3.1 SRAM cliff (512 processes per board) lands inside
/// a million-connection axis.
const CLUSTER_FRONTEND_TABLE_ENTRIES: usize = 256;

/// The front-end shape shared by every cell, archived in the JSON header.
/// Host-dependent quantities (worker counts, wall time) are deliberately
/// excluded: the archive must be byte-identical on any machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterFrontendAxes {
    /// The board counts swept.
    pub nodes_axis: Vec<usize>,
    /// The homing policies swept.
    pub homing_axis: Vec<HomingPolicy>,
    /// Connections attempted per cell.
    pub connections: usize,
    /// Connections open simultaneously in every cell.
    pub open_window: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Per-connection credit window.
    pub credit_window: usize,
    /// Per-connection stall-queue depth.
    pub queue_depth: usize,
    /// Mean think time between a connection's requests (ns).
    pub think_ns: u64,
    /// Payload drain time charged per served request (ns).
    pub drain_ns: u64,
    /// NIC cache entries.
    pub cache_entries: usize,
    /// Per-process translation-table entries.
    pub table_entries: usize,
}

/// One (mechanism, nodes, homing policy) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterFrontendCell {
    /// Serving mechanism.
    pub mechanism: Mechanism,
    /// Boards in the cluster.
    pub nodes: usize,
    /// Homing policy connections were placed by.
    pub homing: HomingPolicy,
    /// Connections some board accepted.
    pub accepted: u64,
    /// Connections every candidate board refused.
    pub refused: u64,
    /// Accepted connections that landed off their first-choice board.
    pub redirected: u64,
    /// Total `Frame::Redirect` hops, accepted and refused attempts alike.
    pub redirects: u64,
    /// Requests admitted and translated.
    pub served: u64,
    /// Served requests per second of simulated time.
    pub throughput_rps: f64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// 99th-percentile request latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile request latency (µs).
    pub p999_us: f64,
    /// Busiest board's served share over the per-board mean (1.0 = even).
    pub imbalance: f64,
    /// Queueing behind the shared host memory station (ns).
    pub host_mem_wait_ns: u64,
    /// Queueing behind the shared I/O bus (ns).
    pub bus_wait_ns: u64,
    /// Queueing behind shared interrupt service (ns).
    pub intr_wait_ns: u64,
    /// Slowest board's serial span (ns).
    pub sim_time_ns: u64,
}

/// The clustered request-plane sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterFrontendScaling {
    /// Front-end shape shared by all cells.
    pub axes: ClusterFrontendAxes,
    /// One cell per (nodes, homing, mechanism), axis-major.
    pub cells: Vec<ClusterFrontendCell>,
    /// Full result of the UTLB mechanism at
    /// [`CLUSTER_FRONTEND_DETAIL_NODES`] boards (or the largest swept
    /// count below it) under `hash-by-client` homing, with per-board
    /// cells, the merged latency histogram, and shared-station reports.
    pub detail: ClusterFrontendResult,
}

/// The per-cell front-end config: heavy load (think time well under the
/// drain time) so the credit window and the shared stations both matter.
fn cell_config(connections: usize) -> FrontendConfig {
    FrontendConfig {
        connections,
        open_window: 512.min(connections),
        requests_per_conn: 4,
        credit_window: 4,
        queue_depth: 8,
        think_ns: 500,
        drain_ns: 4_000,
        payload_bytes: 4096,
        buffer_pages: 64,
        seed: 0xF00D,
    }
}

/// Runs the churn grid: `nodes_axis` × both homing policies × all four
/// mechanisms, `connections` connections per cell.
pub fn cluster_frontend(
    cache_entries: usize,
    connections: usize,
    nodes_axis: &[usize],
) -> ClusterFrontendScaling {
    assert!(!nodes_axis.is_empty(), "need at least one node count");
    let sim = SimConfig {
        table_entries: CLUSTER_FRONTEND_TABLE_ENTRIES,
        ..SimConfig::study(cache_entries)
    };

    let mut grid = Vec::new();
    for &nodes in nodes_axis {
        for policy in HomingPolicy::ALL {
            for mech in Mechanism::ALL {
                grid.push((nodes, policy, mech));
            }
        }
    }
    let results = SweepGrid::over(&grid)
        // Fixed connection count per cell: more boards means more per-board
        // replay machinery, so board count is the cost proxy for LPT.
        .cost(|&(nodes, ..)| (connections * nodes) as u64)
        .checkpoint("cluster_frontend", |&(nodes, policy, mech)| {
            format!(
                "nodes={nodes}|policy={policy}|mech={mech}|conns={connections}|entries={cache_entries}"
            )
        })
        .run(|&(nodes, policy, mech)| {
            Run::new(mech)
                .config(&sim)
                .frontend(cell_config(connections))
                .cluster(ClusterConfig::new(nodes).homing(policy))
                .execute(Live)
                .into_cluster_frontend()
                .unwrap()
        });

    let detail_nodes = nodes_axis
        .iter()
        .copied()
        .filter(|n| *n <= CLUSTER_FRONTEND_DETAIL_NODES)
        .max()
        .unwrap_or(nodes_axis[0]);
    let mut detail = None;
    let mut cells = Vec::with_capacity(grid.len());
    for (&(nodes, policy, mech), r) in grid.iter().zip(results) {
        cells.push(ClusterFrontendCell {
            mechanism: mech,
            nodes,
            homing: policy,
            accepted: r.accepted,
            refused: r.refused,
            redirected: r.redirected,
            redirects: r.redirects,
            served: r.served,
            throughput_rps: r.throughput_rps(),
            p50_us: r.p50_us(),
            p99_us: r.p99_us(),
            p999_us: r.p999_us(),
            imbalance: r.imbalance(),
            host_mem_wait_ns: r.host_mem_wait_ns,
            bus_wait_ns: r.bus_wait_ns,
            intr_wait_ns: r.intr_wait_ns,
            sim_time_ns: r.sim_time_ns,
        });
        if mech == Mechanism::Utlb && policy == HomingPolicy::HashByClient && nodes == detail_nodes
        {
            detail = Some(r);
        }
    }

    ClusterFrontendScaling {
        axes: ClusterFrontendAxes {
            nodes_axis: nodes_axis.to_vec(),
            homing_axis: HomingPolicy::ALL.to_vec(),
            connections,
            open_window: 512.min(connections),
            requests_per_conn: 4,
            credit_window: 4,
            queue_depth: 8,
            think_ns: 500,
            drain_ns: 4_000,
            cache_entries,
            table_entries: CLUSTER_FRONTEND_TABLE_ENTRIES,
        },
        cells,
        detail: detail.expect("detail node count is on the axis"),
    }
}

impl fmt::Display for ClusterFrontendScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Clustered request plane: {} connections over {} boards ({} cache entries, {} table entries)",
            self.axes.connections,
            self.axes
                .nodes_axis
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            self.axes.cache_entries,
            self.axes.table_entries,
        ));
        t.header([
            "mech", "boards", "homing", "accepted", "refused", "redir", "served", "req/s",
            "p50 µs", "p99 µs", "p999 µs", "imbal",
        ]);
        for c in &self.cells {
            t.row([
                c.mechanism.to_string(),
                c.nodes.to_string(),
                c.homing.to_string(),
                c.accepted.to_string(),
                c.refused.to_string(),
                c.redirected.to_string(),
                c.served.to_string(),
                format!("{:.0}", c.throughput_rps),
                micros(c.p50_us),
                micros(c.p99_us),
                micros(c.p999_us),
                format!("{:.2}", c.imbalance),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_both_policies_and_scales_capacity_with_boards() {
        let s = cluster_frontend(256, 2_000, &[2, 4]);
        // 2 node counts × 2 policies × 4 mechanisms.
        assert_eq!(s.cells.len(), 16);
        for c in &s.cells {
            assert_eq!(c.accepted + c.refused, 2_000);
            match c.mechanism {
                // §3.3: 64 lifetime slots per board, filled exactly.
                Mechanism::Utlb => {
                    assert_eq!(c.accepted, 64 * c.nodes as u64, "{c:?}");
                    // Hash homing keeps sending connections to a full home
                    // board, so some must re-home; least-loaded fills all
                    // directories in lockstep and never lands off-choice.
                    if c.homing == HomingPolicy::HashByClient {
                        assert!(c.redirected > 0, "off-home fills need redirects");
                    }
                }
                // §3.1 at 256-entry tables: 512 slots per board — the
                // 2-board cluster refuses half the axis, 4 boards accept
                // everything.
                Mechanism::PerProc => {
                    assert_eq!(c.accepted, (512 * c.nodes as u64).min(2_000), "{c:?}");
                }
                // Host-backed state: every connection fits.
                Mechanism::Indexed | Mechanism::Intr => {
                    assert_eq!(c.refused, 0, "{c:?}");
                }
            }
            if c.served > 0 {
                assert!(c.throughput_rps > 0.0);
                assert!(c.p999_us >= c.p50_us);
                assert!(c.imbalance >= 1.0);
            }
        }
        // The detail is the largest UTLB hash-by-client point.
        assert_eq!(s.detail.nodes, 4);
        assert_eq!(s.detail.homing, HomingPolicy::HashByClient);
        assert_eq!(s.detail.boards.len(), 4);
    }
}
