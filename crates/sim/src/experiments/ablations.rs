//! Extension experiments the paper names but could not run.
//!
//! * **Replacement-policy sweep** — §3.4 predefines LRU/MRU/LFU/MFU/RANDOM,
//!   but "we only used LRU policy in this study; we have not explored other
//!   choices" (§7). We run all five under memory pressure.
//! * **Per-process UTLB vs Shared UTLB-Cache** — "we have not compared the
//!   per-process UTLB with Shared UTLB-Cache approach because we lack
//!   multiple program traces" (§7). Our generators produce the
//!   multiprogrammed traces, so we run it.

use crate::report::{micros, rate, TextTable};
use crate::{run_utlb, sweep_over, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_core::Associativity;
use utlb_core::{
    IndexedConfig, IndexedEngine, PerProcessConfig, PerProcessEngine, Policy, TranslationStats,
};
use utlb_mem::{Host, ProcessId, VirtPage};
use utlb_nic::Board;
use utlb_trace::{gen, GenConfig, SplashApp, Trace};

/// Spawns one process per trace pid on a fresh host/board, runs `register`
/// for each, then replays every record's page span through `lookup`.
///
/// All the ablation harnesses (`run_perproc`, `run_indexed`) need exactly
/// this registration + footprint walk; only the engine calls differ, so the
/// engine is threaded through explicitly rather than captured.
fn replay_trace<E>(
    trace: &Trace,
    engine: &mut E,
    register: impl Fn(&mut E, &mut Host, &mut Board, ProcessId),
    lookup: impl Fn(&mut E, &mut Host, &mut Board, ProcessId, VirtPage),
) -> Vec<ProcessId> {
    let pids = trace.process_ids();
    let mut host = Host::new(1 << 20);
    let mut board = Board::new();
    for expected in &pids {
        let got = host.spawn_process();
        assert_eq!(got, *expected, "trace pids must be dense from 1");
        register(engine, &mut host, &mut board, got);
    }
    for rec in &trace.records {
        let npages = rec.va.span_pages(rec.nbytes);
        for page in rec.va.page().range(npages) {
            lookup(engine, &mut host, &mut board, rec.pid, page);
        }
    }
    pids
}

/// One policy's outcome under memory pressure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCell {
    /// The replacement policy.
    pub policy: Policy,
    /// Pages pinned per lookup.
    pub pin_rate: f64,
    /// Pages unpinned per lookup.
    pub unpin_rate: f64,
    /// Check misses per lookup (re-pins show up here).
    pub check_miss_rate: f64,
    /// Average UTLB lookup cost (µs).
    pub lookup_us: f64,
}

/// The replacement-policy sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySweep {
    /// Application swept.
    pub app: SplashApp,
    /// Memory limit in pages.
    pub mem_limit_pages: u64,
    /// One cell per policy.
    pub cells: Vec<PolicyCell>,
}

/// Runs all five policies on `app` with a limit at 40% of the footprint.
pub fn policy_sweep(app: SplashApp, cfg: &GenConfig) -> PolicySweep {
    let trace = gen::generate_shared(app, cfg);
    let per_process_fp = trace.footprint_pages() / 5;
    let mem_limit_pages = (per_process_fp * 2 / 5).max(4);
    let cells = sweep_over(&Policy::ALL, |&policy| {
        let sim = SimConfig {
            policy,
            mem_limit_pages: Some(mem_limit_pages),
            ..SimConfig::study(8192)
        };
        let r = run_utlb(&trace, &sim);
        PolicyCell {
            policy,
            pin_rate: r.stats.pin_rate(),
            unpin_rate: r.stats.unpin_rate(),
            check_miss_rate: r.stats.check_miss_rate(),
            lookup_us: r.utlb_lookup_cost(&sim),
        }
    });
    PolicySweep {
        app,
        mem_limit_pages,
        cells,
    }
}

impl fmt::Display for PolicySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Replacement-policy sweep: {} ({} pinned pages/process)",
            self.app, self.mem_limit_pages
        ));
        t.header([
            "policy",
            "pin rate",
            "unpin rate",
            "check miss",
            "lookup µs",
        ]);
        for c in &self.cells {
            t.row([
                c.policy.to_string(),
                format!("{:.3}", c.pin_rate),
                format!("{:.3}", c.unpin_rate),
                format!("{:.3}", c.check_miss_rate),
                micros(c.lookup_us),
            ]);
        }
        t.fmt(f)
    }
}

/// Per-process UTLB vs Shared UTLB-Cache under an equal SRAM budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerprocVsShared {
    /// Application compared.
    pub app: SplashApp,
    /// SRAM entries total (split across processes for per-process tables).
    pub sram_entries: usize,
    /// Per-process variant counters.
    pub perproc: TranslationStats,
    /// Shared-cache variant counters.
    pub shared: TranslationStats,
}

/// Runs both UTLB variants on `app` with the same total SRAM entry budget.
pub fn perproc_vs_shared(app: SplashApp, cfg: &GenConfig, sram_entries: usize) -> PerprocVsShared {
    let trace = gen::generate_shared(app, cfg);

    // Shared UTLB-Cache (Hierarchical engine): the full budget is one cache.
    let shared = run_utlb(&trace, &SimConfig::study(sram_entries)).stats;

    // Per-process UTLB: the budget is statically divided per process.
    let perproc = run_perproc(&trace, sram_entries);

    PerprocVsShared {
        app,
        sram_entries,
        perproc,
        shared,
    }
}

fn run_perproc(trace: &Trace, sram_entries: usize) -> TranslationStats {
    let per_table = (sram_entries / trace.process_ids().len()).max(1);
    let mut engine = PerProcessEngine::new(PerProcessConfig {
        table_entries: per_table,
        ..PerProcessConfig::default()
    });
    let pids = replay_trace(
        trace,
        &mut engine,
        |e, host, board, pid| {
            e.register_process(host, board, pid)
                .expect("registration succeeds");
        },
        |e, host, board, pid, page| {
            e.lookup(host, board, pid, page)
                .expect("trace lookups succeed");
        },
    );
    pids.iter()
        .map(|p| engine.stats(*p).expect("registered"))
        .fold(TranslationStats::default(), |a, b| a + b)
}

impl fmt::Display for PerprocVsShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Per-process UTLB vs Shared UTLB-Cache: {} ({} SRAM entries total)",
            self.app, self.sram_entries
        ));
        t.header([
            "variant",
            "check miss",
            "NI miss",
            "pins/lookup",
            "unpins/lookup",
        ]);
        for (name, s) in [
            ("per-process", &self.perproc),
            ("shared-cache", &self.shared),
        ] {
            t.row([
                name.to_string(),
                format!("{:.3}", s.check_miss_rate()),
                format!("{:.3}", s.ni_miss_rate()),
                format!("{:.3}", s.pin_rate()),
                format!("{:.3}", s.unpin_rate()),
            ]);
        }
        t.fmt(f)
    }
}

/// All three UTLB variants (§3.1 per-process, §3.2 index-keyed shared
/// cache, §3.3 hierarchical) on one trace under an equal NIC budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantComparison {
    /// Application compared.
    pub app: SplashApp,
    /// NIC entry budget (cache entries for §3.2/§3.3; divided into static
    /// tables for §3.1).
    pub budget_entries: usize,
    /// §3.1 counters.
    pub perproc: TranslationStats,
    /// §3.2 counters.
    pub indexed: TranslationStats,
    /// §3.3 counters.
    pub hierarchical: TranslationStats,
    /// §3.2 table fragmentation at end of run (0 = fully contiguous).
    pub indexed_fragmentation: f64,
}

/// Runs the three variants of §3 on `app` with the same NIC entry budget.
pub fn variant_comparison(
    app: SplashApp,
    cfg: &GenConfig,
    budget_entries: usize,
) -> VariantComparison {
    let trace = gen::generate_shared(app, cfg);
    let hierarchical = run_utlb(&trace, &SimConfig::study(budget_entries)).stats;
    let perproc = run_perproc(&trace, budget_entries);
    let (indexed, indexed_fragmentation) = run_indexed(&trace, budget_entries);
    VariantComparison {
        app,
        budget_entries,
        perproc,
        indexed,
        hierarchical,
        indexed_fragmentation,
    }
}

fn run_indexed(trace: &Trace, cache_entries: usize) -> (TranslationStats, f64) {
    let mut engine = IndexedEngine::new(IndexedConfig {
        cache: utlb_core::CacheConfig::direct(cache_entries),
        table_entries: 16384,
        ..IndexedConfig::default()
    });
    let pids = replay_trace(
        trace,
        &mut engine,
        |e, host, _board, pid| {
            e.register_process(host, pid)
                .expect("registration succeeds");
        },
        |e, host, board, pid, page| {
            e.lookup(host, board, pid, page)
                .expect("trace lookups succeed");
        },
    );
    let stats = pids
        .iter()
        .map(|p| engine.stats(*p).expect("registered"))
        .fold(TranslationStats::default(), |a, b| a + b);
    let frag = pids
        .iter()
        .map(|p| engine.fragmentation(*p).expect("registered"))
        .sum::<f64>()
        / pids.len() as f64;
    (stats, frag)
}

impl fmt::Display for VariantComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "UTLB variants (§3.1 / §3.2 / §3.3): {} at {} NIC entries (§3.2 fragmentation {:.2})",
            self.app, self.budget_entries, self.indexed_fragmentation
        ));
        t.header([
            "variant",
            "check miss",
            "NI miss",
            "pins/lookup",
            "unpins/lookup",
        ]);
        for (name, s) in [
            ("per-process (3.1)", &self.perproc),
            ("indexed (3.2)", &self.indexed),
            ("hierarchical (3.3)", &self.hierarchical),
        ] {
            t.row([
                name.to_string(),
                format!("{:.3}", s.check_miss_rate()),
                format!("{:.3}", s.ni_miss_rate()),
                format!("{:.3}", s.pin_rate()),
                format!("{:.3}", s.unpin_rate()),
            ]);
        }
        t.fmt(f)
    }
}

/// §6.3's cost argument, quantified: per-associativity miss rate *and*
/// average lookup cost including the firmware's serial tag checks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocCost {
    /// Application measured.
    pub app: SplashApp,
    /// Cache entries.
    pub cache_entries: usize,
    /// `(associativity, miss rate, lookup µs with serial probes)` rows.
    pub rows: Vec<(Associativity, f64, f64)>,
}

/// Measures miss rate and probe-aware lookup cost for each associativity.
///
/// The paper: set-associativity buys little miss rate (with offsetting) but
/// every extra way costs a serial tag check in firmware, so "the
/// set-associative caches lose to the direct-map cache" on actual cost.
pub fn assoc_cost(app: SplashApp, cfg: &GenConfig, cache_entries: usize) -> AssocCost {
    let trace = gen::generate_shared(app, cfg);
    let rows = sweep_over(&Associativity::ALL, |&assoc| {
        let sim = SimConfig {
            associativity: assoc,
            ..SimConfig::study(cache_entries)
        };
        let r = run_utlb(&trace, &sim);
        (
            assoc,
            r.stats.ni_miss_rate(),
            r.utlb_lookup_cost_serial(&sim),
        )
    });
    AssocCost {
        app,
        cache_entries,
        rows,
    }
}

impl fmt::Display for AssocCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Associativity cost (§6.3): {} at {} entries",
            self.app, self.cache_entries
        ));
        t.header(["assoc", "miss rate", "lookup µs (serial probes)"]);
        for (assoc, miss, cost) in &self.rows {
            t.row([assoc.to_string(), rate(*miss), micros(*cost)]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn lru_beats_mru_on_looping_water() {
        // Water sweeps cyclically; for a cyclic scan LRU is actually the
        // pathological policy and MRU the optimal one — the classic result
        // the application-controlled design exists to exploit.
        let s = policy_sweep(SplashApp::Water, &test_gen_config());
        let get = |p: Policy| s.cells.iter().find(|c| c.policy == p).unwrap();
        let lru = get(Policy::Lru);
        let mru = get(Policy::Mru);
        assert!(
            mru.unpin_rate < lru.unpin_rate,
            "MRU {} should beat LRU {} on cyclic sweeps",
            mru.unpin_rate,
            lru.unpin_rate
        );
        assert_eq!(s.cells.len(), 5);
        assert!(s.to_string().contains("RANDOM"));
    }

    #[test]
    fn three_variants_rank_as_designed() {
        // With a budget far below the footprint, §3.1 must churn (static
        // SRAM tables), while §3.2 and §3.3 keep translations alive in host
        // memory (large tables) and never unpin.
        let v = variant_comparison(SplashApp::Lu, &test_gen_config(), 128);
        assert!(v.perproc.unpins > 0, "static tables overflow");
        assert_eq!(v.indexed.unpins, 0, "host tables are big enough");
        assert_eq!(v.hierarchical.unpins, 0);
        // §3.1 never misses on the NIC; the cached variants may.
        assert_eq!(v.perproc.ni_misses, 0);
        assert!(v.indexed.ni_misses > 0);
        // §3.2 and §3.3 agree on check misses (same pinning discipline).
        assert_eq!(v.indexed.check_misses, v.hierarchical.check_misses);
        assert!(v.to_string().contains("hierarchical"));
    }

    #[test]
    fn direct_mapped_wins_on_actual_cost() {
        // §6.3: "the set-associative caches lose to the direct-map cache"
        // once the serial per-way tag checks are charged.
        let r = assoc_cost(SplashApp::Water, &test_gen_config(), 2048);
        let cost_of = |a: Associativity| r.rows.iter().find(|(x, _, _)| *x == a).unwrap().2;
        let direct = cost_of(Associativity::Direct);
        let four = cost_of(Associativity::FourWay);
        assert!(
            direct < four,
            "direct {direct} must beat 4-way {four} on probe-aware cost"
        );
        assert!(r.to_string().contains("serial probes"));
    }

    #[test]
    fn perproc_suffers_capacity_unpins_where_shared_does_not() {
        // With an SRAM budget well below the footprint, the static
        // per-process tables must evict (unpin); the shared-cache variant
        // keeps translations alive in host memory and never unpins.
        let cfg = test_gen_config();
        let r = perproc_vs_shared(SplashApp::Lu, &cfg, 128);
        assert_eq!(r.shared.unpins, 0);
        assert!(
            r.perproc.unpins > 0,
            "static tables must overflow: {:?}",
            r.perproc
        );
        assert!(r.perproc.check_miss_rate() >= r.shared.check_miss_rate());
        assert!(r.to_string().contains("per-process"));
    }
}
