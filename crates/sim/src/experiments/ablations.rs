//! Extension experiments the paper names but could not run.
//!
//! * **Replacement-policy sweep** — §3.4 predefines LRU/MRU/LFU/MFU/RANDOM,
//!   but "we only used LRU policy in this study; we have not explored other
//!   choices" (§7). We run all five under memory pressure.
//! * **Per-process UTLB vs Shared UTLB-Cache** — "we have not compared the
//!   per-process UTLB with Shared UTLB-Cache approach because we lack
//!   multiple program traces" (§7). Our generators produce the
//!   multiprogrammed traces, so we run it.

use crate::report::{micros, rate, TextTable};
use crate::RunOutputExt;
use crate::{sweep_over_with, Mechanism, Run, SimConfig, SimResult, SweepScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_core::{Associativity, IndexedEngine, Policy, TranslationStats};
use utlb_trace::{gen, GenConfig, SplashApp};

/// One variant's outcome in a comparison table: the counters plus the
/// serial-clock timing the unified runner reports for every mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantCell {
    /// Aggregate translation counters.
    pub stats: TranslationStats,
    /// Total simulated translation time (ns).
    pub sim_time_ns: u64,
    /// Simulated translation time per lookup (µs).
    pub sim_us_per_lookup: f64,
}

impl From<SimResult> for VariantCell {
    fn from(r: SimResult) -> Self {
        VariantCell {
            sim_us_per_lookup: r.sim_us_per_lookup(),
            sim_time_ns: r.sim_time_ns,
            stats: r.stats,
        }
    }
}

/// The §3.1 engine's SRAM budget, statically divided across the trace's
/// processes: `SimConfig` for a per-process run under a total entry budget.
fn perproc_split(budget_entries: usize, nprocs: usize) -> usize {
    (budget_entries / nprocs.max(1)).max(1)
}

/// One policy's outcome under memory pressure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCell {
    /// The replacement policy.
    pub policy: Policy,
    /// Pages pinned per lookup.
    pub pin_rate: f64,
    /// Pages unpinned per lookup.
    pub unpin_rate: f64,
    /// Check misses per lookup (re-pins show up here).
    pub check_miss_rate: f64,
    /// Average UTLB lookup cost (µs).
    pub lookup_us: f64,
}

/// The replacement-policy sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySweep {
    /// Application swept.
    pub app: SplashApp,
    /// Memory limit in pages.
    pub mem_limit_pages: u64,
    /// One cell per policy.
    pub cells: Vec<PolicyCell>,
}

/// Runs all five policies on `app` with a limit at 40% of the footprint.
pub fn policy_sweep(app: SplashApp, cfg: &GenConfig) -> PolicySweep {
    let trace = gen::generate_shared(app, cfg);
    let per_process_fp = trace.footprint_pages() / 5;
    let mem_limit_pages = (per_process_fp * 2 / 5).max(4);
    let cells = sweep_over_with(&Policy::ALL, SweepScratch::new, |&policy, scratch| {
        let sim = SimConfig {
            policy,
            mem_limit_pages: Some(mem_limit_pages),
            ..SimConfig::study(8192)
        };
        let r = Run::new(Mechanism::Utlb)
            .config(&sim)
            .execute_in(scratch, &trace)
            .into_sim()
            .unwrap();
        PolicyCell {
            policy,
            pin_rate: r.stats.pin_rate(),
            unpin_rate: r.stats.unpin_rate(),
            check_miss_rate: r.stats.check_miss_rate(),
            lookup_us: r.utlb_lookup_cost(&sim),
        }
    });
    PolicySweep {
        app,
        mem_limit_pages,
        cells,
    }
}

impl fmt::Display for PolicySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Replacement-policy sweep: {} ({} pinned pages/process)",
            self.app, self.mem_limit_pages
        ));
        t.header([
            "policy",
            "pin rate",
            "unpin rate",
            "check miss",
            "lookup µs",
        ]);
        for c in &self.cells {
            t.row([
                c.policy.to_string(),
                format!("{:.3}", c.pin_rate),
                format!("{:.3}", c.unpin_rate),
                format!("{:.3}", c.check_miss_rate),
                micros(c.lookup_us),
            ]);
        }
        t.fmt(f)
    }
}

/// Per-process UTLB vs Shared UTLB-Cache under an equal SRAM budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerprocVsShared {
    /// Application compared.
    pub app: SplashApp,
    /// SRAM entries total (split across processes for per-process tables).
    pub sram_entries: usize,
    /// Per-process variant (§3.1).
    pub perproc: VariantCell,
    /// Shared-cache variant (§3.3).
    pub shared: VariantCell,
}

/// Runs both UTLB variants on `app` with the same total SRAM entry budget.
///
/// Both runs go through the unified [`Run`] builder, so the timing columns
/// come from the same simulated clock as every other experiment.
pub fn perproc_vs_shared(app: SplashApp, cfg: &GenConfig, sram_entries: usize) -> PerprocVsShared {
    let trace = gen::generate_shared(app, cfg);

    // Shared UTLB-Cache (Hierarchical engine): the full budget is one cache.
    let shared_cfg = SimConfig::study(sram_entries);
    let shared = Run::new(Mechanism::Utlb)
        .config(&shared_cfg)
        .execute(&trace)
        .into_sim()
        .unwrap()
        .into();

    // Per-process UTLB: the budget is statically divided per process.
    let perproc_cfg = SimConfig {
        table_entries: perproc_split(sram_entries, trace.process_ids().len()),
        ..SimConfig::study(sram_entries)
    };
    let perproc = Run::new(Mechanism::PerProc)
        .config(&perproc_cfg)
        .execute(&trace)
        .into_sim()
        .unwrap()
        .into();

    PerprocVsShared {
        app,
        sram_entries,
        perproc,
        shared,
    }
}

impl fmt::Display for PerprocVsShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Per-process UTLB vs Shared UTLB-Cache: {} ({} SRAM entries total)",
            self.app, self.sram_entries
        ));
        t.header([
            "variant",
            "check miss",
            "NI miss",
            "pins/lookup",
            "unpins/lookup",
            "sim µs/lookup",
        ]);
        for (name, c) in [
            ("per-process", &self.perproc),
            ("shared-cache", &self.shared),
        ] {
            t.row([
                name.to_string(),
                format!("{:.3}", c.stats.check_miss_rate()),
                format!("{:.3}", c.stats.ni_miss_rate()),
                format!("{:.3}", c.stats.pin_rate()),
                format!("{:.3}", c.stats.unpin_rate()),
                micros(c.sim_us_per_lookup),
            ]);
        }
        t.fmt(f)
    }
}

/// All three UTLB variants (§3.1 per-process, §3.2 index-keyed shared
/// cache, §3.3 hierarchical) on one trace under an equal NIC budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantComparison {
    /// Application compared.
    pub app: SplashApp,
    /// NIC entry budget (cache entries for §3.2/§3.3; divided into static
    /// tables for §3.1).
    pub budget_entries: usize,
    /// §3.1 cell.
    pub perproc: VariantCell,
    /// §3.2 cell.
    pub indexed: VariantCell,
    /// §3.3 cell.
    pub hierarchical: VariantCell,
    /// §3.2 table fragmentation at end of run (0 = fully contiguous).
    pub indexed_fragmentation: f64,
}

/// Runs the three variants of §3 on `app` with the same NIC entry budget.
///
/// Every variant replays through the [`Run`] builder; the §3.2 run supplies
/// its own engine (`execute_with`) so the end-of-run table fragmentation can
/// be read back after the replay.
pub fn variant_comparison(
    app: SplashApp,
    cfg: &GenConfig,
    budget_entries: usize,
) -> VariantComparison {
    let trace = gen::generate_shared(app, cfg);
    let hierarchical = Run::new(Mechanism::Utlb)
        .config(&SimConfig::study(budget_entries))
        .execute(&trace)
        .into_sim()
        .unwrap();

    let perproc_cfg = SimConfig {
        table_entries: perproc_split(budget_entries, trace.process_ids().len()),
        ..SimConfig::study(budget_entries)
    };
    let perproc = Run::new(Mechanism::PerProc)
        .config(&perproc_cfg)
        .execute(&trace)
        .into_sim()
        .unwrap();

    // §3.2: host tables far larger than the footprint, NIC budget as cache.
    let indexed_cfg = SimConfig {
        table_entries: 16384,
        ..SimConfig::study(budget_entries)
    };
    let mut indexed_engine = IndexedEngine::new(indexed_cfg.indexed_config());
    let indexed = Run::with_config(&indexed_cfg)
        .execute_with(&mut indexed_engine, &trace)
        .into_sim()
        .unwrap();
    let pids = trace.process_ids();
    let indexed_fragmentation = pids
        .iter()
        .map(|p| indexed_engine.fragmentation(*p).expect("registered"))
        .sum::<f64>()
        / pids.len() as f64;

    VariantComparison {
        app,
        budget_entries,
        perproc: perproc.into(),
        indexed: indexed.into(),
        hierarchical: hierarchical.into(),
        indexed_fragmentation,
    }
}

impl fmt::Display for VariantComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "UTLB variants (§3.1 / §3.2 / §3.3): {} at {} NIC entries (§3.2 fragmentation {:.2})",
            self.app, self.budget_entries, self.indexed_fragmentation
        ));
        t.header([
            "variant",
            "check miss",
            "NI miss",
            "pins/lookup",
            "unpins/lookup",
            "sim µs/lookup",
        ]);
        for (name, c) in [
            ("per-process (3.1)", &self.perproc),
            ("indexed (3.2)", &self.indexed),
            ("hierarchical (3.3)", &self.hierarchical),
        ] {
            t.row([
                name.to_string(),
                format!("{:.3}", c.stats.check_miss_rate()),
                format!("{:.3}", c.stats.ni_miss_rate()),
                format!("{:.3}", c.stats.pin_rate()),
                format!("{:.3}", c.stats.unpin_rate()),
                micros(c.sim_us_per_lookup),
            ]);
        }
        t.fmt(f)
    }
}

/// §6.3's cost argument, quantified: per-associativity miss rate *and*
/// average lookup cost including the firmware's serial tag checks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocCost {
    /// Application measured.
    pub app: SplashApp,
    /// Cache entries.
    pub cache_entries: usize,
    /// `(associativity, miss rate, lookup µs with serial probes)` rows.
    pub rows: Vec<(Associativity, f64, f64)>,
}

/// Measures miss rate and probe-aware lookup cost for each associativity.
///
/// The paper: set-associativity buys little miss rate (with offsetting) but
/// every extra way costs a serial tag check in firmware, so "the
/// set-associative caches lose to the direct-map cache" on actual cost.
pub fn assoc_cost(app: SplashApp, cfg: &GenConfig, cache_entries: usize) -> AssocCost {
    let trace = gen::generate_shared(app, cfg);
    let rows = sweep_over_with(&Associativity::ALL, SweepScratch::new, |&assoc, scratch| {
        let sim = SimConfig {
            associativity: assoc,
            ..SimConfig::study(cache_entries)
        };
        let r = Run::new(Mechanism::Utlb)
            .config(&sim)
            .execute_in(scratch, &trace)
            .into_sim()
            .unwrap();
        (
            assoc,
            r.stats.ni_miss_rate(),
            r.utlb_lookup_cost_serial(&sim),
        )
    });
    AssocCost {
        app,
        cache_entries,
        rows,
    }
}

impl fmt::Display for AssocCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Associativity cost (§6.3): {} at {} entries",
            self.app, self.cache_entries
        ));
        t.header(["assoc", "miss rate", "lookup µs (serial probes)"]);
        for (assoc, miss, cost) in &self.rows {
            t.row([assoc.to_string(), rate(*miss), micros(*cost)]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn lru_beats_mru_on_looping_water() {
        // Water sweeps cyclically; for a cyclic scan LRU is actually the
        // pathological policy and MRU the optimal one — the classic result
        // the application-controlled design exists to exploit.
        let s = policy_sweep(SplashApp::Water, &test_gen_config());
        let get = |p: Policy| s.cells.iter().find(|c| c.policy == p).unwrap();
        let lru = get(Policy::Lru);
        let mru = get(Policy::Mru);
        assert!(
            mru.unpin_rate < lru.unpin_rate,
            "MRU {} should beat LRU {} on cyclic sweeps",
            mru.unpin_rate,
            lru.unpin_rate
        );
        assert_eq!(s.cells.len(), 5);
        assert!(s.to_string().contains("RANDOM"));
    }

    #[test]
    fn three_variants_rank_as_designed() {
        // With a budget far below the footprint, §3.1 must churn (static
        // SRAM tables), while §3.2 and §3.3 keep translations alive in host
        // memory (large tables) and never unpin.
        let v = variant_comparison(SplashApp::Lu, &test_gen_config(), 128);
        assert!(v.perproc.stats.unpins > 0, "static tables overflow");
        assert_eq!(v.indexed.stats.unpins, 0, "host tables are big enough");
        assert_eq!(v.hierarchical.stats.unpins, 0);
        // §3.1 never misses on the NIC; the cached variants may.
        assert_eq!(v.perproc.stats.ni_misses, 0);
        assert!(v.indexed.stats.ni_misses > 0);
        // §3.2 and §3.3 agree on check misses (same pinning discipline).
        assert_eq!(
            v.indexed.stats.check_misses,
            v.hierarchical.stats.check_misses
        );
        // Every variant now reports wall-clock translation time.
        assert!(v.perproc.sim_time_ns > 0);
        assert!(v.indexed.sim_time_ns > 0);
        assert!(v.hierarchical.sim_time_ns > 0);
        assert!(v.indexed.sim_us_per_lookup > 0.0);
        assert!(v.to_string().contains("hierarchical"));
        assert!(v.to_string().contains("sim µs/lookup"));
    }

    #[test]
    fn direct_mapped_wins_on_actual_cost() {
        // §6.3: "the set-associative caches lose to the direct-map cache"
        // once the serial per-way tag checks are charged.
        let r = assoc_cost(SplashApp::Water, &test_gen_config(), 2048);
        let cost_of = |a: Associativity| r.rows.iter().find(|(x, _, _)| *x == a).unwrap().2;
        let direct = cost_of(Associativity::Direct);
        let four = cost_of(Associativity::FourWay);
        assert!(
            direct < four,
            "direct {direct} must beat 4-way {four} on probe-aware cost"
        );
        assert!(r.to_string().contains("serial probes"));
    }

    #[test]
    fn perproc_suffers_capacity_unpins_where_shared_does_not() {
        // With an SRAM budget well below the footprint, the static
        // per-process tables must evict (unpin); the shared-cache variant
        // keeps translations alive in host memory and never unpins.
        let cfg = test_gen_config();
        let r = perproc_vs_shared(SplashApp::Lu, &cfg, 128);
        assert_eq!(r.shared.stats.unpins, 0);
        assert!(
            r.perproc.stats.unpins > 0,
            "static tables must overflow: {:?}",
            r.perproc
        );
        assert!(r.perproc.stats.check_miss_rate() >= r.shared.stats.check_miss_rate());
        // The capacity churn is visible in simulated time too: every unpin
        // charges the clock, so the churning variant pays more per lookup.
        assert!(r.perproc.sim_us_per_lookup > r.shared.sim_us_per_lookup);
        assert!(r.to_string().contains("per-process"));
    }
}
