//! Extension: out-of-core scale via fused generate+replay.
//!
//! The paper's traces top out at ~43 K lookups per node (Table 3) — small
//! enough to materialize. The streaming path removes that ceiling: a
//! [`Looped`] generator stream repeats one bounded-footprint epoch for
//! arbitrarily many epochs, and the [`Run`] builder consumes it in
//! [`STREAM_CHUNK`]-sized refills, so total lookups grow without the trace
//! ever existing in memory. This driver measures that claim: it replays a
//! multi-epoch stream orders of magnitude larger than the largest
//! materialized run, reports throughput and (on Linux) the process'
//! peak-RSS high-water mark, and sizes what materializing the same workload
//! would have cost.
//!
//! For an honest peak-RSS reading the streamed run must come first in a
//! fresh process — `VmHWM` is a high-water mark and never goes back down —
//! which is why the `stream_scale` bench binary runs this driver before
//! anything else and why the baseline materialized replay happens *after*
//! the streamed one inside the driver.

use crate::report::TextTable;
use crate::runner::STREAM_CHUNK;
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;
use utlb_core::UtlbEngine;
use utlb_trace::{gen, GenConfig, Looped, SplashApp, TraceRecord, TraceStream};

/// The looped application: Barnes has the suite's highest per-page reuse
/// (Table 3: ~16 lookups per page), so its epoch footprint — and with it
/// the engine state — stays small while lookups accumulate.
pub const STREAM_SCALE_APP: SplashApp = SplashApp::Barnes;

/// The baseline: FFT is the largest materialized run in the suite by total
/// lookups (Table 3: 43 132 per node at scale 1.0).
pub const STREAM_SCALE_BASELINE: SplashApp = SplashApp::Fft;

/// Gap between epochs, ns — one mean inter-request step, so the looped
/// stream looks like one long-running program rather than disjoint runs.
const EPOCH_GAP_NS: u64 = 20_000;

/// Result of the fused-replay scale measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamScale {
    /// Looped application.
    pub app: SplashApp,
    /// NIC cache entries of both runs.
    pub cache_entries: usize,
    /// Epochs the stream was looped for.
    pub epochs: u64,
    /// Records per refill of the replay loop ([`STREAM_CHUNK`]).
    pub chunk: usize,
    /// Translation lookups performed by the streamed run.
    pub streamed_lookups: u64,
    /// Trace records consumed by the streamed run.
    pub streamed_records: u64,
    /// Wall-clock milliseconds of the streamed run.
    pub streamed_wall_ms: f64,
    /// Streamed replay throughput, million lookups per second.
    pub streamed_mlookups_per_sec: f64,
    /// `VmHWM` (peak RSS) right after the streamed run, in KiB. `None` off
    /// Linux. Meaningful only when the streamed run is the process' first
    /// large allocation — see the module docs.
    pub peak_rss_after_stream_kb: Option<u64>,
    /// Bytes of trace resident during streamed replay: one chunk.
    pub resident_trace_bytes: u64,
    /// Bytes the streamed workload would occupy if materialized.
    pub materialized_equiv_bytes: u64,
    /// Baseline application (largest materialized run).
    pub baseline_app: SplashApp,
    /// Baseline lookups (materialize-then-replay).
    pub baseline_lookups: u64,
    /// Wall-clock milliseconds of the baseline run (replay only).
    pub baseline_wall_ms: f64,
    /// `streamed_lookups / baseline_lookups` — the acceptance criterion is
    /// ≥ 10.
    pub scale_factor: f64,
    /// NI miss rate of the streamed run, as a sanity anchor: looping a
    /// high-reuse app must drive the compulsory share toward zero.
    pub streamed_ni_miss_rate: f64,
}

/// Reads the process' peak resident set (`VmHWM`) in KiB.
#[cfg(target_os = "linux")]
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Reads the process' peak resident set (`VmHWM`) in KiB. Always `None`
/// off Linux.
#[cfg(not(target_os = "linux"))]
pub fn peak_rss_kb() -> Option<u64> {
    None
}

/// Replays [`STREAM_SCALE_APP`] looped for `epochs` epochs through the
/// UTLB engine in fused generate+replay mode, then materializes and
/// replays the [`STREAM_SCALE_BASELINE`] trace for comparison.
///
/// With `cfg.scale == 1.0` and `epochs` ≥ ~300 the streamed run exceeds
/// the baseline's lookups more than tenfold while its resident trace
/// state stays one [`STREAM_CHUNK`].
///
/// # Panics
///
/// Panics on internal engine errors, as for any [`Run`] execution.
pub fn stream_scale(cfg: &GenConfig, epochs: u64, cache_entries: usize) -> StreamScale {
    let sim = SimConfig::study(cache_entries);
    // One scratch serves both runs: the replay chunk and outcome buffer
    // allocated for the streamed pass are reused by the baseline, so the
    // peak-RSS reading is not inflated by a second set of buffers.
    let mut scratch = SweepScratch::new();

    // --- Fused generate+replay: the trace never exists in memory. ---
    let mut looped = Looped::new(
        gen::stream(STREAM_SCALE_APP, cfg),
        epochs,
        EPOCH_GAP_NS,
        |_| gen::stream(STREAM_SCALE_APP, cfg),
    );
    let streamed_records = looped.remaining();
    let start = Instant::now();
    let streamed = Run::with_config(&sim)
        .execute_with_in(
            &mut UtlbEngine::new(sim.utlb_config()),
            &mut scratch,
            &mut looped,
        )
        .into_sim()
        .unwrap();
    let streamed_wall = start.elapsed();
    let peak_rss_after_stream_kb = peak_rss_kb();

    // --- Baseline: materialize-then-replay the largest paper trace. ---
    let baseline_trace = gen::generate(STREAM_SCALE_BASELINE, cfg);
    let start = Instant::now();
    let baseline = Run::new(Mechanism::Utlb)
        .config(&sim)
        .execute_in(&mut scratch, &baseline_trace)
        .into_sim()
        .unwrap();
    let baseline_wall = start.elapsed();

    let record_bytes = std::mem::size_of::<TraceRecord>() as u64;
    StreamScale {
        app: STREAM_SCALE_APP,
        cache_entries,
        epochs,
        chunk: STREAM_CHUNK,
        streamed_lookups: streamed.stats.lookups,
        streamed_records,
        streamed_wall_ms: streamed_wall.as_secs_f64() * 1e3,
        streamed_mlookups_per_sec: streamed.stats.lookups as f64
            / streamed_wall.as_secs_f64()
            / 1e6,
        peak_rss_after_stream_kb,
        resident_trace_bytes: STREAM_CHUNK as u64 * record_bytes,
        materialized_equiv_bytes: streamed_records * record_bytes,
        baseline_app: STREAM_SCALE_BASELINE,
        baseline_lookups: baseline.stats.lookups,
        baseline_wall_ms: baseline_wall.as_secs_f64() * 1e3,
        scale_factor: streamed.stats.lookups as f64 / baseline.stats.lookups as f64,
        streamed_ni_miss_rate: streamed.rates().ni_miss_rate,
    }
}

impl fmt::Display for StreamScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Stream scale ({} entries): fused generate+replay, {} x{} epochs vs materialized {}",
            self.cache_entries, self.app, self.epochs, self.baseline_app
        ));
        t.header(["metric", "streamed", "baseline"]);
        t.row([
            "lookups".to_string(),
            self.streamed_lookups.to_string(),
            self.baseline_lookups.to_string(),
        ]);
        t.row([
            "wall ms".to_string(),
            format!("{:.1}", self.streamed_wall_ms),
            format!("{:.1}", self.baseline_wall_ms),
        ]);
        t.row([
            "resident trace bytes".to_string(),
            self.resident_trace_bytes.to_string(),
            (self.baseline_lookups * std::mem::size_of::<TraceRecord>() as u64).to_string(),
        ]);
        t.row([
            "scale factor".to_string(),
            format!("{:.1}x", self.scale_factor),
            "1.0x".to_string(),
        ]);
        t.row([
            "Mlookups/s".to_string(),
            format!("{:.2}", self.streamed_mlookups_per_sec),
            String::new(),
        ]);
        t.row([
            "peak RSS KiB".to_string(),
            self.peak_rss_after_stream_kb
                .map_or_else(|| "n/a".to_string(), |k| k.to_string()),
            String::new(),
        ]);
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_gen_config;

    #[test]
    fn scale_factor_grows_linearly_with_epochs() {
        let cfg = test_gen_config();
        let r = stream_scale(&cfg, 30, 1024);
        assert_eq!(r.epochs, 30);
        // Barnes at this scale has fewer lookups than FFT, but 30 epochs
        // dominate the single-epoch baseline comfortably.
        assert!(r.scale_factor >= 10.0, "scale factor {}", r.scale_factor);
        assert!(r.streamed_lookups > 10 * r.baseline_lookups);
        let record_bytes = std::mem::size_of::<TraceRecord>() as u64;
        assert_eq!(r.resident_trace_bytes, STREAM_CHUNK as u64 * record_bytes);
        assert!(r.materialized_equiv_bytes > 10 * r.resident_trace_bytes);
        assert!(r.streamed_mlookups_per_sec > 0.0);
        // Looping a fixed footprint drives reuse up: the miss rate must sit
        // well below one epoch's compulsory share.
        assert!(
            r.streamed_ni_miss_rate < 0.5,
            "looped miss rate {}",
            r.streamed_ni_miss_rate
        );
    }

    #[test]
    fn display_renders_the_headline_numbers() {
        let cfg = test_gen_config();
        let r = stream_scale(&cfg, 12, 256);
        let s = r.to_string();
        assert!(s.contains("scale factor"));
        assert!(s.contains("Mlookups/s"));
    }
}
