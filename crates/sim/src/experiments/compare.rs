//! Tables 4, 5, 6: UTLB vs the interrupt-based approach.
//!
//! Table 4 runs every application against both mechanisms with infinite
//! host memory; Table 5 repeats with a 4 MB-per-process pinned-memory
//! limit; Table 6 converts the measured rates into average lookup costs via
//! the §6.2 formulas for Barnes and FFT.

use super::{app_traces, gen_key, CACHE_SIZES, SPARSE_SIZES};
use crate::report::{micros, rate, TextTable};
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_trace::{GenConfig, SplashApp};

/// Measurements of one (app, cache size) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareCell {
    /// Application.
    pub app: SplashApp,
    /// Cache entries.
    pub cache_entries: usize,
    /// UTLB check misses per lookup.
    pub utlb_check: f64,
    /// UTLB NIC misses per lookup.
    pub utlb_ni: f64,
    /// UTLB unpins per lookup.
    pub utlb_unpins: f64,
    /// Intr NIC misses per lookup.
    pub intr_ni: f64,
    /// Intr unpins per lookup.
    pub intr_unpins: f64,
}

/// Tables 4 and 5 share this shape; `mem_limit_mb` distinguishes them.
#[derive(Debug, Clone)]
pub struct Table45 {
    /// Per-process memory limit in MB (`None` = Table 4's infinite memory).
    pub mem_limit_mb: Option<u64>,
    /// One cell per (cache size, app).
    pub cells: Vec<CompareCell>,
    /// `(app, entries)` → position in `cells`.
    index: HashMap<(SplashApp, usize), usize>,
}

fn compare(cfg: &GenConfig, mem_limit_mb: Option<u64>) -> Table45 {
    let traces = app_traces(cfg);
    let mut specs = Vec::new();
    for &entries in &CACHE_SIZES {
        for tix in 0..traces.len() {
            specs.push((entries, tix));
        }
    }
    let label = match mem_limit_mb {
        None => "table4",
        Some(_) => "table5",
    };
    let cells = SweepGrid::over(&specs)
        // Two runs per cell (UTLB + Intr), both over the same trace.
        .cost(|&(_, tix)| 2 * traces[tix].1.total_lookups())
        .checkpoint(label, |&(entries, tix)| {
            format!(
                "entries={entries}|app={}|limit={mem_limit_mb:?}|{}",
                traces[tix].0,
                gen_key(cfg)
            )
        })
        .run_with(SweepScratch::new, |&(entries, tix), scratch| {
            let (app, ref trace) = traces[tix];
            let mut sim = SimConfig::study(entries);
            if let Some(mb) = mem_limit_mb {
                sim = sim.limit_mb(mb);
            }
            let u = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            let i = Run::new(Mechanism::Intr)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            CompareCell {
                app,
                cache_entries: entries,
                utlb_check: u.stats.check_miss_rate(),
                utlb_ni: u.stats.ni_miss_rate(),
                utlb_unpins: u.stats.unpin_rate(),
                intr_ni: i.stats.ni_miss_rate(),
                intr_unpins: i.stats.unpin_rate(),
            }
        });
    Table45::build(mem_limit_mb, cells)
}

/// Regenerates Table 4 (infinite host memory).
pub fn table4(cfg: &GenConfig) -> Table45 {
    compare(cfg, None)
}

/// Regenerates Table 5 (4 MB host memory per process).
pub fn table5(cfg: &GenConfig) -> Table45 {
    compare(cfg, Some(4))
}

impl Table45 {
    /// Builds the table from its cells, indexing them by coordinates.
    pub fn build(mem_limit_mb: Option<u64>, cells: Vec<CompareCell>) -> Self {
        let index = cells
            .iter()
            .enumerate()
            .map(|(ix, c)| ((c.app, c.cache_entries), ix))
            .collect();
        Table45 {
            mem_limit_mb,
            cells,
            index,
        }
    }

    /// The cell for (`app`, `entries`), if simulated.
    pub fn cell(&self, app: SplashApp, entries: usize) -> Option<&CompareCell> {
        self.index.get(&(app, entries)).map(|&ix| &self.cells[ix])
    }
}

impl Serialize for Table45 {
    fn to_value(&self) -> serde::Value {
        // The index is a derived view; only limit + cells are archival.
        serde::Value::Object(vec![
            ("mem_limit_mb".to_string(), self.mem_limit_mb.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for Table45 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for Table45"))?;
        let mem_limit_mb = Option::from_value(serde::field(obj, "mem_limit_mb", "Table45")?)?;
        let cells = Vec::from_value(serde::field(obj, "cells", "Table45")?)?;
        Ok(Table45::build(mem_limit_mb, cells))
    }
}

impl fmt::Display for Table45 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let which = match self.mem_limit_mb {
            None => "Table 4: UTLB vs Intr, per lookup (infinite host memory)".to_string(),
            Some(mb) => format!("Table 5: UTLB vs Intr, per lookup ({mb} MB host memory)"),
        };
        let mut t = TextTable::new(which);
        t.header([
            "cache", "app", "U check", "U NI", "U unpin", "I NI", "I unpin",
        ]);
        for c in &self.cells {
            t.row([
                format!("{}K", c.cache_entries / 1024),
                c.app.to_string(),
                rate(c.utlb_check),
                rate(c.utlb_ni),
                rate(c.utlb_unpins),
                rate(c.intr_ni),
                rate(c.intr_unpins),
            ]);
        }
        t.fmt(f)
    }
}

/// One row of Table 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Application (Barnes or FFT in the paper).
    pub app: SplashApp,
    /// Cache entries.
    pub cache_entries: usize,
    /// Average UTLB lookup cost (µs).
    pub utlb_us: f64,
    /// Average interrupt-based lookup cost (µs).
    pub intr_us: f64,
}

/// Table 6: average lookup cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6 {
    /// Rows for each (app, size).
    pub rows: Vec<Table6Row>,
}

/// Regenerates Table 6 (infinite memory, no prefetch, offsetting).
pub fn table6(cfg: &GenConfig) -> Table6 {
    let apps = [SplashApp::Barnes, SplashApp::Fft];
    let traces: Vec<_> = apps
        .iter()
        .map(|&app| (app, utlb_trace::gen::generate_shared(app, cfg)))
        .collect();
    let mut specs = Vec::new();
    for tix in 0..traces.len() {
        for &entries in &SPARSE_SIZES {
            specs.push((tix, entries));
        }
    }
    let rows = SweepGrid::over(&specs)
        .cost(|&(tix, _)| 2 * traces[tix].1.total_lookups())
        .checkpoint("table6", |&(tix, entries)| {
            format!("entries={entries}|app={}|{}", traces[tix].0, gen_key(cfg))
        })
        .run_with(SweepScratch::new, |&(tix, entries), scratch| {
            let (app, ref trace) = traces[tix];
            let sim = SimConfig::study(entries);
            let u = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            let i = Run::new(Mechanism::Intr)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            Table6Row {
                app,
                cache_entries: entries,
                utlb_us: u.utlb_lookup_cost(&sim),
                intr_us: i.intr_lookup_cost(&sim),
            }
        });
    Table6 { rows }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 6: average lookup cost, UTLB vs Intr (µs)");
        t.header(["app", "cache", "UTLB", "Intr"]);
        for r in &self.rows {
            t.row([
                r.app.to_string(),
                format!("{}K", r.cache_entries / 1024),
                micros(r.utlb_us),
                micros(r.intr_us),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    // The scaled-down traces shrink footprints but the paper's qualitative
    // claims must survive scaling; cache sizes shrink proportionally via
    // using the smaller entries of CACHE_SIZES.

    #[test]
    fn table4_utlb_never_unpins_and_check_below_ni() {
        let t = table4(&test_gen_config());
        assert_eq!(t.cells.len(), CACHE_SIZES.len() * 7);
        for c in &t.cells {
            assert_eq!(c.utlb_unpins, 0.0, "{}: infinite memory", c.app);
            // UTLB detects misses at user level; its check misses never
            // exceed its NIC misses materially (conclusion 1 of §7).
            assert!(
                c.utlb_check <= c.utlb_ni + 1e-9,
                "{} @{}: check {} > ni {}",
                c.app,
                c.cache_entries,
                c.utlb_check,
                c.utlb_ni
            );
            // Same cache ⇒ same NIC miss stream for both mechanisms.
            assert!((c.utlb_ni - c.intr_ni).abs() < 1e-9);
        }
    }

    #[test]
    fn table4_intr_unpins_fall_with_cache_size() {
        let t = table4(&test_gen_config());
        for app in SplashApp::ALL {
            let small = t.cell(app, CACHE_SIZES[0]).unwrap();
            let big = t.cell(app, CACHE_SIZES[4]).unwrap();
            assert!(
                big.intr_unpins <= small.intr_unpins + 1e-9,
                "{app}: {} → {}",
                small.intr_unpins,
                big.intr_unpins
            );
        }
    }

    #[test]
    fn table5_memory_pressure_makes_utlb_unpin_but_less_than_intr_pins() {
        // With a limit scaled to the shrunken traces (4 MB ≫ scaled
        // footprints), use a tighter limit to see pressure.
        let cfg = test_gen_config();
        let traces = app_traces(&cfg);
        let (app, trace) = &traces[1]; // LU: largest footprint
        let sim = SimConfig::study(1024);
        let tight = SimConfig {
            mem_limit_pages: Some(trace.footprint_pages() / 10),
            ..sim
        };
        let u = Run::new(Mechanism::Utlb)
            .config(&tight)
            .execute(trace)
            .into_sim()
            .unwrap();
        let i = Run::new(Mechanism::Intr)
            .config(&tight)
            .execute(trace)
            .into_sim()
            .unwrap();
        assert!(u.stats.unpins > 0, "{app}: limit must bind");
        assert!(
            u.stats.unpins <= i.stats.unpins,
            "{app}: UTLB unpins {} vs Intr {}",
            u.stats.unpins,
            i.stats.unpins
        );
    }

    #[test]
    fn table6_utlb_wins_at_small_caches_for_fft() {
        let t = table6(&test_gen_config());
        let fft_small = t
            .rows
            .iter()
            .find(|r| r.app == SplashApp::Fft && r.cache_entries == SPARSE_SIZES[0])
            .unwrap();
        assert!(
            fft_small.utlb_us < fft_small.intr_us,
            "utlb {} vs intr {}",
            fft_small.utlb_us,
            fft_small.intr_us
        );
        assert!(t.to_string().contains("Table 6"));
    }
}
