//! Table 8: overall Shared UTLB-Cache miss rates vs size and associativity.
//!
//! Four organizations per size: direct-mapped with index offsetting
//! ("direct"), 2-way and 4-way set-associative (both with offsetting), and
//! direct-mapped *without* offsetting ("direct-nohash") — the row that shows
//! why the process-dependent index offset matters under multiprogramming.

use super::{app_traces, gen_key, CACHE_SIZES};
use crate::report::{rate, TextTable};
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_core::Associativity;
use utlb_trace::{GenConfig, SplashApp};

/// The four cache organizations of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// Direct-mapped with index offsetting.
    Direct,
    /// 2-way set-associative with offsetting.
    TwoWay,
    /// 4-way set-associative with offsetting.
    FourWay,
    /// Direct-mapped without offsetting.
    DirectNohash,
}

impl Organization {
    /// All organizations in the paper's row order.
    pub const ALL: [Organization; 4] = [
        Organization::Direct,
        Organization::TwoWay,
        Organization::FourWay,
        Organization::DirectNohash,
    ];

    fn apply(self, mut sim: SimConfig) -> SimConfig {
        match self {
            Organization::Direct => {
                sim.associativity = Associativity::Direct;
                sim.offsetting = true;
            }
            Organization::TwoWay => {
                sim.associativity = Associativity::TwoWay;
                sim.offsetting = true;
            }
            Organization::FourWay => {
                sim.associativity = Associativity::FourWay;
                sim.offsetting = true;
            }
            Organization::DirectNohash => {
                sim.associativity = Associativity::Direct;
                sim.offsetting = false;
            }
        }
        sim
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Organization::Direct => f.write_str("direct"),
            Organization::TwoWay => f.write_str("2-way"),
            Organization::FourWay => f.write_str("4-way"),
            Organization::DirectNohash => f.write_str("direct-nohash"),
        }
    }
}

/// One cell of Table 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Cell {
    /// Cache entries.
    pub cache_entries: usize,
    /// Cache organization.
    pub organization: Organization,
    /// Application.
    pub app: SplashApp,
    /// Overall NIC miss rate per lookup.
    pub miss_rate: f64,
}

/// Table 8: miss rates vs size × associativity.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// All cells.
    pub cells: Vec<Table8Cell>,
    /// `(entries, org, app)` → position in `cells`, built once so the
    /// `Display` grid and tests don't pay a linear scan per lookup.
    index: HashMap<(usize, Organization, SplashApp), usize>,
}

/// Regenerates Table 8 (infinite host memory, no prefetch).
pub fn table8(cfg: &GenConfig) -> Table8 {
    let traces = app_traces(cfg);
    let mut specs = Vec::new();
    for &entries in &CACHE_SIZES {
        for org in Organization::ALL {
            for tix in 0..traces.len() {
                specs.push((entries, org, tix));
            }
        }
    }
    let cells = SweepGrid::over(&specs)
        .cost(|&(_, _, tix)| traces[tix].1.total_lookups())
        .checkpoint("table8", |&(entries, org, tix)| {
            format!(
                "entries={entries}|org={org}|app={}|{}",
                traces[tix].0,
                gen_key(cfg)
            )
        })
        .run_with(SweepScratch::new, |&(entries, org, tix), scratch| {
            let (app, ref trace) = traces[tix];
            let sim = org.apply(SimConfig::study(entries));
            let r = Run::new(Mechanism::Utlb)
                .config(&sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap();
            Table8Cell {
                cache_entries: entries,
                organization: org,
                app,
                miss_rate: r.stats.ni_miss_rate(),
            }
        });
    Table8::build(cells)
}

impl Table8 {
    /// Builds the table from its cells, indexing them by coordinates.
    pub fn build(cells: Vec<Table8Cell>) -> Self {
        let index = cells
            .iter()
            .enumerate()
            .map(|(ix, c)| ((c.cache_entries, c.organization, c.app), ix))
            .collect();
        Table8 { cells, index }
    }

    /// Looks up one cell.
    pub fn cell(&self, entries: usize, org: Organization, app: SplashApp) -> Option<&Table8Cell> {
        self.index
            .get(&(entries, org, app))
            .map(|&ix| &self.cells[ix])
    }
}

impl Serialize for Table8 {
    fn to_value(&self) -> serde::Value {
        // The index is a derived view; only the cells are archival state.
        serde::Value::Object(vec![("cells".to_string(), self.cells.to_value())])
    }
}

impl Deserialize for Table8 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for Table8"))?;
        let cells = Vec::from_value(serde::field(obj, "cells", "Table8")?)?;
        Ok(Table8::build(cells))
    }
}

impl fmt::Display for Table8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 8: overall Shared UTLB-Cache miss rates (per lookup)");
        let mut header = vec!["cache".to_string(), "assoc".to_string()];
        header.extend(SplashApp::ALL.iter().map(|a| a.to_string()));
        t.header(header);
        for &entries in &CACHE_SIZES {
            for org in Organization::ALL {
                let mut row = vec![format!("{}K", entries / 1024), org.to_string()];
                for app in SplashApp::ALL {
                    let cell = self
                        .cell(entries, org, app)
                        .map(|c| rate(c.miss_rate))
                        .unwrap_or_else(|| "-".into());
                    row.push(cell);
                }
                t.row(row);
            }
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn offsetting_beats_nohash_overall() {
        // §6.3's headline: the direct-mapped cache with offsetting has
        // overall miss rates "close to, and frequently lower than" the
        // set-associative ones, and nohash is clearly worse.
        let t = table8(&test_gen_config());
        let mean = |org: Organization| {
            let cells: Vec<f64> = t
                .cells
                .iter()
                .filter(|c| c.organization == org)
                .map(|c| c.miss_rate)
                .collect();
            cells.iter().sum::<f64>() / cells.len() as f64
        };
        let direct = mean(Organization::Direct);
        let nohash = mean(Organization::DirectNohash);
        assert!(
            direct < nohash,
            "offsetting must reduce conflict misses: direct {direct} vs nohash {nohash}"
        );
        // Direct with offsetting is competitive with 4-way (within 20%).
        let four = mean(Organization::FourWay);
        assert!(
            direct < four * 1.2,
            "direct {direct} should be close to 4-way {four}"
        );
    }

    #[test]
    fn miss_rates_monotone_in_cache_size_per_app() {
        let t = table8(&test_gen_config());
        for app in SplashApp::ALL {
            let small = t
                .cell(CACHE_SIZES[0], Organization::Direct, app)
                .unwrap()
                .miss_rate;
            let big = t
                .cell(CACHE_SIZES[4], Organization::Direct, app)
                .unwrap()
                .miss_rate;
            assert!(
                big <= small + 0.02,
                "{app}: miss rate grew with cache size {small} → {big}"
            );
        }
    }

    #[test]
    fn renders_full_grid() {
        let t = table8(&test_gen_config());
        assert_eq!(t.cells.len(), CACHE_SIZES.len() * 4 * 7);
        let s = t.to_string();
        assert!(s.contains("direct-nohash"));
        assert!(s.contains("water-spatial"));
    }
}
