//! Extension: genuinely multiprogrammed workloads.
//!
//! The paper's §7 limitations: "our traces are from shared memory parallel
//! programs ... they may not reveal certain behaviors that multiple
//! independent programs have." This experiment merges two *different*
//! applications' traces onto one NIC (ten processes total) and measures
//! each program's miss rates alone versus co-scheduled, at each cache
//! organization — quantifying cache interference between independent
//! programs and how much index offsetting mitigates it.

use crate::report::{rate, TextTable};
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use utlb_trace::{gen, merge_multiprogram, GenConfig, SplashApp};

/// Miss rates of one program, alone vs co-scheduled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiprogCell {
    /// The application measured.
    pub app: SplashApp,
    /// NI miss rate running alone.
    pub alone: f64,
    /// NI miss rate co-scheduled with the partner, with index offsetting.
    pub shared_offset: f64,
    /// NI miss rate co-scheduled, without offsetting ("direct-nohash").
    pub shared_nohash: f64,
}

impl MultiprogCell {
    /// Absolute interference with offsetting: co-scheduled minus alone.
    pub fn interference(&self) -> f64 {
        self.shared_offset - self.alone
    }
}

/// The multiprogramming experiment for one application pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Multiprog {
    /// Cache entries used.
    pub cache_entries: usize,
    /// One cell per co-scheduled application.
    pub cells: Vec<MultiprogCell>,
}

/// Runs `a` and `b` alone and co-scheduled at `cache_entries`.
pub fn multiprog(a: SplashApp, b: SplashApp, cfg: &GenConfig, cache_entries: usize) -> Multiprog {
    let ta = gen::generate_shared(a, cfg);
    let tb = gen::generate_shared(b, cfg);
    let a_procs = ta.process_ids().len() as u32;
    let merged = merge_multiprogram(&[(*ta).clone(), (*tb).clone()]);

    let sim = SimConfig::study(cache_entries);
    let nohash = SimConfig {
        offsetting: false,
        ..SimConfig::study(cache_entries)
    };

    // The four runs (each program alone, merged with and without
    // offsetting) are independent cells — fan them out, merged-trace
    // cells (twice the lookups) first.
    let runs = [
        (&*ta, &sim),
        (&*tb, &sim),
        (&merged, &sim),
        (&merged, &nohash),
    ];
    let mut results = SweepGrid::over(&runs)
        .cost(|&(trace, _)| trace.total_lookups())
        .run_with(SweepScratch::new, |&(trace, run_sim), scratch| {
            Run::new(Mechanism::Utlb)
                .config(run_sim)
                .execute_in(scratch, trace)
                .into_sim()
                .unwrap()
        });
    let shared_nh = results.pop().expect("four runs");
    let shared = results.pop().expect("four runs");
    let alone_b = results.pop().expect("four runs").stats.ni_miss_rate();
    let alone_a = results.pop().expect("four runs").stats.ni_miss_rate();

    let a_pids: Vec<u32> = (1..=a_procs).collect();
    let b_pids: Vec<u32> = (a_procs + 1..=a_procs + tb.process_ids().len() as u32).collect();

    let cells = vec![
        MultiprogCell {
            app: a,
            alone: alone_a,
            shared_offset: shared.stats_for_pids(&a_pids).ni_miss_rate(),
            shared_nohash: shared_nh.stats_for_pids(&a_pids).ni_miss_rate(),
        },
        MultiprogCell {
            app: b,
            alone: alone_b,
            shared_offset: shared.stats_for_pids(&b_pids).ni_miss_rate(),
            shared_nohash: shared_nh.stats_for_pids(&b_pids).ni_miss_rate(),
        },
    ];
    Multiprog {
        cache_entries,
        cells,
    }
}

impl fmt::Display for Multiprog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Multiprogramming interference ({} entries): NI miss rate per program",
            self.cache_entries
        ));
        t.header(["app", "alone", "co-sched (offset)", "co-sched (nohash)"]);
        for c in &self.cells {
            t.row([
                c.app.to_string(),
                rate(c.alone),
                rate(c.shared_offset),
                rate(c.shared_nohash),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn cosched_interference_is_bounded_and_offsetting_helps() {
        let m = multiprog(
            SplashApp::Water,
            SplashApp::Volrend,
            &test_gen_config(),
            2048,
        );
        assert_eq!(m.cells.len(), 2);
        for c in &m.cells {
            // Sharing can only hurt (or leave unchanged, modulo hash noise).
            assert!(
                c.shared_offset >= c.alone - 0.02,
                "{}: co-scheduling reduced misses?! {} vs {}",
                c.app,
                c.shared_offset,
                c.alone
            );
            // Without offsetting the independent programs collide harder.
            assert!(
                c.shared_nohash >= c.shared_offset - 0.02,
                "{}: nohash {} should be no better than offset {}",
                c.app,
                c.shared_nohash,
                c.shared_offset
            );
        }
        assert!(m.to_string().contains("Multiprogramming"));
    }

    #[test]
    fn interference_vanishes_with_a_big_cache() {
        let small = multiprog(SplashApp::Water, SplashApp::Barnes, &test_gen_config(), 256);
        let big = multiprog(
            SplashApp::Water,
            SplashApp::Barnes,
            &test_gen_config(),
            16384,
        );
        let total =
            |m: &Multiprog| -> f64 { m.cells.iter().map(MultiprogCell::interference).sum() };
        assert!(
            total(&big) <= total(&small) + 0.02,
            "interference must shrink with cache size: {} vs {}",
            total(&big),
            total(&small)
        );
    }
}
