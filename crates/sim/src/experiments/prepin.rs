//! Table 7 and the prepin-width sweep: user-level page pre-pinning (§6.5).
//!
//! "If a virtual page needs to be pinned, the user library tries to pin a
//! number of contiguous pages starting with that page" — because pinning a
//! batch in one `ioctl` is much cheaper per page than pinning one page at a
//! time. The paper compares 1-page and 16-page prepinning under a 16 MB
//! physical-memory limit and finds it helps every application except
//! strided FFT, which pre-pins pages it never uses and pays for the
//! eventual unpins.

use super::gen_key;
use crate::report::{micros, TextTable};
use crate::RunOutputExt;
use crate::{Mechanism, Run, SimConfig, SweepGrid, SweepScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use utlb_trace::{gen, GenConfig, SplashApp, Trace};

/// Applications shown in Table 7, in the paper's column order.
pub const TABLE7_APPS: [SplashApp; 6] = [
    SplashApp::Barnes,
    SplashApp::Radix,
    SplashApp::Raytrace,
    SplashApp::Water,
    SplashApp::Fft,
    SplashApp::Lu,
];

/// One measurement: amortized pin/unpin cost per lookup for one prepin
/// width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrepinCell {
    /// Application.
    pub app: SplashApp,
    /// Pages pre-pinned per check miss.
    pub prepin: u64,
    /// Amortized pin cost per lookup (µs).
    pub pin_us: f64,
    /// Amortized unpin cost per lookup (µs).
    pub unpin_us: f64,
    /// Pages pinned per lookup.
    pub pin_rate: f64,
    /// Pages unpinned per lookup.
    pub unpin_rate: f64,
}

/// Table 7: amortized pinning/unpinning, 1-page vs 16-page prepinning.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// Memory limit used (pages per process).
    pub mem_limit_pages: u64,
    /// All cells.
    pub cells: Vec<PrepinCell>,
    /// `(app, prepin)` → position in `cells`.
    index: HashMap<(SplashApp, u64), usize>,
}

fn measure(
    app: SplashApp,
    trace: &Trace,
    prepin: u64,
    limit_pages: u64,
    scratch: &mut SweepScratch,
) -> PrepinCell {
    let sim = SimConfig {
        prepin,
        mem_limit_pages: Some(limit_pages),
        ..SimConfig::study(8192)
    };
    let r = Run::new(Mechanism::Utlb)
        .config(&sim)
        .execute_in(scratch, trace)
        .into_sim()
        .unwrap();
    PrepinCell {
        app,
        prepin,
        pin_us: r.stats.pin_us_per_lookup(),
        unpin_us: r.stats.unpin_us_per_lookup(),
        pin_rate: r.stats.pin_rate(),
        unpin_rate: r.stats.unpin_rate(),
    }
}

/// The paper's 16 MB physical-memory limit, interpreted per node and split
/// across the five processes, scaled with the trace scale so it binds at
/// reduced sizes too.
fn scaled_limit(cfg: &GenConfig) -> u64 {
    ((16.0 * 256.0 * cfg.scale / 5.0).max(8.0)) as u64
}

/// Regenerates Table 7 with the paper's 16 MB limit.
pub fn table7(cfg: &GenConfig) -> Table7 {
    let limit_pages = scaled_limit(cfg);
    let traces: Vec<_> = TABLE7_APPS
        .iter()
        .map(|&app| (app, gen::generate_shared(app, cfg)))
        .collect();
    let mut specs = Vec::new();
    for tix in 0..traces.len() {
        for prepin in [1u64, 16] {
            specs.push((tix, prepin));
        }
    }
    let cells = SweepGrid::over(&specs)
        .cost(|&(tix, _)| traces[tix].1.total_lookups())
        .checkpoint("table7", |&(tix, prepin)| {
            format!(
                "app={}|prepin={prepin}|limit={limit_pages}|{}",
                traces[tix].0,
                gen_key(cfg)
            )
        })
        .run_with(SweepScratch::new, |&(tix, prepin), scratch| {
            let (app, ref trace) = traces[tix];
            measure(app, trace, prepin, limit_pages, scratch)
        });
    Table7::build(limit_pages, cells)
}

impl Table7 {
    /// Builds the table from its cells, indexing them by coordinates.
    pub fn build(mem_limit_pages: u64, cells: Vec<PrepinCell>) -> Self {
        let index = cells
            .iter()
            .enumerate()
            .map(|(ix, c)| ((c.app, c.prepin), ix))
            .collect();
        Table7 {
            mem_limit_pages,
            cells,
            index,
        }
    }

    /// The cell for (`app`, `prepin`), if present.
    pub fn cell(&self, app: SplashApp, prepin: u64) -> Option<&PrepinCell> {
        self.index.get(&(app, prepin)).map(|&ix| &self.cells[ix])
    }
}

impl Serialize for Table7 {
    fn to_value(&self) -> serde::Value {
        // The index is a derived view; only limit + cells are archival.
        serde::Value::Object(vec![
            (
                "mem_limit_pages".to_string(),
                self.mem_limit_pages.to_value(),
            ),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for Table7 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for Table7"))?;
        let mem_limit_pages = u64::from_value(serde::field(obj, "mem_limit_pages", "Table7")?)?;
        let cells = Vec::from_value(serde::field(obj, "cells", "Table7")?)?;
        Ok(Table7::build(mem_limit_pages, cells))
    }
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Table 7: amortized pin/unpin per lookup (µs), {}-page memory limit",
            self.mem_limit_pages
        ));
        let mut header = vec!["cost".to_string(), "pages".to_string()];
        header.extend(TABLE7_APPS.iter().map(|a| a.to_string()));
        t.header(header);
        for (label, pick) in [("pin", true), ("unpin", false)] {
            for prepin in [1u64, 16] {
                let mut row = vec![label.to_string(), prepin.to_string()];
                for app in TABLE7_APPS {
                    let c = self.cell(app, prepin).expect("full grid");
                    row.push(micros(if pick { c.pin_us } else { c.unpin_us }));
                }
                t.row(row);
            }
        }
        t.fmt(f)
    }
}

/// Extension: a full prepin-width sweep (the paper only ran 1 and 16).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrepinSweep {
    /// Application swept.
    pub app: SplashApp,
    /// One cell per width.
    pub cells: Vec<PrepinCell>,
}

/// Sweeps prepin widths 1–32 for `app` under a 16 MB-scaled limit.
pub fn prepin_sweep(app: SplashApp, cfg: &GenConfig) -> PrepinSweep {
    let limit_pages = scaled_limit(cfg);
    let trace = gen::generate_shared(app, cfg);
    let widths = [1u64, 2, 4, 8, 16, 32];
    let cells = SweepGrid::over(&widths)
        // Same trace for every width: cells cost the same, so LPT keeps
        // input order; the journal key still distinguishes widths.
        .checkpoint("prepin_sweep", |&w| {
            format!("app={app}|prepin={w}|limit={limit_pages}|{}", gen_key(cfg))
        })
        .run_with(SweepScratch::new, |&w, scratch| {
            measure(app, &trace, w, limit_pages, scratch)
        });
    PrepinSweep { app, cells }
}

impl fmt::Display for PrepinSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!("Prepin-width sweep: {}", self.app));
        t.header([
            "prepin",
            "pin µs/lookup",
            "unpin µs/lookup",
            "pin rate",
            "unpin rate",
        ]);
        for c in &self.cells {
            t.row([
                c.prepin.to_string(),
                micros(c.pin_us),
                micros(c.unpin_us),
                format!("{:.3}", c.pin_rate),
                format!("{:.3}", c.unpin_rate),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_gen_config;
    use super::*;

    #[test]
    fn prepinning_cuts_pin_cost_for_irregular_apps() {
        let t = table7(&test_gen_config());
        for app in [SplashApp::Barnes, SplashApp::Water] {
            let one = t.cell(app, 1).unwrap();
            let sixteen = t.cell(app, 16).unwrap();
            assert!(
                sixteen.pin_us < one.pin_us,
                "{app}: pin {} → {} must fall",
                one.pin_us,
                sixteen.pin_us
            );
        }
    }

    #[test]
    fn fft_pays_for_useless_prepinning_with_unpins() {
        // §6.5: FFT's strided pattern makes 16-page prepinning pin pages it
        // never uses; under the memory limit those get unpinned again.
        let t = table7(&test_gen_config());
        let one = t.cell(SplashApp::Fft, 1).unwrap();
        let sixteen = t.cell(SplashApp::Fft, 16).unwrap();
        assert!(
            sixteen.unpin_us > one.unpin_us,
            "fft: unpin {} → {} must grow",
            one.unpin_us,
            sixteen.unpin_us
        );
        assert!(sixteen.pin_rate > 2.0 * one.pin_rate, "wasted pins");
    }

    #[test]
    fn sweep_is_monotone_for_regular_sequential_lu() {
        let s = prepin_sweep(SplashApp::Lu, &test_gen_config());
        assert_eq!(s.cells.len(), 6);
        let first = &s.cells[0];
        let last = &s.cells[5];
        assert!(last.pin_us < first.pin_us, "batching always helps LU");
        assert!(s.to_string().contains("lu"));
    }

    #[test]
    fn table7_renders() {
        let t = table7(&test_gen_config());
        assert_eq!(t.cells.len(), TABLE7_APPS.len() * 2);
        let s = t.to_string();
        assert!(s.contains("Table 7"));
        assert!(s.contains("barnes"));
    }
}
