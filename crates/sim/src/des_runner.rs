//! Discrete-event replay: the serial runner's timing, made contention-aware.
//!
//! A `.des(timing)` run drives the same engines over the same traces as a
//! plain [`Run::execute`](crate::Run::execute), but instead of charging
//! every cost to one serial
//! clock it routes each lookup's resource demands — NIC firmware time, host
//! kernel pin work, interrupt dispatch, translation-entry DMA — through the
//! contended stations of `utlb-des`. The engine replay itself is kept
//! *bit-identical* to the serial runner (same record order, same clock
//! advances, same statistics); the DES layer is a timing overlay computed
//! from the engines' own event streams via
//! [`page_demands`](utlb_core::page_demands).
//!
//! With [`DesConfig::zero_contention`] every station sees at most one
//! request in flight and the overlay's completion time reproduces the
//! serial `sim_time_ns` exactly — the executable specification the
//! `des_equivalence` test suite pins. Turning payload traffic on
//! ([`DesConfig::contended`]) puts the trace's own transfer bytes on the
//! shared bus and (optionally) a completion interrupt per transfer on host
//! interrupt service, which is where queueing delay — the paper's §7 open
//! question — appears.

use crate::runner::{SweepScratch, STREAM_CHUNK};
use crate::{MissClassifier, SimConfig, SimResult};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use utlb_core::obs::{Event, Histogram, Probe, SharedCollector, WaitResource};
use utlb_core::{page_demands_into, LookupBatch, TranslationMechanism};
use utlb_mem::{Host, ProcessId};
use utlb_nic::{Board, BoardSnapshot, Nanos};
use utlb_trace::{fill_chunk, TraceStream};

pub use utlb_des::DesConfig;
use utlb_des::{DmaEngineModel, IntrServiceModel, IoBusModel, Resource, ResourceReport};

/// Outcome of one discrete-event run: the serial result (identical to what
/// a plain trace replay returns for the same inputs) plus the queueing view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesResult {
    /// The serial-replay result — counters, cache, classification,
    /// `sim_time_ns` — byte-identical to a plain trace replay.
    pub base: SimResult,
    /// When the last translation finished on the contended stations,
    /// relative to the same origin as `base.sim_time_ns`. Equals
    /// `base.sim_time_ns` under zero contention.
    pub des_time_ns: u64,
    /// Per-request translation latency (arrival to last page translated),
    /// service and queueing included.
    pub latency_ns: Histogram,
    /// Per-process request-latency histograms, keyed by raw pid.
    pub per_process_latency: Vec<(u32, Histogram)>,
    /// Queueing delay spent behind the NIC firmware processor.
    pub fw_wait_ns: u64,
    /// Queueing delay spent behind the DMA engine.
    pub dma_wait_ns: u64,
    /// Queueing delay spent behind the I/O bus.
    pub bus_wait_ns: u64,
    /// Queueing delay spent behind host interrupt service.
    pub intr_wait_ns: u64,
    /// Station occupancy reports (firmware, DMA engine, bus, interrupt
    /// service), in a fixed order.
    pub resources: Vec<ResourceReport>,
    /// Background payload transfers injected ([`DesConfig::payload_load`]).
    pub payload_transfers: u64,
    /// Total background payload words moved across the bus.
    pub payload_words: u64,
}

impl DesResult {
    /// Total queueing delay across all stations, in nanoseconds.
    pub fn total_wait_ns(&self) -> u64 {
        self.fw_wait_ns + self.dma_wait_ns + self.bus_wait_ns + self.intr_wait_ns
    }

    /// Mean per-request translation latency in µs.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency_ns.mean_ns() / 1000.0
    }

    /// Worst per-request translation latency in µs.
    pub fn max_latency_us(&self) -> f64 {
        self.latency_ns.max_ns() as f64 / 1000.0
    }

    /// Merged request-latency histogram over a pid subset (one program of a
    /// multiprogrammed trace).
    pub fn latency_for_pids(&self, pids: &[u32]) -> Histogram {
        let mut h = Histogram::new();
        for (p, hist) in &self.per_process_latency {
            if pids.contains(p) {
                h.merge(hist);
            }
        }
        h
    }

    /// Mean queueing delay per request in µs — the contention surcharge.
    pub fn mean_wait_us(&self) -> f64 {
        if self.latency_ns.count() == 0 {
            0.0
        } else {
            self.total_wait_ns() as f64 / self.latency_ns.count() as f64 / 1000.0
        }
    }
}

/// Captures the engine's event stream per `lookup_run` for demand
/// decomposition, forwarding to an optional downstream probe (the obs
/// collector in observed runs).
#[derive(Debug)]
pub(crate) struct DemandTap {
    pub(crate) buf: Rc<RefCell<Vec<Event>>>,
    pub(crate) inner: Option<Box<dyn Probe>>,
}

impl Probe for DemandTap {
    fn on_event(&mut self, pid: ProcessId, event: Event) {
        self.buf.borrow_mut().push(event);
        if let Some(p) = &mut self.inner {
            p.on_event(pid, event);
        }
    }
}

/// Emits a [`Event::Wait`] to the optional observation probe.
pub(crate) fn emit_wait(
    probe: &mut Option<Box<dyn Probe>>,
    pid: ProcessId,
    resource: WaitResource,
    wait: Nanos,
) {
    if let Some(p) = probe {
        p.on_event(
            pid,
            Event::Wait {
                resource,
                ns: wait.as_nanos(),
            },
        );
    }
}

/// The discrete-event replay loop, consuming a [`TraceStream`] in the same
/// [`STREAM_CHUNK`]-sized refills as the serial runner. Returns the DES
/// result plus the board snapshot (for obs exports).
///
/// Station admission follows stream order, which *is* arrival order: a
/// stream yields records by non-decreasing timestamp, so no event queue is
/// needed to re-interleave per-process arrivals — and a fused
/// generate+replay run never materializes the trace at all.
pub(crate) fn replay_des<M, S>(
    engine: &mut M,
    stream: &mut S,
    cfg: &SimConfig,
    des: &DesConfig,
    obs: Option<&SharedCollector>,
    scratch: &mut SweepScratch,
) -> (DesResult, BoardSnapshot)
where
    M: TranslationMechanism + ?Sized,
    S: TraceStream + ?Sized,
{
    let mut host = Host::new(cfg.host_frames);
    let mut board = Board::new();
    let mut classifier = MissClassifier::new(cfg.cache_entries);

    // Identical to the serial runner: trace pids are dense from 1.
    let pids = stream.process_ids();
    for expected in &pids {
        let got = host.spawn_process();
        assert_eq!(got, *expected, "trace pids must be dense from 1");
        engine
            .register_process(&mut host, &mut board, got)
            .expect("registration succeeds on a fresh host");
    }
    let workload = stream.workload().to_string();
    let t0 = board.clock.now();

    // Tap the engine's event stream; in observed mode also forward it.
    let buf: Rc<RefCell<Vec<Event>>> = Rc::new(RefCell::new(Vec::new()));
    engine.set_probe(Box::new(DemandTap {
        buf: Rc::clone(&buf),
        inner: obs.map(SharedCollector::boxed),
    }));
    let mut wait_probe: Option<Box<dyn Probe>> = obs.map(SharedCollector::boxed);

    // The stations. The NIC firmware is the root server: a lookup holds it
    // for its full duration (the LANai processor walks pages serially),
    // queueing at the nested stations while it does — exactly the serial
    // recurrence `c_i = max(c_{i-1}, ts_i) + cost_i` when nothing else
    // competes. Registration work precedes all traffic, so the firmware
    // starts busy until `t0`.
    let mut firmware = Resource::fifo("nic_firmware", 1);
    if t0 > Nanos::ZERO {
        firmware.acquire(Nanos::ZERO, t0);
    }
    let mut io_bus = IoBusModel::new(des.bus);
    let mut dma = DmaEngineModel::new(&des.bus);
    let mut intr_svc = IntrServiceModel::new(des.intr_dispatch);

    let kernel_pins = engine.kernel_pins();
    let mut latency_ns = Histogram::new();
    let mut per_process_latency: Vec<(u32, Histogram)> =
        pids.iter().map(|p| (p.raw(), Histogram::new())).collect();
    let (mut fw_wait, mut dma_wait, mut bus_wait, mut intr_wait) =
        (Nanos::ZERO, Nanos::ZERO, Nanos::ZERO, Nanos::ZERO);
    let mut des_end = t0;
    let mut payload_transfers = 0u64;
    let mut payload_words = 0u64;

    // Reused across records — and, in a sweep, across every cell on the
    // worker's arena: the stream chunk, page outcomes from the batched
    // lookup path, the drained event tap, and the decomposed per-page
    // demands. Steady state allocates nothing per record.
    let SweepScratch {
        chunk,
        out,
        events: events_scratch,
        demands,
    } = scratch;

    while fill_chunk(stream, chunk, STREAM_CHUNK) > 0 {
        for rec in chunk.iter() {
            let pid = rec.pid;
            // Pids are dense from 1 (asserted above), so the per-process slot
            // is the pid itself.
            let slot = (pid.raw() - 1) as usize;

            // --- Serial half, verbatim from the plain runner. ---
            board.clock.advance_to(Nanos::from_nanos(rec.ts_ns));
            out.clear();
            engine
                .lookup_run_into(
                    &mut host,
                    &mut board,
                    LookupBatch::for_buffer(pid, rec.va, rec.nbytes),
                    out,
                )
                .expect("trace lookups succeed");
            classifier.access_batch(pid, out.as_slice());

            // --- DES overlay: route this lookup's demands through the
            // stations, holding the firmware for the whole request. ---
            events_scratch.clear();
            std::mem::swap(&mut *buf.borrow_mut(), events_scratch);
            page_demands_into(events_scratch, demands);
            let arrival = Nanos::from_nanos(rec.ts_ns);
            let grant = firmware.acquire_with(arrival, |start| {
                let mut cursor = start;
                for d in demands.iter() {
                    // Firmware-only time; UTLB's pins run in the kernel
                    // top half, serial with the translation.
                    cursor += Nanos::from_nanos(d.firmware_ns());
                    let mut intr_occupancy = d.intr_ns;
                    if kernel_pins {
                        intr_occupancy += d.pin_ns;
                    } else {
                        cursor += Nanos::from_nanos(d.pin_ns);
                    }
                    if intr_occupancy > 0 {
                        let g = intr_svc.handle_for(cursor, Nanos::from_nanos(intr_occupancy));
                        intr_wait += g.wait;
                        emit_wait(&mut wait_probe, pid, WaitResource::IntrService, g.wait);
                        cursor = g.end;
                    }
                    if d.dma_ns > 0 {
                        // Split the serial DMA charge into engine
                        // programming and the bus data phase; the two
                        // service times sum to the serial charge.
                        let total = Nanos::from_nanos(d.dma_ns);
                        let setup = dma.setup().min(total);
                        let g1 = dma.program_for(cursor, setup);
                        dma_wait += g1.wait;
                        emit_wait(&mut wait_probe, pid, WaitResource::DmaEngine, g1.wait);
                        let g2 = io_bus.transfer(g1.end, total - setup);
                        bus_wait += g2.wait;
                        emit_wait(&mut wait_probe, pid, WaitResource::Bus, g2.wait);
                        cursor = g2.end;
                    }
                }
                cursor
            });
            fw_wait += grant.wait;
            emit_wait(&mut wait_probe, pid, WaitResource::Firmware, grant.wait);
            let lat = grant.end - arrival;
            latency_ns.record(lat.as_nanos());
            per_process_latency[slot].1.record(lat.as_nanos());
            des_end = des_end.max(grant.end);

            // Background payload traffic: the record's own transfer bytes
            // (scaled by the offered load) cross the same bus after
            // translation, optionally raising a completion interrupt.
            // Fire-and-forget: it loads the stations but the sender does not
            // block on it. The notification is admitted to interrupt service at
            // its (already-known) completion time right here, so station
            // admission order follows trace order regardless of load — which
            // keeps results reproducible and latency monotone in offered load.
            if des.payload_load > 0.0 {
                let words = des.payload_words(rec.nbytes);
                if words > 0 {
                    payload_transfers += 1;
                    payload_words += words;
                    let g1 = dma.program(grant.end);
                    let g2 = io_bus.transfer(g1.end, io_bus.data_service(words));
                    if des.notify_interrupts {
                        let g = intr_svc.handle(g2.end, Nanos::ZERO);
                        intr_wait += g.wait;
                        emit_wait(&mut wait_probe, pid, WaitResource::IntrService, g.wait);
                    }
                }
            }
        }
    }
    engine.take_probe();
    drop(wait_probe);

    let sim_time_ns = (board.clock.now() - t0).as_nanos();
    let per_process = pids
        .iter()
        .map(|p| (p.raw(), engine.stats(*p).expect("registered")))
        .collect();
    let base = SimResult {
        workload,
        stats: engine.aggregate_stats(),
        cache: engine.cache_stats(),
        breakdown: classifier.breakdown(),
        per_process,
        sim_time_ns,
    };
    let result = DesResult {
        base,
        des_time_ns: (des_end - t0).as_nanos(),
        latency_ns,
        per_process_latency,
        fw_wait_ns: fw_wait.as_nanos(),
        dma_wait_ns: dma_wait.as_nanos(),
        bus_wait_ns: bus_wait.as_nanos(),
        intr_wait_ns: intr_wait.as_nanos(),
        resources: vec![
            firmware.report(),
            dma.report(),
            io_bus.report(),
            intr_svc.report(),
        ],
        payload_transfers,
        payload_words,
    };
    (result, board.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mechanism, Run, RunOutputExt};
    use utlb_trace::{gen, GenConfig, SplashApp, Trace};

    fn tiny(app: SplashApp) -> Trace {
        gen::generate(
            app,
            &GenConfig {
                seed: 21,
                scale: 0.05,
                app_processes: 4,
            },
        )
    }

    fn exec_des(mech: Mechanism, trace: &Trace, cfg: &SimConfig, des: &DesConfig) -> DesResult {
        Run::new(mech)
            .config(cfg)
            .des(*des)
            .execute(trace)
            .into_des()
            .unwrap()
    }

    #[test]
    fn zero_contention_replay_matches_serial_exactly() {
        let trace = tiny(SplashApp::Water);
        let cfg = SimConfig::study(256);
        for mech in Mechanism::ALL {
            let serial = Run::new(mech)
                .config(&cfg)
                .execute(&trace)
                .into_sim()
                .unwrap();
            let des = exec_des(mech, &trace, &cfg, &DesConfig::zero_contention());
            assert_eq!(des.base.stats, serial.stats, "{mech}");
            assert_eq!(des.base.cache, serial.cache, "{mech}");
            assert_eq!(des.base.sim_time_ns, serial.sim_time_ns, "{mech}");
            assert_eq!(des.des_time_ns, serial.sim_time_ns, "{mech}: DES overlay");
            // Queueing behind the firmware is part of the serial model
            // itself (records can arrive while the previous one is still
            // being walked); the *devices* see no contention.
            let nested = des.dma_wait_ns + des.bus_wait_ns + des.intr_wait_ns;
            assert_eq!(nested, 0, "{mech}: devices never queue uncontended");
        }
    }

    #[test]
    fn latency_histogram_covers_every_record() {
        let trace = tiny(SplashApp::Fft);
        let cfg = SimConfig::study(256);
        let des = exec_des(Mechanism::Utlb, &trace, &cfg, &DesConfig::zero_contention());
        assert_eq!(des.latency_ns.count(), trace.records.len() as u64);
        let per: u64 = des.per_process_latency.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(per, trace.records.len() as u64);
        assert!(des.mean_latency_us() > 0.0);
    }

    #[test]
    fn payload_load_induces_waits_and_stretches_completion() {
        let trace = tiny(SplashApp::Radix);
        let cfg = SimConfig::study(256);
        let quiet = exec_des(Mechanism::Utlb, &trace, &cfg, &DesConfig::zero_contention());
        let loaded = exec_des(Mechanism::Utlb, &trace, &cfg, &DesConfig::contended(8.0));
        assert!(loaded.payload_transfers > 0);
        assert!(loaded.payload_words > 0);
        assert!(
            loaded.total_wait_ns() > 0,
            "heavy payload traffic must queue"
        );
        assert!(loaded.des_time_ns >= quiet.des_time_ns);
        // The serial half is untouched by the overlay.
        assert_eq!(loaded.base.stats, quiet.base.stats);
        assert_eq!(loaded.base.sim_time_ns, quiet.base.sim_time_ns);
    }

    #[test]
    fn observed_des_run_reconciles_and_records_waits() {
        let trace = tiny(SplashApp::Water);
        let cfg = SimConfig::study(128);
        let (result, obs) = Run::new(Mechanism::Intr)
            .config(&cfg)
            .des(DesConfig::contended(4.0))
            .observed_ring(32)
            .execute(&trace)
            .into_des_observed()
            .unwrap();
        assert!(obs.reconciled, "mismatches: {:?}", obs.mismatches);
        assert!(obs.metrics.counts.waits > 0, "waits were recorded");
        assert_eq!(obs.metrics.total_wait_ns(), result.total_wait_ns());
        assert_eq!(obs.metrics.counts.lookups, result.base.stats.lookups);
    }

    #[test]
    fn intr_baseline_queues_on_interrupt_service_not_the_bus() {
        // The paper's asymmetry, now visible as *where* time queues: the
        // baseline's misses serialize on host interrupt service and never
        // touch the DMA path for translations.
        let trace = tiny(SplashApp::Radix);
        let cfg = SimConfig::study(64);
        let des = exec_des(Mechanism::Intr, &trace, &cfg, &DesConfig::zero_contention());
        let dma_station = &des.resources[1];
        assert_eq!(dma_station.name, "dma_engine");
        assert_eq!(
            dma_station.stats.arrivals, 0,
            "no translation-entry DMA in the baseline"
        );
        let intr_station = &des.resources[3];
        assert_eq!(intr_station.name, "intr_service");
        assert!(intr_station.stats.busy_ns > 0);
    }
}
